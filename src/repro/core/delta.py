"""Incremental churn-time re-optimization: O(delta), not O(space).

The paper's setting is *cooperating dynamic applications*: workloads
register, change phase, and deregister while the machine keeps running.
Re-running :class:`~repro.core.optimizer.ExhaustiveSearch` on every
membership change costs the full symmetric space —
:math:`\\binom{C+A-1}{A-1}` candidates, 24310 for 10 apps on the
8-core-per-node model machine — even though a single join or leave
perturbs only a handful of rows of the previous answer.

:class:`DeltaSearch` starts from the previous
:class:`~repro.core.allocation.ThreadAllocation` instead:

1. **Project** the previous allocation onto the current application
   set (departed rows dropped, joined apps start at zero threads).
2. **Repair** — greedily hand freed cores to whichever app the model
   says gains most, one per-node thread at a time (batched scoring).
3. **Climb (restricted)** — steepest-ascent over per-node composition
   moves *involving a changed app* (joined or phase-changed), the
   O(delta) neighbourhood.
4. **Climb (full neighbourhood)** — one more steepest-ascent pass over
   all :math:`A(A-1)` composition moves, still far below O(space),
   which catches knock-on rebalancing among unchanged apps (after a
   departure the restricted neighbourhood is empty and this pass does
   all the work).
5. **Audit** — when the symmetric space is small
   (``audit_limit``, default 512 candidates) score the whole space in
   one batched call and adopt its first-argmax winner on any
   disagreement.  The audit makes delta mode *provably identical* to
   :class:`~repro.core.optimizer.ExhaustiveSearch` on small instances
   — the exactness anchor the ``churn-*`` replays assert — while large
   instances (where the audit would defeat the point) take the pure
   O(delta) path.

Fall-back to the full search (counted on the ``delta/fallbacks``
metric) happens when there is no usable previous allocation, the
changed-app fraction exceeds ``max_changed_fraction``, the machine or
the previous allocation is not node-symmetric, or a pure-join churn
somehow *regressed* the objective beyond ``regression_tolerance``
(joins can never lower the symmetric optimum, so a regression proves
the climb got stuck).  Every search opens a ``delta/search`` span.

Scoring reuses the batched
:meth:`~repro.core.model.NumaPerformanceModel.predict_scores` fast
path and its persistent :class:`~repro.core.fasteval.ScoreCache`
through the shared model, so steady-state churn (a composition leaving
and returning) is mostly cache hits — ``python -m repro bench`` gates
the resulting sub-millisecond steady-state reallocation.

See ``docs/OPTIMIZER.md`` for the full move-set and fall-back
reference with a worked churn example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.allocation import ThreadAllocation
from repro.core.candidates import CandidateSpace
from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import (
    ExhaustiveSearch,
    Objective,
    SearchResult,
    _SearchBase,
    total_gflops,
)
from repro.core.spec import AppSpec
from repro.errors import AllocationError, ModelError
from repro.machine.topology import MachineTopology
from repro.obs import OBS, CounterHandle

__all__ = [
    "WorkloadDelta",
    "diff_workloads",
    "DeltaResult",
    "DeltaSearch",
]

# Hoisted metric handles (PERF001): resolved once, not per churn event.
_FALLBACKS = CounterHandle("delta/fallbacks")
_AUDIT_CORRECTIONS = CounterHandle("delta/audit_corrections")

#: Score-comparison slack mirroring the hill climb's stopping tolerance.
_EPS = 1e-12

#: Only run the restricted (touched-apps-only) climb phase when the full
#: neighbourhood has more moves than this; below it, one batched call
#: already covers every move and the extra phase is pure call overhead.
_RESTRICTED_MIN_MOVES = 256


@dataclass(frozen=True)
class WorkloadDelta:
    """What changed between two application sets, by name.

    ``changed`` holds apps present in both sets whose spec fingerprint
    differs — a phase change (new intensity, placement, or peak), which
    invalidates their rows of the previous answer just like a rejoin.
    """

    joined: tuple[str, ...]
    departed: tuple[str, ...]
    changed: tuple[str, ...]

    @property
    def touched(self) -> tuple[str, ...]:
        """Current apps whose placement the churn invalidated."""
        return self.joined + self.changed

    @property
    def empty(self) -> bool:
        """True when the two application sets are identical."""
        return not (self.joined or self.departed or self.changed)

    def fraction(self, num_current: int) -> float:
        """Changed-app fraction relative to the current workload size."""
        events = len(self.joined) + len(self.departed) + len(self.changed)
        return events / max(1, num_current)


def diff_workloads(
    previous: Sequence[AppSpec], current: Sequence[AppSpec]
) -> WorkloadDelta:
    """Classify the churn between ``previous`` and ``current`` specs."""
    prev = {app.name: app for app in previous}
    cur = {app.name: app for app in current}
    return WorkloadDelta(
        joined=tuple(a.name for a in current if a.name not in prev),
        departed=tuple(a.name for a in previous if a.name not in cur),
        changed=tuple(
            a.name
            for a in current
            if a.name in prev and a.fingerprint != prev[a.name].fingerprint
        ),
    )


@dataclass(frozen=True)
class DeltaResult:
    """Outcome of one :meth:`DeltaSearch.search` call, with provenance.

    ``mode`` is ``"delta"`` when the incremental path produced the
    answer and ``"full"`` when the searcher fell back to the exhaustive
    oracle (``fallback_reason`` says why).  ``audited`` records whether
    the small-instance audit ran, ``audit_corrected`` whether it had to
    override the climb's answer.
    """

    result: SearchResult
    mode: str
    delta: WorkloadDelta
    fallback_reason: str | None = None
    audited: bool = False
    audit_corrected: bool = False

    @property
    def allocation(self) -> ThreadAllocation:
        """The winning allocation (shortcut to ``result.allocation``)."""
        return self.result.allocation

    @property
    def score(self) -> float:
        """The scalar ground-truth score (shortcut to ``result.score``)."""
        return self.result.score


class DeltaSearch(_SearchBase):
    """Warm-started incremental search over the symmetric subspace.

    Parameters
    ----------
    max_changed_fraction:
        Fall back to the full search when more than this fraction of
        the workload changed (joins + leaves + phase changes over the
        current app count); beyond it the "previous answer" carries too
        little information to be worth repairing.
    regression_tolerance:
        Relative slack on the pure-join regression guard: a join can
        only grow the symmetric optimum, so a delta result more than
        this fraction *below* the previous score triggers the full
        fall-back.  Departures and phase changes legitimately lower the
        achievable score, so the guard only arms on pure joins.
    audit_limit:
        Audit (and, on disagreement, adopt) the full batched answer
        when the symmetric space has at most this many candidates;
        ``0`` disables auditing.
    require_full:
        Passed through to the candidate space: whether every core must
        be occupied (the default, matching the service's oracle).
    max_rounds:
        Safety bound on climb rounds, as in
        :class:`~repro.core.optimizer.HillClimbSearch`.
    fallback:
        The full search used when the delta path declines; defaults to
        an :class:`~repro.core.optimizer.ExhaustiveSearch` sharing this
        searcher's model (and therefore its score cache).
    """

    span_name = "delta"

    def __init__(
        self,
        model: NumaPerformanceModel | None = None,
        objective: Objective = total_gflops,
        *,
        max_changed_fraction: float = 0.5,
        regression_tolerance: float = 1e-9,
        audit_limit: int = 512,
        require_full: bool = True,
        max_rounds: int = 1000,
        use_fast: bool = True,
        fallback: ExhaustiveSearch | None = None,
    ) -> None:
        super().__init__(model, objective, use_fast=use_fast)
        if not 0 <= max_changed_fraction <= 1:
            raise ModelError(
                f"max_changed_fraction must be in [0, 1], "
                f"got {max_changed_fraction}"
            )
        if regression_tolerance < 0:
            raise ModelError(
                f"regression_tolerance must be non-negative, "
                f"got {regression_tolerance}"
            )
        if audit_limit < 0:
            raise ModelError(
                f"audit_limit must be non-negative, got {audit_limit}"
            )
        self.max_changed_fraction = max_changed_fraction
        self.regression_tolerance = regression_tolerance
        self.audit_limit = audit_limit
        self.require_full = require_full
        self.max_rounds = max_rounds
        self.fallback = fallback or ExhaustiveSearch(
            self.model,
            objective,
            require_full=require_full,
            use_fast=use_fast,
        )
        if self.fallback.model is not self.model:
            raise ModelError(
                "the fallback search must share the delta searcher's "
                "model (otherwise fall-backs bypass the score cache)"
            )
        #: lifetime tally of full-search fall-backs.
        self.fallbacks = 0
        #: lifetime tally of audit passes that overrode the climb.
        self.audit_corrections = 0

    # -- entry point ----------------------------------------------------

    def search(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        *,
        previous: ThreadAllocation | None = None,
        previous_specs: Sequence[AppSpec] = (),
        previous_score: float | None = None,
    ) -> DeltaResult:
        """Re-optimize ``apps`` starting from the previous answer.

        ``previous``/``previous_specs`` describe the last computed
        allocation and the workload it was computed for;
        ``previous_score`` (its ground-truth score) arms the pure-join
        regression guard.  With no previous state this degenerates to
        the full fall-back.
        """
        if not apps:
            raise AllocationError("empty workload")
        with OBS.tracer.span(
            "delta/search", machine=machine.name, apps=len(apps)
        ) as span:
            outcome = self._run(
                machine, tuple(apps), previous,
                tuple(previous_specs), previous_score,
            )
            if OBS.enabled:
                span.attrs["mode"] = outcome.mode
                span.attrs["score"] = outcome.result.score
                span.attrs["evaluations"] = outcome.result.evaluations
                if outcome.fallback_reason is not None:
                    span.attrs["fallback"] = outcome.fallback_reason
            return outcome

    # -- the delta pipeline ---------------------------------------------

    def _run(
        self,
        machine: MachineTopology,
        apps: tuple[AppSpec, ...],
        previous: ThreadAllocation | None,
        previous_specs: tuple[AppSpec, ...],
        previous_score: float | None,
    ) -> DeltaResult:
        self._evaluations = 0
        delta = diff_workloads(previous_specs, apps)
        space = CandidateSpace(machine, len(apps))
        reason = self._declined(space, delta, previous, previous_specs)
        if reason is not None:
            return self._full(machine, apps, delta, reason)
        comp = self._project(space, apps, previous)
        if comp is None:
            return self._full(machine, apps, delta, "asymmetric-previous")
        if int(comp.sum()) > space.cores_per_node:
            # The previous answer was computed for a bigger machine.
            return self._full(machine, apps, delta, "oversubscribed-previous")

        evaluator = self._evaluator(machine, apps)
        names = tuple(a.name for a in apps)
        movable = [
            i for i, a in enumerate(apps) if a.name in set(delta.touched)
        ]
        trajectory: list[float] = []

        score = self._repair(machine, apps, space, evaluator, comp, trajectory)
        # The restricted phase only pays off when the full neighbourhood
        # is large: below the threshold one batched call covers every
        # move, so the extra restricted rounds are pure call overhead.
        num_apps = len(apps)
        if movable and num_apps * (num_apps - 1) > _RESTRICTED_MIN_MOVES:
            score = self._climb(
                machine, apps, space, evaluator, comp, score, movable,
                trajectory,
            )
        score = self._climb(
            machine, apps, space, evaluator, comp, score, None, trajectory
        )

        audited = corrected = False
        if (
            self.audit_limit
            and space.symmetric_size(require_full=self.require_full)
            <= self.audit_limit
        ):
            audited = True
            corrected = self._audit(machine, apps, space, evaluator, comp)
            if corrected:
                self.audit_corrections += 1
                if OBS.enabled:
                    _AUDIT_CORRECTIONS.add()

        allocation = ThreadAllocation(
            app_names=names, counts=space.expand(comp)
        )
        exact_score, prediction = self._exact(machine, apps, allocation)
        if (
            previous_score is not None
            and not delta.departed
            and not delta.changed
            and exact_score
            < previous_score
            - self.regression_tolerance * max(abs(previous_score), 1.0)
        ):
            return self._full(machine, apps, delta, "regression")
        result = SearchResult(
            allocation=allocation,
            prediction=prediction,
            score=exact_score,
            evaluations=self._evaluations,
            trajectory=tuple(trajectory),
        )
        return DeltaResult(
            result=result,
            mode="delta",
            delta=delta,
            audited=audited,
            audit_corrected=corrected,
        )

    def _declined(
        self,
        space: CandidateSpace,
        delta: WorkloadDelta,
        previous: ThreadAllocation | None,
        previous_specs: tuple[AppSpec, ...],
    ) -> str | None:
        """Why the delta path cannot run, or ``None`` when it can."""
        if previous is None or not previous_specs:
            return "cold-start"
        if not space.symmetric:
            return "asymmetric-machine"
        if delta.fraction(space.num_apps) > self.max_changed_fraction:
            return "churn-fraction"
        return None

    def _project(
        self,
        space: CandidateSpace,
        apps: tuple[AppSpec, ...],
        previous: ThreadAllocation,
    ) -> np.ndarray | None:
        """The previous answer as a composition over the current apps.

        Departed rows are dropped, joined apps start at zero; returns
        ``None`` when a surviving row is not node-symmetric (different
        counts on different nodes), which the composition space cannot
        represent.
        """
        comp = np.zeros(len(apps), dtype=np.int64)
        names = previous.app_names
        for i, app in enumerate(apps):
            if app.name not in names:
                continue
            row = np.asarray(previous.counts[names.index(app.name)])
            if len(row) != space.num_nodes or not np.all(row == row[0]):
                return None
            comp[i] = row[0]
        return comp

    def _scores(
        self,
        machine: MachineTopology,
        apps: tuple[AppSpec, ...],
        evaluator,
        batch: np.ndarray,
    ) -> np.ndarray:
        """Objective score of each candidate, batched or scalar path."""
        if evaluator is not None:
            return self._score_batch(evaluator, batch)
        names = tuple(a.name for a in apps)
        return np.array(
            [
                self._score(
                    machine,
                    apps,
                    ThreadAllocation(app_names=names, counts=counts),
                )[0]
                for counts in batch
            ]
        )

    def _repair(
        self,
        machine: MachineTopology,
        apps: tuple[AppSpec, ...],
        space: CandidateSpace,
        evaluator,
        comp: np.ndarray,
        trajectory: list[float],
    ) -> float | None:
        """Greedily hand freed cores out until the node is full.

        Mirrors :class:`~repro.core.optimizer.GreedySearch` one step at
        a time over compositions; with ``require_full=False`` it stops
        early once the best addition no longer helps.  Returns ``None``
        without scoring anything when there is nothing to hand out, so
        the first climb round can fold the seed into its own batch.
        """
        if not space.composition_additions(comp):
            return None
        score = float(
            self._scores(machine, apps, evaluator, space.expand(comp)[None])[0]
        )
        trajectory.append(score)
        while True:
            additions = space.composition_additions(comp)
            if not additions:
                break
            batch = space.addition_composition_batch(comp, additions)
            scores = self._scores(machine, apps, evaluator, batch)
            k = int(np.argmax(scores))
            if not self.require_full and scores[k] < score - _EPS:
                break
            comp[additions[k]] += 1
            score = float(scores[k])
            trajectory.append(score)
        return score

    def _climb(
        self,
        machine: MachineTopology,
        apps: tuple[AppSpec, ...],
        space: CandidateSpace,
        evaluator,
        comp: np.ndarray,
        score: float | None,
        movable: list[int] | None,
        trajectory: list[float],
    ) -> float | None:
        """Steepest-ascent over composition moves, optionally restricted.

        When ``score`` is ``None`` (the seed has not been scored yet)
        the seed row rides along in the first round's batch instead of
        costing a one-candidate evaluation call of its own.
        """
        for _ in range(self.max_rounds):
            moves = space.composition_moves(comp, movable)
            if not moves:
                break
            batch = space.composition_batch(comp, moves)
            if score is None:
                batch = np.concatenate([space.expand(comp)[None], batch])
                scores = self._scores(machine, apps, evaluator, batch)
                score = float(scores[0])
                trajectory.append(score)
                scores = scores[1:]
            else:
                scores = self._scores(machine, apps, evaluator, batch)
            k = int(np.argmax(scores))
            if scores[k] <= score + _EPS:
                break
            i, j = moves[k]
            comp[i] -= 1
            comp[j] += 1
            score = float(scores[k])
            trajectory.append(score)
        return score

    def _audit(
        self,
        machine: MachineTopology,
        apps: tuple[AppSpec, ...],
        space: CandidateSpace,
        evaluator,
        comp: np.ndarray,
    ) -> bool:
        """Score the whole (small) space; adopt its winner on mismatch.

        The winner is the *first* argmax in enumeration order — exactly
        the candidate :class:`~repro.core.optimizer.ExhaustiveSearch`
        returns — so after an audit the delta answer is identical to
        the oracle's, ties included.
        """
        tensor = space.symmetric_tensor(require_full=self.require_full)
        scores = self._scores(machine, apps, evaluator, tensor)
        winner = tensor[int(np.argmax(scores))]
        if np.array_equal(winner, space.expand(comp)):
            return False
        comp[:] = winner[:, 0]
        return True

    def _full(
        self,
        machine: MachineTopology,
        apps: tuple[AppSpec, ...],
        delta: WorkloadDelta,
        reason: str,
    ) -> DeltaResult:
        """Fall back to the exhaustive oracle, counting the event."""
        self.fallbacks += 1
        if OBS.enabled:
            _FALLBACKS.add()
        result = self.fallback.search(machine, apps)
        return DeltaResult(
            result=result,
            mode="full",
            delta=delta,
            fallback_reason=reason,
        )
