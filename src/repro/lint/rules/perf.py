"""Performance rules.

The observability layer's metric lookups
(``OBS.metrics.counter("name")``) hash the metric name and take the
registry lock on every call.  In a search inner loop that runs tens of
thousands of times per second, the lookup dominates the instrumented
work — the batched evaluation engine exists precisely because per-call
overhead compounds there.  PERF001 flags lookups inside loop bodies so
they get hoisted into a module- or instance-level handle
(:class:`~repro.obs.CounterHandle` and friends), which resolves the
name once and survives registry swaps.

PERF002 guards the other hot path this codebase has learned about the
hard way: churn-time re-optimization.  A full-space ``search()`` per
churn event costs O(space) — 24,310 model evaluations for ten apps on
the model machine — while :class:`~repro.core.delta.DeltaSearch`
repairs the previous answer in O(delta).  The rule flags full searches
inside event-handler-shaped functions that demonstrably track a
previous allocation (so a warm start was available and ignored);
deliberate full re-searches get ``# repro: noqa[PERF002]``.

PERF003 protects the process-parallel scoring path
(:mod:`repro.core.parallel`): spawning a worker pool costs process
forks, shared-memory setup and (under ``spawn``) a full interpreter
boot — tens to hundreds of milliseconds, against per-batch scoring
work measured in single-digit milliseconds.  A ``Pool`` /
``ProcessPoolExecutor`` / ``WorkerPool`` constructed inside a loop or
per handler invocation pays that tax on every round; pools must be
created once and reused (``repro.core.parallel.get_pool`` keeps a
process-wide registry precisely for this).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register,
)

__all__ = [
    "MetricLookupInLoop",
    "FullSearchInChurnPath",
    "PoolConstructionInLoop",
]

#: Registry factory methods whose per-call lookup cost PERF001 targets.
_METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _enclosing_loop(ctx: FileContext, node: ast.AST) -> ast.AST | None:
    """The innermost loop that re-evaluates ``node`` per iteration.

    That is the loop's body/else (and a ``while`` condition), but *not*
    a ``for``'s iterable, which evaluates once.  Stops at function
    boundaries: code in a nested function that merely happens to be
    *defined* inside a loop runs once per call, not once per iteration,
    and loop temperature is the callee's concern.
    """
    child: ast.AST = node
    for anc in ctx.parents(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        if isinstance(anc, _LOOPS):
            per_iteration = list(anc.body) + list(anc.orelse)
            if isinstance(anc, ast.While):
                per_iteration.append(anc.test)
            if any(child is part for part in per_iteration):
                return anc
        child = anc
    return None


def _is_metric_lookup(node: ast.Call) -> str | None:
    """The metric kind when ``node`` is ``<expr>.metrics.<kind>(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in _METRIC_KINDS:
        return None
    owner = func.value
    if isinstance(owner, ast.Attribute) and owner.attr == "metrics":
        return func.attr
    return None


@register
class MetricLookupInLoop(Rule):
    """``OBS.metrics.counter(...)`` resolved inside a loop body.

    A warning rather than an error: a lookup in a cold loop (a shutdown
    sweep, a once-per-tick simulator step) is harmless, and the author
    is the one who knows the loop's temperature.  Hot paths should hoist
    the lookup into a :class:`~repro.obs.CounterHandle` /
    :class:`~repro.obs.GaugeHandle` / :class:`~repro.obs.HistogramHandle`
    created once; deliberate cold-loop lookups get
    ``# repro: noqa[PERF001]``.
    """

    rule_id = "PERF001"
    severity = Severity.WARNING
    summary = (
        "metric registry lookup (`*.metrics.counter/gauge/histogram`) "
        "inside a loop body; hoist it into a module- or instance-level "
        "metric handle (see repro.obs.CounterHandle)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            kind = _is_metric_lookup(node)
            if kind is None:
                continue
            loop = _enclosing_loop(ctx, node)
            if loop is None:
                continue
            yield self.violation(
                ctx,
                node,
                f"`.metrics.{kind}(...)` re-resolves the metric on every "
                f"iteration of the loop at line {loop.lineno}; create the "
                f"{kind} handle once outside the loop "
                f"(repro.obs.{kind.capitalize()}Handle)",
            )


#: Function names that look like per-event / re-optimization handlers.
_HANDLER_NAME_RE = re.compile(
    r"^(?:on|handle)_|churn|reoptim|optimi[sz]e|decide"
)

#: Handler names plus the scoring-path verbs PERF003 also treats as hot.
_HOT_FUNC_NAME_RE = re.compile(
    r"^(?:on|handle)_|churn|reoptim|optimi[sz]e|decide|search|score"
    r"|evaluate"
)

#: Variable/attribute names that look like previous-answer state.
_PREV_NAME_RE = re.compile(r"prev|previous|last")

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _dotted_names(expr: ast.AST) -> str:
    """Every identifier along an attribute/call chain, lowercased."""
    parts: list[str] = []
    while True:
        if isinstance(expr, ast.Attribute):
            parts.append(expr.attr)
            expr = expr.value
        elif isinstance(expr, ast.Call):
            expr = expr.func
        elif isinstance(expr, ast.Name):
            parts.append(expr.id)
            break
        else:
            break
    return " ".join(parts).lower()


def _is_full_search_call(node: ast.Call) -> bool:
    """``<receiver>.search(a, b, ...)`` with no 'delta' in the chain.

    Two positional arguments separate the optimizer protocol
    (``search(machine, apps)``) from unrelated ``.search`` methods such
    as compiled regexes; a receiver chain mentioning ``delta`` is
    already the incremental path.
    """
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "search":
        return False
    if len(node.args) < 2:
        return False
    return "delta" not in _dotted_names(func.value)


def _assign_target_name(target: ast.AST) -> str | None:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _names_previous_allocation(name: str, annotation: str) -> bool:
    if not _PREV_NAME_RE.search(name.lower()):
        return False
    return "alloc" in name.lower() or "ThreadAllocation" in annotation


def _tracks_previous_allocation(scope: ast.AST) -> str | None:
    """The previous-allocation name ``scope`` assigns, or ``None``.

    A scope "tracks a previous allocation" when it assigns a name
    matching ``prev``/``previous``/``last`` that is either explicitly
    allocation-flavoured (contains ``alloc``) or annotated as a
    :class:`~repro.core.allocation.ThreadAllocation`.
    """
    for node in ast.walk(scope):
        if isinstance(node, ast.AnnAssign):
            name = _assign_target_name(node.target)
            annotation = ast.unparse(node.annotation)
            if name and _names_previous_allocation(name, annotation):
                return name
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                name = _assign_target_name(target)
                if name and _names_previous_allocation(name, ""):
                    return name
    return None


@register
class FullSearchInChurnPath(Rule):
    """Full-space ``search()`` on a churn path with a warm start in reach.

    Fires on ``<receiver>.search(machine, apps, ...)`` calls inside a
    function whose name looks like an event handler (``on_*``,
    ``handle_*``, or mentioning churn / re-optimization / ``decide``)
    when that function — or its enclosing class — assigns a
    previous-allocation name (``prev*``/``last*`` plus ``alloc`` in the
    name or a ``ThreadAllocation`` annotation).  Tracking the previous
    answer and then re-searching the whole space from scratch pays
    O(space) per event where :class:`~repro.core.delta.DeltaSearch`
    pays O(delta); see ``docs/OPTIMIZER.md``.

    A warning, not an error: a full re-search is sometimes the point
    (the delta searcher's own fall-back, an oracle check, a deliberate
    periodic re-plan).  Those sites document themselves with
    ``# repro: noqa[PERF002]``.
    """

    rule_id = "PERF002"
    severity = Severity.WARNING
    summary = (
        "full-space `.search(machine, apps)` in a churn/event-handler "
        "function that tracks a previous allocation; warm-start with "
        "repro.core.delta.DeltaSearch instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            if not _is_full_search_call(node):
                continue
            func = cls = None
            for anc in ctx.parents(node):
                if func is None and isinstance(anc, _FUNCS):
                    func = anc
                elif func is not None and isinstance(anc, ast.ClassDef):
                    cls = anc
                    break
            if func is None or not _HANDLER_NAME_RE.search(
                func.name.lower()
            ):
                continue
            prev = _tracks_previous_allocation(func) or (
                cls is not None and _tracks_previous_allocation(cls)
            )
            if not prev:
                continue
            yield self.violation(
                ctx,
                node,
                f"`{func.name}` tracks the previous allocation "
                f"(`{prev}`) but re-searches the full space every "
                f"event; warm-start with DeltaSearch, or mark a "
                f"deliberate full re-search `# repro: noqa[PERF002]`",
            )


#: Constructor names that spawn a worker pool (stdlib and this repo's).
_POOL_NAME_RE = re.compile(
    r"^(?:Pool|ThreadPool|ProcessPoolExecutor|ThreadPoolExecutor|"
    r"WorkerPool)$"
)


def _pool_constructor_name(node: ast.Call) -> str | None:
    """The pool class name when ``node`` constructs a worker pool.

    Matches both the bare-name form (``WorkerPool(4)``,
    ``ProcessPoolExecutor(...)``) and the attribute form
    (``multiprocessing.Pool(...)``, ``ctx.Pool(...)``,
    ``concurrent.futures.ProcessPoolExecutor(...)``).
    """
    func = node.func
    if isinstance(func, ast.Name) and _POOL_NAME_RE.match(func.id):
        return func.id
    if isinstance(func, ast.Attribute) and _POOL_NAME_RE.match(func.attr):
        return func.attr
    return None


@register
class PoolConstructionInLoop(Rule):
    """A worker pool constructed per iteration or per handler call.

    Fires on ``Pool`` / ``ThreadPool`` / ``ProcessPoolExecutor`` /
    ``ThreadPoolExecutor`` / ``WorkerPool`` construction either inside
    a loop body, or inside a search/handler-shaped function (``on_*``,
    ``handle_*``, or a name mentioning churn / re-optimization /
    ``decide`` / ``search`` / ``score`` / ``evaluate``) — both shapes
    re-pay process spawn plus shared-memory setup on every round.
    Pools must be created once and reused:
    :func:`repro.core.parallel.get_pool` keeps a process-wide registry
    keyed by worker count, and the searchers route through it via
    ``NumaPerformanceModel.set_workers``.

    A warning, not an error: a pool built in a loop that runs once per
    process lifetime (a benchmark sweeping worker counts, a test
    parametrizing start methods) is legitimate — those sites document
    themselves with ``# repro: noqa[PERF003]``.
    """

    rule_id = "PERF003"
    severity = Severity.WARNING
    summary = (
        "worker pool (`Pool`/`ProcessPoolExecutor`/`WorkerPool`) "
        "constructed inside a loop or search/handler function; create "
        "it once and reuse it (repro.core.parallel.get_pool)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            name = _pool_constructor_name(node)
            if name is None:
                continue
            loop = _enclosing_loop(ctx, node)
            if loop is not None:
                yield self.violation(
                    ctx,
                    node,
                    f"`{name}(...)` spawns a fresh worker pool on every "
                    f"iteration of the loop at line {loop.lineno}; "
                    f"create it once outside the loop or reuse the "
                    f"registry (repro.core.parallel.get_pool)",
                )
                continue
            func = self._enclosing_hot_function(ctx, node)
            if func is not None:
                yield self.violation(
                    ctx,
                    node,
                    f"`{func.name}` constructs `{name}(...)` on every "
                    f"call — search/handler functions run per event, so "
                    f"the pool is re-spawned each time; hoist it to the "
                    f"owner's lifetime or use "
                    f"repro.core.parallel.get_pool",
                )

    @staticmethod
    def _enclosing_hot_function(
        ctx: FileContext, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost enclosing search/handler-shaped function."""
        for anc in ctx.parents(node):
            if isinstance(anc, _FUNCS):
                if _HOT_FUNC_NAME_RE.search(anc.name.lower()):
                    return anc
                return None
        return None
