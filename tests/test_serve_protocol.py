"""The NDJSON wire protocol: every message round-trips through the
codec byte-identically, and malformed input is rejected with
`ServiceError` rather than a stack trace."""

import json

import pytest

from repro.core import AppSpec
from repro.errors import ServiceError
from repro.serve import (
    Ack,
    AllocationUpdate,
    Deregister,
    ErrorReply,
    ProgressReport,
    QueryAllocation,
    Register,
    ShutdownNotice,
    decode_message,
    encode_message,
)

ALL_MESSAGES = [
    Register(name="a", app=AppSpec.memory_bound("a", 0.5)),
    Register(name="b", app=AppSpec.numa_bad("b", 1.0, home_node=2)),
    Deregister(name="a"),
    ProgressReport(
        name="a",
        time=0.25,
        progress={"tasks": 12.0},
        cpu_load=0.8,
        acked_epoch=3,
    ),
    ProgressReport(name="a", time=0.0, progress={}),
    QueryAllocation(name="a"),
    Ack(name="a", epoch=4, in_reply_to="register"),
    AllocationUpdate(
        name="a",
        per_node=(2, 2, 2, 2),
        epoch=4,
        score=79.8,
        degraded=False,
    ),
    AllocationUpdate(
        name="a",
        per_node=(8, 0, 0, 0),
        epoch=9,
        score=64.0,
        degraded=True,
        in_reply_to="query-allocation",
    ),
    ErrorReply(error="duplicate session 'a'", in_reply_to="register"),
    ErrorReply(
        error="admission refused",
        in_reply_to="register",
        code="overloaded",
    ),
    ShutdownNotice(reason="draining"),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_codec_round_trip(self, message):
        line = encode_message(message)
        assert "\n" not in line
        assert decode_message(line) == message

    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_encoding_is_canonical(self, message):
        # Sorted keys, compact separators: same message, same bytes.
        assert encode_message(message) == encode_message(message)
        parsed = json.loads(encode_message(message))
        assert list(parsed) == sorted(parsed)

    def test_register_preserves_app_fingerprint(self):
        app = AppSpec.numa_bad("bad", 1.0, home_node=1)
        line = encode_message(Register(name="bad", app=app))
        decoded = decode_message(line)
        assert decoded.app.fingerprint == app.fingerprint


class TestRejection:
    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2, 3]",
            '{"no_type": true}',
            '{"type": "warp-drive"}',
            '{"type": "register", "app": {}}',
            '{"type": "deregister"}',
            '{"type": "progress-report", "name": "a"}',
            '{"type": "progress-report", "name": "a", "time": "soon"}',
            '{"type": "progress-report", "name": "a", "time": true}',
            '{"type": "allocation", "name": "a", "per_node": []}',
            '{"type": "allocation", "name": "a", "per_node": [1, -2]}',
        ],
    )
    def test_malformed_raises_service_error(self, line):
        with pytest.raises(ServiceError):
            decode_message(line)

    def test_register_name_must_match_app(self):
        payload = json.loads(
            encode_message(
                Register(name="y", app=AppSpec.memory_bound("y", 0.5))
            )
        )
        payload["name"] = "x"  # app inside still says "y"
        with pytest.raises(ServiceError):
            decode_message(json.dumps(payload))

    def test_error_survives_codec(self):
        line = encode_message(ErrorReply(error="boom"))
        reply = decode_message(line)
        assert isinstance(reply, ErrorReply)
        assert reply.error == "boom"


class TestErrorCodes:
    """ERROR_CODES is exhaustive: every listed code is provoked by a
    real service/transport path, and the codec refuses codes that are
    not in the table."""

    def _service(self, **config_kwargs):
        from repro.machine import model_machine
        from repro.serve import AllocationService, ServiceConfig
        from repro.sim.engine import Simulator

        sim = Simulator()
        config_kwargs.setdefault("machine", model_machine())
        service = AllocationService(
            ServiceConfig(**config_kwargs),
            clock=lambda: sim.now,
            call_later=lambda delay, fn: sim.schedule(delay, fn),
        )
        return sim, service

    def test_unknown_code_rejected_by_codec(self):
        line = encode_message(ErrorReply(error="x", code="overloaded"))
        payload = json.loads(line)
        payload["code"] = "flux-capacitor"
        with pytest.raises(ServiceError):
            decode_message(json.dumps(payload))

    def test_every_code_is_provoked(self, tmp_path):
        import asyncio

        from repro.machine import model_machine
        from repro.serve import ERROR_CODES, ServiceConfig, ServiceServer

        mem = AppSpec.memory_bound("mem", 0.5)
        bad = AppSpec.numa_bad("bad", 1.0, home_node=0)
        codes: dict[str, str] = {}

        sim, service = self._service()
        codes["unsupported"] = service.handle(
            Ack(name="x", epoch=1, in_reply_to="register")
        ).code
        codes["unknown-session"] = service.handle(
            ProgressReport(name="ghost", time=0.0, progress={})
        ).code
        service.handle(Register(name="mem", app=mem))
        codes["duplicate-session"] = service.handle(
            Register(name="mem", app=mem)
        ).code
        # Debounce has not fired yet: nothing computed to query.
        codes["no-allocation"] = service.handle(
            QueryAllocation(name="mem")
        ).code
        service.handle(ProgressReport(name="mem", time=0.5, progress={}))
        codes["backwards-report"] = service.handle(
            ProgressReport(name="mem", time=0.4, progress={})
        ).code
        service.handle(Deregister(name="mem"))
        codes["closed-session"] = service.handle(
            ProgressReport(name="mem", time=1.0, progress={})
        ).code

        _, capped = self._service(max_sessions=1)
        capped.handle(Register(name="mem", app=mem))
        codes["overloaded"] = capped.handle(
            Register(name="bad", app=bad)
        ).code
        capped.drain("bye")
        codes["draining"] = capped.handle(
            Register(name="late", app=AppSpec.memory_bound("late", 0.5))
        ).code

        _, strict = self._service(command_deadline=0.01)
        strict.handle(Register(name="mem", app=mem))
        codes["deadline-exceeded"] = strict.handle(
            ProgressReport(name="mem", time=0.0, progress={}),
            received_at=-0.2,  # queued 0.2 s on a clock stuck at 0
        ).code

        # A service invariant without a more specific code of its own.
        _, broken = self._service()
        def violate(*args, **kwargs):
            raise ServiceError("invariant violated")
        broken.registry.admit = violate
        codes["invalid-request"] = broken.handle(
            Register(name="x", app=AppSpec.memory_bound("x", 0.5))
        ).code

        # Transport-level codes need the real socket.
        socket_path = str(tmp_path / "codes.sock")

        async def transport():
            server = ServiceServer(
                ServiceConfig(machine=model_machine()),
                socket_path,
                max_line_bytes=1024,
            )
            await server.start()
            reader, writer = await asyncio.open_unix_connection(
                socket_path
            )
            writer.write(b"\xff\xfe not utf-8\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            codes["malformed"] = decode_message(
                line.decode("utf-8")
            ).code
            writer.write(b"x" * 5000 + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            codes["frame-too-large"] = decode_message(
                line.decode("utf-8")
            ).code
            writer.close()
            await server.stop()

        asyncio.run(asyncio.wait_for(transport(), timeout=20.0))

        assert set(codes) == set(ERROR_CODES)
        for code, observed in codes.items():
            assert observed == code, f"{code} provoked {observed!r}"
