"""OCRVxRuntime: a task-based runtime with blockable worker threads.

This is the reproduction of the paper's extended OCR-Vx [3], [10]: a
task-based runtime whose worker-thread count can be adjusted while the
application runs.  All three thread-control options of Section II are
implemented with the published semantics:

1. **Total number of threads** (:meth:`OCRVxRuntime.set_total_threads`) —
   the runtime keeps at most N workers active.  Workers over the limit
   block when they are "not currently executing a task": a worker running
   a long task keeps going until the task ends, and if enough other
   workers blocked meanwhile it never blocks at all.  Raising the target
   unblocks randomly selected workers "almost immediately".
2. **Individual cores** (:meth:`OCRVxRuntime.block_workers` /
   :meth:`OCRVxRuntime.unblock_workers`) — explicit per-worker commands;
   workers are core-bound in this mode.
3. **Threads per NUMA node** (:meth:`OCRVxRuntime.set_node_threads`) —
   workers are node-bound and each node has its own active-thread target.

Workers are fed by a pluggable :class:`~repro.runtime.scheduler.TaskScheduler`
and executed by the :class:`~repro.sim.executor.ExecutionSimulator`; the
runtime is the executor's :class:`~repro.sim.executor.WorkProvider`.
"""

from __future__ import annotations

import enum
from typing import Callable, Sequence

import numpy as np

from repro.errors import RuntimeSystemError
from repro.obs import OBS
from repro.runtime.datablock import AccessMode, Datablock
from repro.runtime.events import Event, LatchEvent, OnceEvent
from repro.runtime.scheduler import (
    FifoScheduler,
    LocalityScheduler,
    TaskScheduler,
    WorkStealingScheduler,
)
from repro.runtime.task import Task, TaskState
from repro.runtime.worker import Worker
from repro.sim.cpu import Binding, SimThread, ThreadState
from repro.sim.executor import ExecutionSimulator, WorkSegment
from repro.sim.trace import TraceKind

__all__ = ["BindingMode", "RuntimeStats", "OCRVxRuntime"]


class BindingMode(enum.Enum):
    """How this runtime binds its workers (paper Section II)."""

    CORE = "core"  #: one worker pinned per core (enables option 2)
    NODE = "node"  #: workers bound to NUMA nodes (options 1 and 3)
    UNBOUND = "unbound"  #: no affinity (option 1 with free threads)


class RuntimeStats:
    """Counters the runtime reports to the agent (Figure 1's upward arrows)."""

    def __init__(self) -> None:
        self.tasks_executed = 0
        self.tasks_created = 0
        self.progress: dict[str, float] = {}

    def report_progress(self, key: str, amount: float = 1.0) -> None:
        """Application-level progress marker (e.g. iterations done)."""
        self.progress[key] = self.progress.get(key, 0.0) + amount


class OCRVxRuntime:
    """A task-based runtime instance hosting one application.

    Parameters
    ----------
    name:
        Runtime/application name (unique per executor).
    executor:
        The shared execution simulator ("the machine").
    binding_mode:
        Worker affinity granularity; NODE is the paper's recommended mode.
    scheduler:
        Ready-task pool; default is a :class:`LocalityScheduler`, making
        applications NUMA-aware out of the box.
    seed:
        Seed for the random unblock selection of option 1.
    """

    def __init__(
        self,
        name: str,
        executor: ExecutionSimulator,
        *,
        binding_mode: BindingMode = BindingMode.NODE,
        scheduler: TaskScheduler | None = None,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.executor = executor
        self.machine = executor.machine
        self.binding_mode = binding_mode
        self.scheduler = scheduler or LocalityScheduler(
            self.machine.num_nodes
        )
        self.stats = RuntimeStats()
        self.workers: list[Worker] = []
        self._by_tid: dict[int, Worker] = {}
        self._rng = np.random.default_rng(seed)
        self._node_target: dict[int, int] = {}
        self._total_target: int | None = None
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def start(
        self, threads_per_node: Sequence[int] | None = None
    ) -> None:
        """Create the worker threads.

        ``threads_per_node`` defaults to one worker per core of every node
        ("Each application starts with as many threads as there are CPU
        cores").  With UNBOUND mode the per-node counts only determine the
        total.
        """
        if self._started:
            raise RuntimeSystemError(f"runtime '{self.name}' already started")
        if threads_per_node is None:
            threads_per_node = [n.num_cores for n in self.machine.nodes]
        if len(threads_per_node) != self.machine.num_nodes:
            raise RuntimeSystemError(
                f"runtime '{self.name}': {len(threads_per_node)} node "
                f"counts for {self.machine.num_nodes} nodes"
            )
        index = 0
        for node_id, count in enumerate(threads_per_node):
            node = self.machine.node(node_id)
            if count > node.num_cores:
                raise RuntimeSystemError(
                    f"runtime '{self.name}': {count} workers on node "
                    f"{node_id} with {node.num_cores} cores"
                )
            for k in range(count):
                if self.binding_mode is BindingMode.CORE:
                    binding = Binding.to_core(node.cores[k].global_id)
                elif self.binding_mode is BindingMode.NODE:
                    binding = Binding.to_node(node_id)
                else:
                    binding = Binding.unbound()
                worker = Worker(
                    index=index,
                    name=f"{self.name}/w{index}",
                    binding=binding,
                    node=(
                        None
                        if self.binding_mode is BindingMode.UNBOUND
                        else node_id
                    ),
                )
                thread = self.executor.add_thread(
                    worker.name, binding, self, app_name=self.name
                )
                worker.thread = thread
                self.workers.append(worker)
                self._by_tid[thread.tid] = worker
                if isinstance(self.scheduler, WorkStealingScheduler):
                    self.scheduler.register_worker(worker.name)
                index += 1
        self._started = True

    def stop(self) -> None:
        """Retire all workers (application exit)."""
        for w in self.workers:
            if w.thread is not None:
                self.executor.finish(w.thread)
        self._stopped = True

    # ------------------------------------------------------------------
    # Task API (the application-facing surface)
    # ------------------------------------------------------------------
    def create_task(
        self,
        name: str,
        flops: float,
        arithmetic_intensity: float,
        *,
        depends_on: Sequence[Task | Event] = (),
        datablocks: Sequence[Datablock] = (),
        access_modes: Sequence[AccessMode] | None = None,
        affinity_node: int | None = None,
        on_finish: Callable[[Task], None] | None = None,
        tied_to: str | None = None,
    ) -> Task:
        """Create a task; it enters the scheduler when its deps are met."""
        if self._stopped:
            raise RuntimeSystemError(f"runtime '{self.name}' stopped")
        task = Task(
            name=f"{self.name}/{name}",
            flops=flops,
            arithmetic_intensity=arithmetic_intensity,
            datablocks=list(datablocks),
            access_modes=list(access_modes) if access_modes else None,
            affinity_node=affinity_node,
            on_finish=on_finish,
            tied_to=tied_to,
        )
        for dep in depends_on:
            task.depends_on(dep)
        self.stats.tasks_created += 1
        task.on_ready(self._enqueue)
        return task

    def _enqueue(self, task: Task) -> None:
        self.scheduler.push(task)

    def create_datablock(
        self, size_bytes: float, home_node: int, name: str = ""
    ) -> Datablock:
        """Allocate a runtime-managed datablock on ``home_node``."""
        return Datablock(size_bytes, home_node, name=name)

    # ------------------------------------------------------------------
    # WorkProvider protocol (called by the executor)
    # ------------------------------------------------------------------
    def next_segment(self, thread: SimThread) -> WorkSegment | None:
        """Hand the worker its next task (or block it at the boundary)."""
        worker = self._by_tid[thread.tid]
        if self._stopped:
            return None
        if self._must_block(worker):
            self.executor.block(thread)
            return None
        task = self.scheduler.pop(worker)
        if task is None:
            return None
        task.start(worker.name)
        worker.current_task = task
        return WorkSegment(
            flops=task.flops,
            arithmetic_intensity=task.arithmetic_intensity,
            data_home=None,
            data_fractions=task.traffic(),
            cache_keys=tuple(db.db_id for db in task.datablocks),
            label=task.name,
        )

    def segment_finished(self, thread: SimThread, segment: WorkSegment) -> None:
        """Complete the worker's task and fire its output event."""
        worker = self._by_tid[thread.tid]
        task = worker.current_task
        if task is None:
            raise RuntimeSystemError(
                f"worker '{worker.name}' finished a segment with no task"
            )
        worker.current_task = None
        worker.tasks_executed += 1
        self.stats.tasks_executed += 1
        if OBS.enabled:
            OBS.metrics.counter(f"runtime/{self.name}/tasks").add()
            OBS.metrics.gauge(f"runtime/{self.name}/queue").set(
                len(self.scheduler)
            )
        task.finish()

    # ------------------------------------------------------------------
    # Thread control (the agent-facing surface, Figure 1's commands)
    # ------------------------------------------------------------------
    def set_total_threads(self, n: int) -> None:
        """Option 1: keep at most ``n`` workers active, machine wide."""
        if n < 0 or n > len(self.workers):
            raise RuntimeSystemError(
                f"runtime '{self.name}': total target {n} outside "
                f"[0, {len(self.workers)}]"
            )
        self._node_target.clear()
        self._total_target = n
        active = [w for w in self.workers if w.active]
        deficit = n - len(active)
        if deficit > 0:
            blocked = [w for w in self.workers if w.blocked]
            # "These threads are selected randomly."
            pick = self._rng.permutation(len(blocked))[:deficit]
            for i in pick:
                self._unblock(blocked[i])

    def set_node_threads(self, node: int, n: int) -> None:
        """Option 3: per-NUMA-node active-thread target.

        Requires NODE (or CORE) binding so workers belong to nodes.
        """
        if self.binding_mode is BindingMode.UNBOUND:
            raise RuntimeSystemError(
                "per-node thread control needs node- or core-bound workers"
            )
        members = [w for w in self.workers if w.node == node]
        if n < 0 or n > len(members):
            raise RuntimeSystemError(
                f"runtime '{self.name}': node {node} target {n} outside "
                f"[0, {len(members)}]"
            )
        self._total_target = None
        self._node_target[node] = n
        active = [w for w in members if w.active]
        deficit = n - len(active)
        if deficit > 0:
            blocked = [w for w in members if w.blocked]
            pick = self._rng.permutation(len(blocked))[:deficit]
            for i in pick:
                self._unblock(blocked[i])

    def set_allocation(self, threads_per_node: Sequence[int]) -> None:
        """Option 3 for all nodes at once (one agent command)."""
        if len(threads_per_node) != self.machine.num_nodes:
            raise RuntimeSystemError(
                f"{len(threads_per_node)} counts for "
                f"{self.machine.num_nodes} nodes"
            )
        for node, n in enumerate(threads_per_node):
            self.set_node_threads(node, int(n))

    def migrate_worker(self, name: str, node: int) -> None:
        """Move a worker thread to another NUMA node.

        The paper's other core-shifting mechanism: runtimes "can also
        easily move work between CPU cores, either by moving the worker
        threads or by stopping threads ... and starting new threads on
        the target cores."  The thread re-binds at the next slice; the
        worker then pulls tasks from its new node's queue.  Requires
        NODE binding (a core-pinned worker would need option-2 restart
        semantics instead).
        """
        if self.binding_mode is not BindingMode.NODE:
            raise RuntimeSystemError(
                "worker migration requires NODE binding"
            )
        self.machine.node(node)  # validate
        by_name = {w.name: w for w in self.workers}
        if name not in by_name:
            raise RuntimeSystemError(
                f"runtime '{self.name}': unknown worker '{name}'"
            )
        worker = by_name[name]
        if worker.node == node:
            return
        binding = Binding.to_node(node)
        self.executor.rebind(worker.thread, binding)
        worker.binding = binding
        worker.node = node

    def block_workers(self, names: Sequence[str]) -> None:
        """Option 2: request specific workers to block at the boundary."""
        by_name = {w.name: w for w in self.workers}
        for name in names:
            if name not in by_name:
                raise RuntimeSystemError(
                    f"runtime '{self.name}': unknown worker '{name}'"
                )
            by_name[name].block_requested = True

    def unblock_workers(self, names: Sequence[str]) -> None:
        """Option 2: wake specific workers (nearly immediate)."""
        by_name = {w.name: w for w in self.workers}
        for name in names:
            if name not in by_name:
                raise RuntimeSystemError(
                    f"runtime '{self.name}': unknown worker '{name}'"
                )
            w = by_name[name]
            w.block_requested = False
            if w.blocked:
                self._unblock(w)

    def _must_block(self, worker: Worker) -> bool:
        if worker.block_requested:
            return True
        if self._total_target is not None:
            active = sum(1 for w in self.workers if w.active)
            if active > self._total_target:
                return True
        if worker.node is not None and worker.node in self._node_target:
            members_active = sum(
                1
                for w in self.workers
                if w.node == worker.node and w.active
            )
            if members_active > self._node_target[worker.node]:
                return True
        return False

    def _unblock(self, worker: Worker) -> None:
        worker.block_requested = False
        if worker.thread is not None:
            self.executor.unblock(worker.thread)

    # ------------------------------------------------------------------
    # Introspection (what the agent samples)
    # ------------------------------------------------------------------
    @property
    def active_threads(self) -> int:
        """Workers currently able to run tasks."""
        return sum(1 for w in self.workers if w.active)

    @property
    def blocked_threads(self) -> int:
        """Workers currently suspended."""
        return sum(1 for w in self.workers if w.blocked)

    def active_per_node(self) -> list[int]:
        """Active workers per NUMA node (unbound workers not counted)."""
        out = [0] * self.machine.num_nodes
        for w in self.workers:
            if w.active and w.node is not None:
                out[w.node] += 1
        return out

    @property
    def queue_length(self) -> int:
        """Ready tasks waiting for a worker."""
        return len(self.scheduler)
