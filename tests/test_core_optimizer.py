"""Unit tests for the allocation searches."""

import pytest

from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import (
    AnnealingSearch,
    ExhaustiveSearch,
    GreedySearch,
    HillClimbSearch,
    min_app_gflops,
    total_gflops,
    weighted_gflops,
)
from repro.core.policies import EvenSharePolicy
from repro.core.spec import AppSpec
from repro.errors import ModelError


class TestExhaustive:
    def test_finds_global_optimum(self, paper_machine, paper_apps):
        res = ExhaustiveSearch().search(paper_machine, paper_apps)
        # All cores to the compute app: the machine peak.
        assert res.score == pytest.approx(320.0)
        assert res.evaluations == 165

    def test_max_min_objective_balances(self, paper_machine, paper_apps):
        res = ExhaustiveSearch(objective=min_app_gflops).search(
            paper_machine, paper_apps
        )
        worst = min(a.gflops for a in res.prediction.apps)
        assert worst > 0
        # the pure-throughput optimum starves apps, so max-min must differ
        assert res.allocation.threads_of("mem0").sum() > 0

    def test_weighted_objective(self, paper_machine, paper_apps):
        heavy_mem = weighted_gflops(
            {"mem0": 100.0, "mem1": 100.0, "mem2": 100.0, "comp": 0.01}
        )
        res = ExhaustiveSearch(objective=heavy_mem).search(
            paper_machine, paper_apps
        )
        assert res.allocation.threads_of("comp").sum() == 0

    def test_allow_idle_cores(self, paper_machine):
        # Purely memory-bound workload: beyond saturation extra threads
        # add nothing, so partial allocations tie with full ones.
        apps = [AppSpec.memory_bound("m", 0.5)]
        res = ExhaustiveSearch(require_full=False).search(
            paper_machine, apps
        )
        assert res.score == pytest.approx(64.0)


class TestGreedy:
    def test_matches_exhaustive_on_paper_workload(
        self, paper_machine, paper_apps
    ):
        ex = ExhaustiveSearch().search(paper_machine, paper_apps)
        gr = GreedySearch().search(paper_machine, paper_apps)
        assert gr.score == pytest.approx(ex.score)

    def test_trajectory_monotone(self, paper_machine, paper_apps):
        res = GreedySearch().search(paper_machine, paper_apps)
        assert list(res.trajectory) == sorted(res.trajectory)

    def test_fills_machine(self, paper_machine, paper_apps):
        res = GreedySearch().search(paper_machine, paper_apps)
        assert res.allocation.total_threads == paper_machine.total_cores


class TestHillClimb:
    def test_improves_on_even_start(self, paper_machine, paper_apps):
        start = EvenSharePolicy().allocate(paper_machine, paper_apps)
        base = NumaPerformanceModel().predict(
            paper_machine, paper_apps, start
        )
        res = HillClimbSearch().search(
            paper_machine, paper_apps, start=start
        )
        assert res.score >= base.total_gflops
        assert res.score == pytest.approx(320.0)

    def test_respects_max_rounds(self, paper_machine, paper_apps):
        res = HillClimbSearch(max_rounds=1).search(
            paper_machine, paper_apps
        )
        assert len(res.trajectory) <= 2


class TestAnnealing:
    def test_deterministic_under_seed(self, paper_machine, paper_apps):
        a = AnnealingSearch(steps=300, seed=7).search(
            paper_machine, paper_apps
        )
        b = AnnealingSearch(steps=300, seed=7).search(
            paper_machine, paper_apps
        )
        assert a.score == b.score
        assert a.allocation.as_mapping() == b.allocation.as_mapping()

    def test_reaches_near_optimum(self, paper_machine, paper_apps):
        res = AnnealingSearch(steps=1500, seed=3).search(
            paper_machine, paper_apps
        )
        assert res.score >= 300.0  # within ~6% of 320

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            AnnealingSearch(steps=0)
        with pytest.raises(ModelError):
            AnnealingSearch(cooling=1.5)


class TestObjectives:
    def test_total_gflops(self, paper_machine, paper_apps):
        alloc = EvenSharePolicy().allocate(paper_machine, paper_apps)
        pred = NumaPerformanceModel().predict(
            paper_machine, paper_apps, alloc
        )
        assert total_gflops(pred) == pytest.approx(140.0)
        assert min_app_gflops(pred) == pytest.approx(20.0)
        w = weighted_gflops({"comp": 2.0})
        assert w(pred) == pytest.approx(140.0 + 80.0)
