"""Application specifications consumed by the analytic model.

The model characterises an application by two properties (Section III-A):

* its **arithmetic intensity** (AI) — floating-point operations per byte
  transferred from/to memory; together with a core's peak GFLOPS this fixes
  the bandwidth each of the application's threads attempts to draw
  (``peak_gflops / AI`` GB/s, assumption 3 of the paper), and

* its **NUMA data placement** — the paper models two extremes: applications
  "perfectly adapted to NUMA" that only ever read memory local to the
  thread's node, and "NUMA-bad" applications that store *all* their data on
  a single node.  We additionally support interleaved placement (data
  spread evenly over all nodes), the behaviour one gets from
  ``numactl --interleave`` or from ignoring NUMA on first-touch kernels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Placement", "AppSpec"]


class Placement(enum.Enum):
    """Where an application's data lives relative to its threads."""

    #: Every thread only accesses memory of its own NUMA node
    #: (the paper's "perfectly adapted to NUMA" application).
    NUMA_PERFECT = "numa-perfect"

    #: All data lives on one home node; threads elsewhere read remotely
    #: (the paper's "NUMA-bad" / "worst case" application).
    SINGLE_NODE = "single-node"

    #: Data spread evenly across all nodes; every thread reads
    #: ``1/num_nodes`` of its traffic from each node (extension).
    INTERLEAVED = "interleaved"


@dataclass(frozen=True, slots=True)
class AppSpec:
    """Analytic description of one application.

    Parameters
    ----------
    name:
        Identifier used in allocations and reports; unique per workload.
    arithmetic_intensity:
        FLOPs per byte of memory traffic.  The paper's examples use 0.5 and
        10 (model machine) and 1/32, 1, 1/16 (Skylake).
    placement:
        NUMA data placement, see :class:`Placement`.
    home_node:
        For :attr:`Placement.SINGLE_NODE`: which node holds the data.
        Ignored (and must be left ``None``) for other placements.
    peak_gflops_per_thread:
        Override of the machine's per-core peak for this application.
        The paper assumes "a single CPU core has the same peak GFLOPS for
        each application" (assumption 1), so the default of ``None`` (use
        the core's peak) reproduces the paper; the override supports
        modelling applications that cannot reach machine peak.
    """

    name: str
    arithmetic_intensity: float
    placement: Placement = Placement.NUMA_PERFECT
    home_node: int | None = None
    peak_gflops_per_thread: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("application name must be non-empty")
        if self.arithmetic_intensity <= 0:
            raise ConfigurationError(
                f"app '{self.name}': arithmetic_intensity must be positive, "
                f"got {self.arithmetic_intensity}"
            )
        if self.placement is Placement.SINGLE_NODE:
            if self.home_node is None or self.home_node < 0:
                raise ConfigurationError(
                    f"app '{self.name}': SINGLE_NODE placement requires a "
                    f"non-negative home_node"
                )
        elif self.home_node is not None:
            raise ConfigurationError(
                f"app '{self.name}': home_node only applies to SINGLE_NODE "
                f"placement"
            )
        if (
            self.peak_gflops_per_thread is not None
            and self.peak_gflops_per_thread <= 0
        ):
            raise ConfigurationError(
                f"app '{self.name}': peak_gflops_per_thread must be "
                f"positive, got {self.peak_gflops_per_thread}"
            )

    @property
    def fingerprint(self) -> tuple:
        """Hashable digest of everything the performance model reads.

        Used (with the machine fingerprint and the allocation bytes) as
        the memo-cache key of the fast evaluation engine
        (:mod:`repro.core.fasteval`).
        """
        return (
            self.name,
            self.arithmetic_intensity,
            self.placement.value,
            self.home_node,
            self.peak_gflops_per_thread,
        )

    def peak_gflops(self, core_peak: float) -> float:
        """Effective per-thread peak GFLOPS on a core with ``core_peak``."""
        if self.peak_gflops_per_thread is None:
            return core_peak
        return min(self.peak_gflops_per_thread, core_peak)

    def demand_per_thread(self, core_peak: float) -> float:
        """Bandwidth (GB/s) one thread attempts to draw (assumption 3)."""
        return self.peak_gflops(core_peak) / self.arithmetic_intensity

    def is_memory_bound_on(self, core_peak: float, baseline_bw: float) -> bool:
        """True if a thread's demand exceeds its fair bandwidth share."""
        return self.demand_per_thread(core_peak) > baseline_bw

    # Convenience constructors -----------------------------------------
    @classmethod
    def memory_bound(
        cls, name: str, arithmetic_intensity: float = 0.5
    ) -> "AppSpec":
        """A NUMA-perfect memory-bound application (paper default AI 0.5)."""
        return cls(name=name, arithmetic_intensity=arithmetic_intensity)

    @classmethod
    def compute_bound(
        cls, name: str, arithmetic_intensity: float = 10.0
    ) -> "AppSpec":
        """A NUMA-perfect compute-bound application (paper default AI 10)."""
        return cls(name=name, arithmetic_intensity=arithmetic_intensity)

    @classmethod
    def numa_bad(
        cls, name: str, arithmetic_intensity: float = 1.0, home_node: int = 0
    ) -> "AppSpec":
        """A NUMA-bad application storing all data on ``home_node``."""
        return cls(
            name=name,
            arithmetic_intensity=arithmetic_intensity,
            placement=Placement.SINGLE_NODE,
            home_node=home_node,
        )
