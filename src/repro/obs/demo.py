"""Instrumented demo workloads behind ``python -m repro trace <target>``.

Each target runs a small, fast (< a few seconds) workload with enough
span/metric activity to produce an interesting Chrome trace:

* ``quickstart`` — the Tables I/II workload: model predictions for the
  three Figure 2 allocations plus an exhaustive allocation search;
* ``optimizer`` — all four allocation searches on the model machine;
* ``agent`` — a scaled-down Figure 1 run: two runtimes on the simulated
  machine coordinated by the agent (producer-consumer alignment).

Targets assume the caller already enabled instrumentation (the CLI wraps
them in :func:`repro.obs.capture`); they work uninstrumented too, just
tracelessly.  Kept out of ``repro.obs.__init__`` so importing the
observability layer never drags in the simulator stack.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ObservabilityError
from repro.obs import OBS

__all__ = ["TRACE_TARGETS", "run_trace_target"]


def _demo_quickstart() -> str:
    """Model predictions + exhaustive search on the paper workload."""
    from repro.core import (
        AppSpec,
        EvenSharePolicy,
        ExhaustiveSearch,
        NodeExclusivePolicy,
        NumaPerformanceModel,
        UnevenSharePolicy,
    )
    from repro.machine import model_machine

    machine = model_machine()
    apps = [
        AppSpec.memory_bound("mem0", 0.5),
        AppSpec.memory_bound("mem1", 0.5),
        AppSpec.memory_bound("mem2", 0.5),
        AppSpec.compute_bound("comp", 10.0),
    ]
    model = NumaPerformanceModel()
    policies = {
        "uneven": UnevenSharePolicy(
            {"mem0": 1, "mem1": 1, "mem2": 1, "comp": 5}
        ),
        "even": EvenSharePolicy(),
        "node-exclusive": NodeExclusivePolicy(),
    }
    lines = []
    with OBS.tracer.span("demo/quickstart", machine=machine.name):
        for name, policy in policies.items():
            with OBS.tracer.span("demo/scenario", scenario=name) as span:
                alloc = policy.allocate(machine, apps)
                pred = model.predict(machine, apps, alloc)
                span.attrs["gflops"] = pred.total_gflops
            lines.append(f"  {name:15s} {pred.total_gflops:7.2f} GFLOPS")
        best = ExhaustiveSearch(model).search(machine, apps)
    lines.append(
        f"exhaustive optimum: {best.score:.1f} GFLOPS "
        f"({best.evaluations} model evaluations)"
    )
    return "\n".join(lines)


def _demo_optimizer() -> str:
    """All four allocation searches on the model machine."""
    from repro.core import (
        AnnealingSearch,
        AppSpec,
        ExhaustiveSearch,
        GreedySearch,
        HillClimbSearch,
    )
    from repro.machine import model_machine

    machine = model_machine()
    apps = [
        AppSpec.memory_bound("mem0", 0.5),
        AppSpec.memory_bound("mem1", 0.5),
        AppSpec.memory_bound("mem2", 0.5),
        AppSpec.compute_bound("comp", 10.0),
    ]
    searches = {
        "exhaustive": ExhaustiveSearch(),
        "greedy": GreedySearch(),
        "hill-climb": HillClimbSearch(),
        "annealing": AnnealingSearch(steps=800, seed=1),
    }
    lines = []
    for name, search in searches.items():
        result = search.search(machine, apps)
        lines.append(
            f"  {name:11s} {result.score:7.2f} GFLOPS in "
            f"{result.evaluations:5d} evaluations"
        )
    return "\n".join(lines)


def _demo_agent() -> str:
    """Scaled-down Figure 1: two runtimes plus the coordination agent."""
    from repro.agent import Agent, OcrVxEndpoint, ProducerConsumerAlignment
    from repro.apps import ProducerConsumerScenario
    from repro.machine import model_machine
    from repro.runtime import OCRVxRuntime
    from repro.sim import ExecutionSimulator

    machine = model_machine()
    ex = ExecutionSimulator(machine)
    producer = OCRVxRuntime("producer", ex)
    consumer = OCRVxRuntime("consumer", ex)
    producer.start()
    consumer.start()
    scenario = ProducerConsumerScenario(
        ex,
        producer,
        consumer,
        iterations=12,
        tasks_per_iteration=8,
        producer_flops=0.004,
        consumer_flops=0.012,
    )
    scenario.build()
    agent = Agent(
        ex,
        ProducerConsumerAlignment(
            "producer", "consumer", max_lead=3.0, min_lead=1.0
        ),
        period=0.005,
    )
    agent.register(OcrVxEndpoint(producer))
    agent.register(OcrVxEndpoint(consumer))
    agent.start()
    end = ex.run_until_condition(lambda: scenario.finished, max_time=600)
    return (
        f"finished at t={end:.3f}s after {agent.rounds} agent rounds, "
        f"{agent.commands_issued()} commands, peak "
        f"{scenario.max_intermediate_items()} buffered items"
    )


#: Target name -> demo callable; each returns a human-readable summary.
TRACE_TARGETS: dict[str, Callable[[], str]] = {
    "quickstart": _demo_quickstart,
    "optimizer": _demo_optimizer,
    "agent": _demo_agent,
}


def run_trace_target(name: str) -> str:
    """Run one demo target by name; returns its summary text."""
    if name not in TRACE_TARGETS:
        raise ObservabilityError(
            f"unknown trace target '{name}' "
            f"(choose from {sorted(TRACE_TARGETS)})"
        )
    return TRACE_TARGETS[name]()
