"""The allocation service core: admission, churn, re-optimization.

:class:`AllocationService` is the paper's Figure 1 agent turned into a
long-running daemon.  Where :class:`~repro.agent.agent.Agent` runs a
fixed number of offline rounds over a static application set, the
service accepts *churn*: applications register, stream progress
reports, and deregister at any time, and the service keeps re-issuing
per-NUMA-node thread counts for whoever is currently admitted.

The core is transport-agnostic and clock-agnostic: it consumes decoded
:mod:`repro.serve.protocol` messages via :meth:`handle` and emits
pushed messages through subscriber callbacks, while *when* things
happen is delegated to an injected ``clock()`` / ``call_later()`` pair.
:mod:`repro.serve.server` binds it to an asyncio unix socket (loop
time), :mod:`repro.serve.scenarios` binds it to the DES
:class:`~repro.sim.engine.Simulator` (simulation time), and
:class:`~repro.serve.client.ServiceClient` drives it in-process — all
three run the *same* policy code.

Policy highlights (full semantics in ``docs/SERVICE.md``):

* **Debounced re-optimization** — every membership change arms one
  ``debounce``-second timer instead of searching immediately, so a
  burst of joins/leaves costs one search, not one per event.
* **Score-cache reuse** — the service owns a single
  :class:`~repro.core.model.NumaPerformanceModel` whose
  :class:`~repro.core.fasteval.ScoreCache` persists across churn;
  when a departed workload composition returns, its candidate scores
  are cache hits (property-tested in ``tests/test_core_fasteval.py``).
* **Incremental re-optimization** — ``mode="delta"`` warm-starts each
  re-optimization from the previous allocation through
  :class:`~repro.core.delta.DeltaSearch` (O(delta) move exploration
  with automatic full-search fall-back) instead of re-searching the
  whole candidate space; ``mode="full"`` (default) keeps the
  from-scratch oracle behaviour.
* **Staleness quarantine + quorum degradation** — sessions whose last
  report is older than the :class:`~repro.agent.resilience
  .ResiliencePolicy` freshness window are quarantined out of the
  optimized workload; when fewer than ``quorum`` of live sessions are
  active the service degrades to a static equal share instead of
  trusting the model with a mostly-unobserved workload.
* **At-least-once delivery** — each progress report carries the epoch
  the runtime last applied; the service re-pushes the current
  allocation while that trails, which is what lets the chaos path
  (``python -m repro chaos serve-crash``) converge under dropped
  commands.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.agent.protocol import CommandKind, ThreadCommand
from repro.agent.resilience import ResiliencePolicy
from repro.core.allocation import ThreadAllocation
from repro.core.delta import DeltaSearch
from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import ExhaustiveSearch
from repro.core.spec import AppSpec
from repro.errors import ServiceError
from repro.machine.topology import MachineTopology
from repro.obs import OBS, CounterHandle, GaugeHandle, HistogramHandle
from repro.serve.persist import Journal, RecoveryLoad, load_journal
from repro.serve.protocol import (
    Ack,
    AllocationUpdate,
    Deregister,
    ErrorReply,
    ProgressReport,
    QueryAllocation,
    Register,
    ShutdownNotice,
    app_spec_from_dict,
    app_spec_to_dict,
)
from repro.serve.registry import Session, SessionState, WorkloadRegistry

__all__ = [
    "ServiceConfig",
    "AllocationService",
]

# Hot-path metric handles (PERF001: resolved once, not per event).
_SESSIONS = GaugeHandle("serve/sessions")
_CHURN_EVENTS = CounterHandle("serve/churn_events")
_REOPTIMIZATIONS = CounterHandle("serve/reoptimizations")
_DEGRADED = CounterHandle("serve/degraded_reoptimizations")
_COMMANDS = CounterHandle("serve/commands")
_RETRANSMITS = CounterHandle("serve/retransmits")
_QUARANTINED = CounterHandle("serve/quarantined")
_COMMAND_LATENCY = HistogramHandle("serve/command_latency")
_DELTA_REOPTIMIZATIONS = CounterHandle("serve/delta_reoptimizations")
_RECOVERIES = CounterHandle("serve/recoveries")
_JOURNAL_RECORDS = CounterHandle("serve/journal_records")
_SHED = CounterHandle("serve/shed_commands")
_RECOVERY_REPLAY = HistogramHandle("serve/recovery_replay_ms")


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable knobs of one :class:`AllocationService`.

    Attributes
    ----------
    machine:
        Topology the workload is optimized against.
    debounce:
        Seconds a membership change waits before triggering a
        re-optimization, coalescing join/leave bursts.  Must be
        positive: zero would re-introduce one search per event.
    report_interval:
        Expected seconds between a runtime's progress reports; the
        staleness window is ``resilience.freshness_window`` times this
        (mirroring the agent's per-period windows).
    resilience:
        The PR-3 policy reused for freshness and quorum semantics.
    max_sessions:
        Admission cap (``None`` = unbounded).  A full service answers
        ``Register`` with an :class:`~repro.serve.protocol.ErrorReply`
        code ``overloaded`` instead of growing without bound.
    mode:
        ``"full"`` re-runs the configured search from scratch on every
        re-optimization; ``"delta"`` routes churn through the
        incremental :class:`~repro.core.delta.DeltaSearch`, warm-started
        from the previous allocation (with automatic fall-back to the
        full search — see ``docs/OPTIMIZER.md``).
    command_deadline:
        Seconds a ``progress-report`` / ``query-allocation`` may sit
        queued (between being read off the wire and being handled)
        before the service answers ``deadline-exceeded`` instead of
        acting on stale input.  ``None`` (default) disables the check.
        Membership changes are exempt: a late ``register`` or
        ``deregister`` is still true.
    shed_report_interval:
        Load-shedding floor for ``progress-report`` floods: while a
        re-optimization is already pending (debounce armed), reports
        from a session that reported less than this many seconds ago
        are coalesced — acknowledged but not folded into the registry.
        ``None`` (default) disables shedding.  ``register`` and
        ``deregister`` are never shed.
    workers:
        Process count for big score batches (:mod:`repro.core.
        parallel`), applied to the service's model.  ``None`` (default)
        leaves the model's setting alone (which reads the
        ``REPRO_WORKERS`` environment variable); ``0`` forces serial
        scoring.  Allocations are byte-identical for every worker
        count; :meth:`AllocationService.drain` and
        :meth:`AllocationService.crash` release the pool, and a
        recovered service lazily respawns it on its next big batch.
    parallel_min_batch:
        Smallest batch routed through the worker pool; ``None`` keeps
        the model's threshold
        (:data:`repro.core.parallel.DEFAULT_MIN_BATCH`).
    """

    machine: MachineTopology
    debounce: float = 0.02
    report_interval: float = 0.1
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    max_sessions: int | None = None
    mode: str = "full"
    command_deadline: float | None = None
    shed_report_interval: float | None = None
    workers: int | None = None
    parallel_min_batch: int | None = None

    def __post_init__(self) -> None:
        if self.debounce <= 0:
            raise ServiceError(
                f"debounce must be positive, got {self.debounce}"
            )
        if self.report_interval <= 0:
            raise ServiceError(
                f"report_interval must be positive, "
                f"got {self.report_interval}"
            )
        if self.mode not in ("full", "delta"):
            raise ServiceError(
                f"mode must be 'full' or 'delta', got {self.mode!r}"
            )
        if self.command_deadline is not None and self.command_deadline <= 0:
            raise ServiceError(
                f"command_deadline must be positive, "
                f"got {self.command_deadline}"
            )
        if self.shed_report_interval is not None:
            if self.shed_report_interval <= 0:
                raise ServiceError(
                    f"shed_report_interval must be positive, "
                    f"got {self.shed_report_interval}"
                )
            if self.shed_report_interval >= self.staleness_window / 2:
                raise ServiceError(
                    f"shed_report_interval "
                    f"{self.shed_report_interval} must stay under half "
                    f"the staleness window "
                    f"({self.staleness_window}); shedding that "
                    f"aggressively would quarantine healthy sessions"
                )
        if self.workers is not None and self.workers < 0:
            raise ServiceError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.parallel_min_batch is not None and self.parallel_min_batch < 1:
            raise ServiceError(
                f"parallel_min_batch must be >= 1, "
                f"got {self.parallel_min_batch}"
            )

    @property
    def staleness_window(self) -> float:
        """Seconds without a report before a session is quarantined."""
        return self.resilience.freshness_window * self.report_interval


class AllocationService:
    """Transport-agnostic core of the ``repro.serve`` daemon.

    Parameters
    ----------
    config:
        Machine, timing, and resilience knobs.
    clock:
        Zero-argument callable returning the current time on whatever
        clock drives this instance (loop time, simulation time, ...).
        Never wall-clock arithmetic inside the service itself.
    call_later:
        ``(delay, fn)`` scheduler on the same clock; used for the
        debounce timer.  Returning a handle is not required — the
        service guards re-entry itself.
    model / search:
        Injectable for tests; by default the service owns one
        :class:`~repro.core.model.NumaPerformanceModel` (so the score
        cache survives churn) driving an
        :class:`~repro.core.optimizer.ExhaustiveSearch`.
    journal:
        Optional :class:`~repro.serve.persist.Journal`; when set, every
        state-changing event is appended (and periodically compacted
        into a snapshot) so :meth:`recover` can rebuild this service
        byte-identically after a crash.  Journaling is a pure observer:
        a journaled service and an un-journaled one produce identical
        replies, pushes, and metrics.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        clock: Callable[[], float],
        call_later: Callable[[float, Callable[[], None]], object],
        model: NumaPerformanceModel | None = None,
        search: ExhaustiveSearch | None = None,
        journal: Journal | None = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.call_later = call_later
        self.model = model or NumaPerformanceModel()
        if config.workers is not None:
            self.model.set_workers(
                config.workers, min_batch=config.parallel_min_batch
            )
        self.search = search or ExhaustiveSearch(self.model)
        if self.search.model is not self.model:
            raise ServiceError(
                "search must evaluate through the service's model "
                "(otherwise the ScoreCache cannot persist across churn)"
            )
        #: the incremental re-optimizer (delta mode only); its fall-back
        #: is the service's own full search, so both paths share the
        #: model and its persistent score cache.
        self.delta: DeltaSearch | None = (
            DeltaSearch(
                self.model, self.search.objective, fallback=self.search
            )
            if config.mode == "delta"
            else None
        )
        self.registry = WorkloadRegistry(max_sessions=config.max_sessions)
        #: name -> callback receiving this session's pushed messages.
        self._subscribers: dict[str, Callable[[object], None]] = {}
        #: per-session thread counts of the current allocation.
        self._allocation: dict[str, tuple[int, ...]] = {}
        #: scalar-model score of the current allocation (ground truth).
        self._score: float | None = None
        #: whether the current allocation came from the degraded path.
        self._degraded = False
        #: epoch the current allocation was computed for.
        self._allocation_epoch: int | None = None
        #: what the last *optimized* (non-degraded) answer was computed
        #: for/from — the warm start of the next delta re-optimization.
        self._prev_specs: tuple[AppSpec, ...] = ()
        self._prev_allocation: ThreadAllocation | None = None
        self._prev_score: float | None = None
        self._reopt_pending = False
        #: clock times of membership changes awaiting the pending
        #: re-optimization — drained into the latency histogram.
        self._pending_event_times: list[float] = []
        self._draining = False
        self._watchdog_interval: float | None = None
        self.reoptimizations = 0
        self.degraded_reoptimizations = 0
        self.delta_reoptimizations = 0
        self.retransmits = 0
        self.quarantines = 0
        #: the write-ahead journal (None = volatile service).
        self.journal = journal
        #: events appended to the journal by this instance.
        self.journal_records = 0
        #: times this instance was rebuilt from disk (0 or 1).
        self.recoveries = 0
        #: progress-report/query commands shed under overload.
        self.shed_commands = 0
        #: what :meth:`recover` read back (diagnostics for chaos tests).
        self.last_recovery: RecoveryLoad | None = None

    # -- message entry point --------------------------------------------

    def handle(self, message, *, received_at: float | None = None):
        """Process one decoded request; returns the direct reply.

        The reply is an :class:`~repro.serve.protocol.Ack`,
        :class:`~repro.serve.protocol.AllocationUpdate`, or — for any
        rejected request — an :class:`~repro.serve.protocol.ErrorReply`
        (the core never lets a bad request raise through a transport).
        Every rejection carries a machine-readable ``code`` from
        :data:`~repro.serve.protocol.ERROR_CODES`.

        ``received_at`` is when the transport read the request off the
        wire (same clock as ``clock()``).  With
        ``config.command_deadline`` set, a ``progress-report`` or
        ``query-allocation`` that sat queued past the deadline is
        answered ``deadline-exceeded`` instead of being acted on —
        stale load signals would steer the optimizer wrong, while a
        late ``register``/``deregister`` is still a true membership
        fact and is always processed.
        """
        deadline = self.config.command_deadline
        if (
            deadline is not None
            and received_at is not None
            and isinstance(message, (ProgressReport, QueryAllocation))
            and self.clock() - received_at > deadline
        ):
            self._count_shed()
            return ErrorReply(
                error=(
                    f"command sat queued {self.clock() - received_at:.4f}s, "
                    f"past the {deadline}s deadline"
                ),
                in_reply_to=message.TYPE,
                code="deadline-exceeded",
            )
        try:
            if isinstance(message, Register):
                return self._register(message)
            if isinstance(message, Deregister):
                return self._deregister(message)
            if isinstance(message, ProgressReport):
                return self._progress(message)
            if isinstance(message, QueryAllocation):
                return self._query(message)
        except ServiceError as exc:
            return ErrorReply(
                error=str(exc),
                in_reply_to=getattr(message, "TYPE", None),
                code=getattr(exc, "code", None) or "invalid-request",
            )
        return ErrorReply(
            error=f"unsupported message {type(message).__name__}",
            in_reply_to=getattr(message, "TYPE", None),
            code="unsupported",
        )

    def subscribe(
        self, name: str, push: Callable[[object], None]
    ) -> None:
        """Attach ``push`` as the stream back to session ``name``.

        Pushed messages are :class:`~repro.serve.protocol
        .AllocationUpdate` (``in_reply_to=None``) and one final
        :class:`~repro.serve.protocol.ShutdownNotice` on drain.
        """
        if name not in self.registry:
            raise ServiceError(
                f"cannot subscribe unknown session '{name}'"
            )
        self._subscribers[name] = push

    def unsubscribe(self, name: str) -> None:
        """Detach the stream of session ``name`` (idempotent)."""
        self._subscribers.pop(name, None)

    # -- request handlers -----------------------------------------------

    def _register(self, message: Register):
        if self._draining:
            raise ServiceError(
                "service is draining; admission is closed",
                code="draining",
            )
        now = self.clock()
        self.registry.admit(message.app, now)
        self._journal_event(
            {
                "kind": "register",
                "name": message.name,
                "t": now,
                "app": app_spec_to_dict(message.app),
            }
        )
        self._note_churn(now)
        if OBS.enabled:
            _SESSIONS.set(len(self.registry))
        return Ack(
            name=message.name,
            epoch=self.registry.epoch,
            in_reply_to=Register.TYPE,
        )

    def _deregister(self, message: Deregister):
        session = self.registry.remove(message.name)
        self.unsubscribe(message.name)
        self._allocation.pop(message.name, None)
        self._journal_event(
            {"kind": "deregister", "name": message.name}
        )
        self._note_churn(self.clock())
        if OBS.enabled:
            _SESSIONS.set(len(self.registry))
        return Ack(
            name=session.name,
            epoch=self.registry.epoch,
            in_reply_to=Deregister.TYPE,
        )

    def _progress(self, message: ProgressReport):
        if self._should_shed(message):
            # Coalesced under debounce pressure: acknowledged so the
            # runtime keeps its cadence, but nothing is mutated (and
            # nothing journaled) — the pending re-optimization will
            # read the last accepted report instead.
            self._count_shed()
            return Ack(
                name=message.name,
                epoch=self.registry.epoch,
                in_reply_to=ProgressReport.TYPE,
            )
        session = self.registry.record_report(
            message.name,
            message.time,
            message.progress,
            message.cpu_load,
            message.acked_epoch,
        )
        self._journal_event(
            {
                "kind": "report",
                "name": message.name,
                "t": message.time,
                "progress": dict(message.progress),
                "cpu_load": message.cpu_load,
                "acked": message.acked_epoch,
            }
        )
        if session.state is SessionState.QUARANTINED:
            # A heartbeat from a quarantined session brings it back
            # into the optimized workload (membership change).
            self.registry.reactivate(message.name)
            self._journal_event(
                {"kind": "reactivate", "name": message.name}
            )
            self._note_churn(self.clock())
        self._maybe_retransmit(session)
        return Ack(
            name=session.name,
            epoch=self.registry.epoch,
            in_reply_to=ProgressReport.TYPE,
        )

    def _should_shed(self, message: ProgressReport) -> bool:
        """True when this report should be coalesced, not applied.

        Sheds only while a re-optimization is already pending (the
        flood is about to be folded into one answer anyway) and only
        reports that arrive faster than ``shed_report_interval`` after
        the session's last accepted one.  Never sheds the report that
        would reactivate a quarantined session — that one is a
        membership signal, not a load sample.
        """
        interval = self.config.shed_report_interval
        if interval is None or not self._reopt_pending:
            return False
        session = self.registry.get(message.name)
        if session is None or not session.active:
            return False
        last = session.last_report_time
        return last is not None and message.time - last < interval

    def _count_shed(self) -> None:
        self.shed_commands += 1
        if OBS.enabled:
            _SHED.add()

    def _query(self, message: QueryAllocation):
        session = self.registry.get(message.name)
        if session is None or session.state is SessionState.CLOSED:
            raise ServiceError(
                f"unknown session '{message.name}'",
                code="unknown-session",
            )
        per_node = self._allocation.get(message.name)
        if per_node is None:
            raise ServiceError(
                f"no allocation computed yet for '{message.name}' "
                f"(re-optimization pending)",
                code="no-allocation",
            )
        return AllocationUpdate(
            name=message.name,
            per_node=per_node,
            epoch=self._allocation_epoch or 0,
            score=self._score or 0.0,
            degraded=self._degraded,
            in_reply_to=QueryAllocation.TYPE,
        )

    # -- churn / debounce -----------------------------------------------

    def _note_churn(self, now: float) -> None:
        """Record a membership change and arm the debounce timer."""
        if OBS.enabled:
            _CHURN_EVENTS.add()
        self._pending_event_times.append(now)
        if self._reopt_pending:
            return
        self._reopt_pending = True
        self.call_later(self.config.debounce, self._debounce_fired)

    def _debounce_fired(self) -> None:
        self._reopt_pending = False
        if self._draining:
            return
        self.reoptimize()

    # -- watchdog -------------------------------------------------------

    def start_watchdog(self, interval: float | None = None) -> None:
        """Arm the periodic staleness sweep.

        Re-optimizations are churn-triggered, so without a watchdog a
        session that silently stops reporting would only be noticed at
        the *next* membership change.  The watchdog sweeps every
        ``interval`` seconds (default: the staleness window itself) and
        treats any resulting quarantine as a churn event, which arms
        the normal debounced re-optimization.
        """
        if interval is not None and interval <= 0:
            raise ServiceError(
                f"watchdog interval must be positive, got {interval}"
            )
        self._watchdog_interval = (
            interval
            if interval is not None
            else self.config.staleness_window
        )
        self.call_later(self._watchdog_interval, self._watchdog_tick)

    def _watchdog_tick(self) -> None:
        if self._draining or self._watchdog_interval is None:
            return
        now = self.clock()
        active_before = sum(1 for _ in self.registry.active_sessions())
        self._sweep_stale(now)
        active_after = sum(1 for _ in self.registry.active_sessions())
        if active_after < active_before:
            self._note_churn(now)
        self.call_later(self._watchdog_interval, self._watchdog_tick)

    # -- the re-optimization loop ---------------------------------------

    def _sweep_stale(self, now: float) -> None:
        """Quarantine every active session outside the freshness window."""
        window = self.config.staleness_window
        for session in list(self.registry.active_sessions()):
            last = session.last_report_time
            if last is None or now - last > window:
                self.registry.quarantine(session.name)
                self._journal_event(
                    {"kind": "quarantine", "name": session.name}
                )
                self.quarantines += 1
                if OBS.enabled:
                    _QUARANTINED.add()

    def _quorum_met(self) -> bool:
        live = sum(1 for _ in self.registry.live_sessions())
        if live == 0:
            return True
        active = sum(1 for _ in self.registry.active_sessions())
        return active / live >= self.config.resilience.quorum

    def reoptimize(self) -> None:
        """Recompute the allocation for the current active workload.

        Called by the debounce timer; safe to call directly (tests, the
        replay driver).  Chooses the optimizer path when quorum holds
        and the degraded equal-share path when it does not, then pushes
        an :class:`~repro.serve.protocol.AllocationUpdate` to every
        subscribed session whose counts, epoch, or degradation flag
        changed.
        """
        now = self.clock()
        self._sweep_stale(now)
        specs = self.registry.active_specs()
        epoch = self.registry.epoch
        with OBS.tracer.span(
            "serve/reoptimize", apps=len(specs), epoch=epoch
        ) as span:
            degraded = not self._quorum_met()
            if not specs:
                allocation: dict[str, tuple[int, ...]] = {}
                score: float | None = None
            elif degraded:
                allocation, score = self._equal_share(specs)
            else:
                allocation, score = self._optimize(specs)
            if not specs or degraded:
                # An equal share (or an empty workload) is not a search
                # answer; the next delta re-optimization cold-starts.
                self._prev_specs = ()
                self._prev_allocation = None
                self._prev_score = None
            self.reoptimizations += 1
            if degraded:
                self.degraded_reoptimizations += 1
            if OBS.enabled:
                _REOPTIMIZATIONS.add()
                if degraded:
                    _DEGRADED.add()
                span.attrs["degraded"] = degraded
                if score is not None:
                    span.attrs["score"] = score
        self._allocation = allocation
        self._score = score
        self._degraded = degraded
        self._allocation_epoch = epoch
        self._journal_event(
            {
                "kind": "allocation",
                "epoch": epoch,
                "score": score,
                "degraded": degraded,
                "allocation": {
                    name: list(counts)
                    for name, counts in allocation.items()
                },
            }
        )
        events, self._pending_event_times = self._pending_event_times, []
        if OBS.enabled:
            for event_time in events:
                _COMMAND_LATENCY.record(now - event_time)
        self._push_updates()

    def _optimize(
        self, specs: tuple[AppSpec, ...]
    ) -> tuple[dict[str, tuple[int, ...]], float]:
        """The normal path: run the search over the active workload.

        The search shares the service's model, so candidate scores for
        any previously-seen workload composition come straight out of
        the :class:`~repro.core.fasteval.ScoreCache`; the returned
        score is the scalar model's ground truth for the winner.  In
        delta mode the incremental searcher is warm-started from the
        previous answer instead of re-searching the whole space.
        """
        if self.delta is not None:
            outcome = self.delta.search(
                self.config.machine,
                specs,
                previous=self._prev_allocation,
                previous_specs=self._prev_specs,
                previous_score=self._prev_score,
            )
            self.delta_reoptimizations += 1
            if OBS.enabled:
                _DELTA_REOPTIMIZATIONS.add()
            result = outcome.result
        else:
            # Full mode deliberately re-searches the whole space even
            # though the previous allocation is at hand: it is the
            # oracle the delta mode is checked against.
            result = self.search.search(self.config.machine, specs)  # repro: noqa[PERF002]
        self._prev_specs = specs
        self._prev_allocation = result.allocation
        self._prev_score = result.score
        allocation = {
            spec.name: tuple(
                int(x) for x in result.allocation.threads_of(spec.name)
            )
            for spec in specs
        }
        return allocation, result.score

    def _equal_share(
        self, specs: tuple[AppSpec, ...]
    ) -> tuple[dict[str, tuple[int, ...]], float]:
        """Degraded path: static equal split, no model trust required.

        Mirrors :meth:`repro.agent.agent.Agent._equal_share`: each
        node's cores are divided evenly, the remainder going to the
        earliest-admitted apps.  The score is still the scalar model's
        prediction for transparency, but it did not steer the choice.
        """
        machine = self.config.machine
        names = [s.name for s in specs]
        counts = [[0] * machine.num_nodes for _ in names]
        for node_index, node in enumerate(machine.nodes):
            cores = len(node.cores)
            base, extra = divmod(cores, len(names))
            for app_index in range(len(names)):
                counts[app_index][node_index] = base + (
                    1 if app_index < extra else 0
                )
        allocation = ThreadAllocation(
            app_names=tuple(names), counts=counts
        )
        prediction = self.model.predict(machine, specs, allocation)
        return (
            {
                name: tuple(
                    int(x) for x in allocation.threads_of(name)
                )
                for name in names
            },
            prediction.total_gflops,
        )

    # -- downstream push ------------------------------------------------

    def _update_for(self, session: Session) -> AllocationUpdate | None:
        per_node = self._allocation.get(session.name)
        if per_node is None:
            return None
        return AllocationUpdate(
            name=session.name,
            per_node=per_node,
            epoch=self._allocation_epoch or 0,
            score=self._score or 0.0,
            degraded=self._degraded,
        )

    def _push_updates(self) -> None:
        for session in list(self.registry.active_sessions()):
            update = self._update_for(session)
            if update is None:
                continue
            if session.pushed_epoch == update.epoch:
                continue
            self._push(session, update)

    def _maybe_retransmit(self, session: Session) -> None:
        """Re-push when the runtime's applied epoch trails the current.

        The runtime tells us what it last applied (``acked_epoch`` on
        its progress reports); if a pushed command was lost in flight,
        the gap shows up here and the command is re-sent — at-least-once
        delivery without any transport-level acking.
        """
        if self._allocation_epoch is None:
            return
        if session.name not in self._subscribers:
            return
        if session.acked_epoch is not None and (
            session.acked_epoch >= self._allocation_epoch
        ):
            return
        if session.pushed_epoch != self._allocation_epoch:
            # The regular push loop has not even reached this epoch yet
            # (or the session subscribed late); the plain push below
            # counts as the first transmission, not a retransmit.
            update = self._update_for(session)
            if update is not None:
                self._push(session, update)
            return
        update = self._update_for(session)
        if update is None:
            return
        self.retransmits += 1
        if OBS.enabled:
            _RETRANSMITS.add()
        self._push(session, update)

    def _push(self, session: Session, update: AllocationUpdate) -> None:
        session.pushed_epoch = update.epoch
        self._journal_event(
            {
                "kind": "push",
                "name": session.name,
                "epoch": update.epoch,
            }
        )
        if OBS.enabled:
            _COMMANDS.add()
        push = self._subscribers.get(session.name)
        if push is not None:
            push(update)

    # -- persistence ----------------------------------------------------

    def _journal_event(self, event: dict) -> None:
        """Append one state-change record; compact when due.

        Called *after* the mutation it records succeeded, so the
        journal never contains an event the live service rejected.
        Pure observer: with ``journal=None`` (or a closed journal)
        this is a no-op and the service behaves byte-identically.
        """
        if self.journal is None or self.journal.closed:
            return
        self.journal.append(event)
        self.journal_records += 1
        if OBS.enabled:
            _JOURNAL_RECORDS.add()
        if self.journal.should_compact():
            self.journal.compact(self.snapshot_state())

    def snapshot_state(self) -> dict:
        """JSON-safe dump of everything :meth:`recover` must rebuild."""
        return {
            "machine": repr(self.config.machine.fingerprint),
            "mode": self.config.mode,
            "registry": self.registry.to_snapshot(),
            "allocation": {
                name: list(counts)
                for name, counts in self._allocation.items()
            },
            "score": self._score,
            "degraded": self._degraded,
            "allocation_epoch": self._allocation_epoch,
        }

    def _restore_state(self, state: dict) -> None:
        machine = state.get("machine")
        if machine != repr(self.config.machine.fingerprint):
            raise ServiceError(
                "journal snapshot was taken against a different machine "
                "topology; refusing to recover onto it"
            )
        if state.get("mode") != self.config.mode:
            raise ServiceError(
                f"journal snapshot was taken in mode "
                f"{state.get('mode')!r}, recovering in "
                f"{self.config.mode!r}; refusing"
            )
        self.registry = WorkloadRegistry.from_snapshot(
            state["registry"], max_sessions=self.config.max_sessions
        )
        self._allocation = {
            name: tuple(int(x) for x in counts)
            for name, counts in state["allocation"].items()
        }
        self._score = state["score"]
        self._degraded = state["degraded"]
        self._allocation_epoch = state["allocation_epoch"]

    def _replay_event(self, event: dict) -> None:
        """Apply one journal record to the recovering state.

        Each record replays the *registry-level* mutation it logged —
        not the request that caused it — so replay is deterministic
        and free of policy side effects (no debounce timers, no
        pushes, no re-optimizations during replay).
        """
        kind = event.get("kind")
        name = event.get("name")
        if kind == "register":
            self.registry.admit(
                app_spec_from_dict(event["app"]), event["t"]
            )
        elif kind == "deregister":
            self.registry.remove(name)
            self._allocation.pop(name, None)
        elif kind == "report":
            self.registry.record_report(
                name,
                event["t"],
                event["progress"],
                event["cpu_load"],
                event["acked"],
            )
        elif kind == "quarantine":
            self.registry.quarantine(name)
        elif kind == "reactivate":
            self.registry.reactivate(name)
        elif kind == "push":
            session = self.registry.get(name)
            if session is not None:
                session.pushed_epoch = event["epoch"]
        elif kind == "allocation":
            self._allocation = {
                app: tuple(int(x) for x in counts)
                for app, counts in event["allocation"].items()
            }
            self._score = event["score"]
            self._degraded = event["degraded"]
            self._allocation_epoch = event["epoch"]
        else:
            raise ServiceError(f"unknown journal event kind {kind!r}")

    @classmethod
    def recover(
        cls,
        path: str,
        config: ServiceConfig,
        *,
        clock: Callable[[], float],
        call_later: Callable[[float, Callable[[], None]], object],
        model: NumaPerformanceModel | None = None,
        search: ExhaustiveSearch | None = None,
        fsync: bool = True,
        compact_every: int | None = 1024,
        reconcile: bool = True,
    ) -> "AllocationService":
        """Rebuild a service from the journal directory at ``path``.

        Deterministic: loads the newest CRC-valid snapshot, replays
        every journal record after it (torn tails truncated, corrupt
        snapshots falling back a generation, duplicated segments
        deduplicated by ``seq`` — see
        :func:`~repro.serve.persist.load_journal`), then compacts the
        recovered state into a fresh generation so the next crash
        replays from *here*, not from the beginning of time.

        With ``reconcile`` (default) a recovered service with live
        sessions arms one debounced re-optimization, so its allocation
        answer is recomputed against the recovered workload instead of
        trusted blindly.  Same registry, same model, same search ⇒ the
        reconciliation answer equals the pre-crash one, and no spurious
        pushes go out (every session's ``pushed_epoch`` is already
        current).
        """
        start = time.perf_counter()
        loaded = load_journal(path)
        service = cls(
            config,
            clock=clock,
            call_later=call_later,
            model=model,
            search=search,
        )
        if loaded.state is not None:
            service._restore_state(loaded.state)
        for event in loaded.events:
            service._replay_event(event)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        service.recoveries = 1
        service.last_recovery = loaded
        service.journal = Journal.open(
            path,
            fsync=fsync,
            compact_every=compact_every,
            start_seq=loaded.last_seq,
        )
        service.journal.compact(service.snapshot_state())
        if OBS.enabled:
            _RECOVERIES.add()
            _RECOVERY_REPLAY.record(elapsed_ms)
            _SESSIONS.set(len(service.registry))
        if reconcile and any(
            True for _ in service.registry.live_sessions()
        ):
            service._note_churn(clock())
        return service

    def crash(self) -> None:
        """Simulate abrupt death (tests and chaos scenarios only).

        Unlike :meth:`drain`, nothing graceful happens: no shutdown
        notices, no final compaction — the journal descriptor is just
        released so :meth:`recover` reads exactly what the appends made
        durable.  The dead instance's pending timers become no-ops.
        """
        self._draining = True
        self._watchdog_interval = None
        self._subscribers.clear()
        if self.journal is not None:
            self.journal.close()
        self._release_workers()

    def _release_workers(self) -> None:
        """Shut down this service's scoring pool (drain/crash paths).

        The pool registry is process-wide, so this only matters when the
        service goes away for good — a recovered service respawns a
        fresh pool lazily on its next big score batch (asserted by the
        ``serve-crash-restart`` replay).
        """
        if self.model.workers > 0:
            from repro.core.parallel import release_pool

            release_pool(self.model.workers)

    # -- queries / shutdown ---------------------------------------------

    def current_allocation(self) -> dict[str, tuple[int, ...]]:
        """Per-session thread counts of the last re-optimization."""
        return dict(self._allocation)

    def current_score(self) -> float | None:
        """Scalar-model score of the current allocation (None = empty)."""
        return self._score

    @property
    def delta_fallbacks(self) -> int:
        """Full-search fall-backs the delta searcher took (0 = full mode)."""
        return self.delta.fallbacks if self.delta is not None else 0

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` was called; admission is closed."""
        return self._draining

    def thread_command(self, name: str) -> ThreadCommand:
        """The current allocation of ``name`` as an agent-wire command.

        This is the bridge to everything that speaks the PR-3 protocol:
        :class:`~repro.agent.protocol.RuntimeEndpoint` adapters and the
        :class:`~repro.faults.proxy.InjectionProxy` chaos path apply
        exactly this command.
        """
        per_node = self._allocation.get(name)
        if per_node is None:
            raise ServiceError(f"no allocation for session '{name}'")
        return ThreadCommand(
            kind=CommandKind.SET_ALLOCATION, per_node=per_node
        )

    def drain(self, reason: str = "draining") -> None:
        """Graceful shutdown: close admission, notify every session.

        Existing sessions get a final
        :class:`~repro.serve.protocol.ShutdownNotice`; the pending
        debounce timer (if armed) becomes a no-op.  Idempotent.
        """
        if self._draining:
            return
        self._draining = True
        self._watchdog_interval = None
        notice = ShutdownNotice(reason=reason)
        for name, push in list(self._subscribers.items()):
            push(notice)
        self._subscribers.clear()
        for session in list(self.registry.live_sessions()):
            self.registry.remove(session.name)
            self._journal_event(
                {"kind": "deregister", "name": session.name}
            )
        if self.journal is not None and not self.journal.closed:
            # Final compaction so a later recover() starts from the
            # drained state instead of replaying the whole history.
            self.journal.compact(self.snapshot_state())
            self.journal.close()
        self._release_workers()
        if OBS.enabled:
            _SESSIONS.set(0)
