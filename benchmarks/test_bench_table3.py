"""Table III: model vs synthetic benchmark on the (simulated) Skylake.

The paper compares its analytic model against a synthetic roofline
benchmark on a four-socket Xeon Gold 6138.  Here the "real" column runs
the same five scenarios through the full stack: OCR-Vx runtime + task
scheduler + execution simulator.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_table3_model, run_table3_real

EXPECTED_MODEL = {
    "uneven (1,1,1,17)": 23.20,
    "even (5,5,5,5)": 18.12,
    "node-exclusive": 15.18,
    "NUMA-bad cross-node (even)": 13.98,
    "NUMA-bad on-node (exclusive)": 15.18,
}


def test_bench_table3_model(benchmark):
    rows = benchmark(run_table3_model)
    emit(
        "Table III (model column)",
        render_table(
            ["scenario", "model (ours)", "model (paper)", "real (paper)"],
            [
                [r.name, r.our_model, r.paper_model, r.paper_real]
                for r in rows
            ],
        ),
    )
    for row in rows:
        assert row.our_model == pytest.approx(
            EXPECTED_MODEL[row.name], abs=0.005
        )


def test_bench_table3_real(benchmark):
    rows = benchmark.pedantic(
        run_table3_real, kwargs={"duration": 0.4}, rounds=1, iterations=1
    )
    emit(
        "Table III (model vs simulated synthetic benchmark)",
        render_table(
            [
                "scenario",
                "model (ours)",
                "real (ours)",
                "model (paper)",
                "real (paper)",
            ],
            [
                [
                    r.name,
                    r.our_model,
                    r.our_real,
                    r.paper_model,
                    r.paper_real,
                ]
                for r in rows
            ],
        ),
    )
    for row in rows:
        # Our "real" must track our model closely (the paper's tracked
        # within ~5%); and the scenario ordering must match the paper.
        assert row.our_real == pytest.approx(row.our_model, rel=0.05)
    ordering = [r.our_real for r in rows]
    assert ordering[0] > ordering[1] > ordering[2]
    assert ordering[3] == min(ordering)
