"""Tests for the Section V distributed layer."""

import pytest

from repro.core.spec import AppSpec
from repro.distributed import (
    BarrierIterativeWorkload,
    ClusterExperiment,
    DynamicSharingPartition,
    NodePerformance,
    PeriodicRate,
    RatePhase,
    StaticExclusivePartition,
    StaticSplitPartition,
    TaskBagWorkload,
)
from repro.errors import DistributedError
from repro.machine import model_machine


class TestPeriodicRate:
    def test_constant(self):
        r = PeriodicRate.constant(10.0)
        assert r.rate_at(0.0) == 10.0
        assert r.average_rate() == 10.0
        assert r.finish_time(20.0, 1.0) == pytest.approx(3.0)

    def test_two_phase(self):
        r = PeriodicRate([RatePhase(1.0, 10.0), RatePhase(1.0, 0.0)])
        assert r.period == 2.0
        assert r.average_rate() == pytest.approx(5.0)
        # 15 GFLOP from t=0: 10 in first second, wait 1s idle, 5 more
        assert r.finish_time(15.0, 0.0) == pytest.approx(2.5)

    def test_offset(self):
        r = PeriodicRate(
            [RatePhase(1.0, 10.0), RatePhase(1.0, 0.0)], offset=1.0
        )
        assert r.rate_at(0.0) == 0.0
        assert r.rate_at(1.0) == 10.0

    def test_finish_time_spanning_periods(self):
        r = PeriodicRate([RatePhase(1.0, 2.0), RatePhase(1.0, 0.0)])
        # 10 GFLOP at 2 GFLOPS for half of each 2s period: 5 periods
        assert r.finish_time(10.0, 0.0) == pytest.approx(9.0)

    def test_zero_work(self):
        r = PeriodicRate.constant(1.0)
        assert r.finish_time(0.0, 5.0) == 5.0

    def test_validation(self):
        with pytest.raises(DistributedError):
            PeriodicRate([])
        with pytest.raises(DistributedError):
            PeriodicRate([RatePhase(1.0, 0.0)])
        with pytest.raises(DistributedError):
            RatePhase(0.0, 1.0)
        with pytest.raises(DistributedError):
            RatePhase(1.0, -1.0)
        with pytest.raises(DistributedError):
            PeriodicRate.constant(1.0).finish_time(-1.0, 0.0)


class TestWorkloads:
    def test_barrier_limited_by_slowest(self):
        fast = PeriodicRate.constant(10.0)
        slow = PeriodicRate.constant(5.0)
        wl = BarrierIterativeWorkload(iterations=4, work_per_rank=10.0)
        res = wl.run([fast, slow])
        assert res.makespan == pytest.approx(8.0)
        assert res.barrier_wait == pytest.approx(4.0)
        assert res.efficiency < 1.0

    def test_barrier_homogeneous_full_efficiency(self):
        r = PeriodicRate.constant(10.0)
        wl = BarrierIterativeWorkload(iterations=3, work_per_rank=10.0)
        res = wl.run([r, r, r])
        assert res.makespan == pytest.approx(3.0)
        assert res.efficiency == pytest.approx(1.0)

    def test_taskbag_uses_fast_ranks_more(self):
        fast = PeriodicRate.constant(10.0)
        slow = PeriodicRate.constant(5.0)
        wl = TaskBagWorkload(num_tasks=30, work_per_task=10.0)
        res = wl.run([fast, slow])
        # fast rank does ~2/3 of the tasks; makespan ~ total/combined rate
        assert res.makespan == pytest.approx(300.0 / 15.0, rel=0.1)

    def test_taskbag_single_rank(self):
        r = PeriodicRate.constant(10.0)
        wl = TaskBagWorkload(num_tasks=5, work_per_task=10.0)
        assert wl.run([r]).makespan == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(DistributedError):
            BarrierIterativeWorkload(iterations=0, work_per_rank=1.0)
        with pytest.raises(DistributedError):
            TaskBagWorkload(num_tasks=1, work_per_task=0.0)
        with pytest.raises(DistributedError):
            BarrierIterativeWorkload(
                iterations=1, work_per_rank=1.0
            ).run([])


class TestPartitions:
    @pytest.fixture
    def perf(self):
        return NodePerformance(
            model_machine(), AppSpec("main", 2.0), AppSpec("co", 2.0)
        )

    def test_node_performance_monotone_in_share(self, perf):
        g_half = perf.main_gflops(0.5, colocated_active=False)
        g_full = perf.main_gflops(1.0, colocated_active=False)
        assert g_full >= g_half > 0

    def test_colocated_contention_hurts(self, perf):
        quiet = perf.main_gflops(0.5, colocated_active=False)
        busy = perf.main_gflops(0.5, colocated_active=True)
        assert busy <= quiet

    def test_share_bounds(self, perf):
        with pytest.raises(DistributedError):
            perf.main_gflops(1.5, colocated_active=False)

    def test_exclusive_participation(self, perf):
        p = StaticExclusivePartition(perf, main_fraction=0.5)
        assert p.participating_ranks(8) == [0, 1, 2, 3]
        with pytest.raises(DistributedError):
            p.rank_profile(7, 8)

    def test_split_profile_periodic(self, perf):
        p = StaticSplitPartition(
            perf, main_share=0.5, colocated_duty_cycle=0.5
        )
        prof = p.rank_profile(0, 4)
        assert prof.period == pytest.approx(1.0)

    def test_dynamic_quiet_phase_faster(self, perf):
        p = DynamicSharingPartition(
            perf,
            colocated_duty_cycle=0.5,
            reallocation_penalty=0.0,
            stagger=False,
        )
        prof = p.rank_profile(0, 4)
        # second phase (co-runner idle, full node) is faster
        assert prof.phases[1].gflops > prof.phases[0].gflops

    def test_penalty_validation(self, perf):
        p = DynamicSharingPartition(perf, reallocation_penalty=1.5)
        with pytest.raises(DistributedError):
            p.rank_profile(0, 4)


class TestClusterExperiment:
    def test_section5_claims(self):
        machine = model_machine()
        perf = NodePerformance(
            machine, AppSpec("main", 2.0), AppSpec("co", 2.0)
        )
        exp = ClusterExperiment(
            num_ranks=8, iterations=20, work_per_iteration=20.0
        )
        partitions = {
            "split": StaticSplitPartition(
                perf, main_share=0.5, colocated_duty_cycle=0.5
            ),
            "dynamic": DynamicSharingPartition(
                perf,
                colocated_duty_cycle=0.5,
                reallocation_penalty=0.02,
            ),
        }
        runs = {
            (r.partition_name, r.workload_name): r.makespan
            for r in exp.compare(partitions)
        }
        # Loose synchronisation: dynamic sharing clearly wins.
        assert runs[("dynamic", "taskbag")] < runs[("split", "taskbag")]
        # Barrier: the dynamic gain mostly evaporates (paper's claim) —
        # dynamic is NOT proportionally better under barriers.
        barrier_gain = (
            runs[("split", "barrier")] / runs[("dynamic", "barrier")]
        )
        taskbag_gain = (
            runs[("split", "taskbag")] / runs[("dynamic", "taskbag")]
        )
        assert taskbag_gain > barrier_gain

    def test_validation(self):
        with pytest.raises(DistributedError):
            ClusterExperiment(num_ranks=0)
