"""Unit tests for repro.machine.topology."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.machine.topology import Core, MachineTopology, NumaNode


def _node(node_id: int, cores: int = 2, bw: float = 10.0, gid0: int = 0):
    return NumaNode(
        node_id=node_id,
        cores=tuple(
            Core(global_id=gid0 + i, node_id=node_id, local_id=i, peak_gflops=5.0)
            for i in range(cores)
        ),
        local_bandwidth=bw,
    )


class TestCore:
    def test_valid(self):
        c = Core(global_id=3, node_id=1, local_id=0, peak_gflops=2.5)
        assert c.peak_gflops == 2.5

    def test_negative_index_rejected(self):
        with pytest.raises(TopologyError):
            Core(global_id=-1, node_id=0, local_id=0, peak_gflops=1.0)

    def test_zero_gflops_rejected(self):
        with pytest.raises(TopologyError):
            Core(global_id=0, node_id=0, local_id=0, peak_gflops=0.0)


class TestNumaNode:
    def test_properties(self):
        n = _node(0, cores=4)
        assert n.num_cores == 4
        assert n.peak_gflops == 20.0

    def test_empty_node_rejected(self):
        with pytest.raises(TopologyError):
            NumaNode(node_id=0, cores=(), local_bandwidth=10.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(TopologyError):
            _node(0, bw=0.0)

    def test_core_node_mismatch_rejected(self):
        bad = Core(global_id=0, node_id=5, local_id=0, peak_gflops=1.0)
        with pytest.raises(TopologyError):
            NumaNode(node_id=0, cores=(bad,), local_bandwidth=1.0)


class TestMachineTopology:
    def test_homogeneous_builder(self):
        m = MachineTopology.homogeneous(
            num_nodes=3,
            cores_per_node=4,
            peak_gflops_per_core=2.0,
            local_bandwidth=20.0,
            remote_bandwidth=5.0,
        )
        assert m.num_nodes == 3
        assert m.total_cores == 12
        assert m.peak_gflops == 24.0
        assert m.bandwidth(0, 0) == 20.0
        assert m.bandwidth(0, 1) == 5.0
        assert m.is_symmetric

    def test_default_remote_is_local(self):
        m = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=2,
            peak_gflops_per_core=1.0,
            local_bandwidth=8.0,
        )
        assert m.bandwidth(0, 1) == 8.0

    def test_core_ids_dense_and_ordered(self):
        m = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=3,
            peak_gflops_per_core=1.0,
            local_bandwidth=8.0,
        )
        assert [c.global_id for c in m.cores] == list(range(6))
        assert m.core(4).node_id == 1
        assert m.node_of_core(5).node_id == 1

    def test_link_matrix_shape_checked(self):
        with pytest.raises(TopologyError):
            MachineTopology(
                nodes=(_node(0),),
                link_bandwidth=np.ones((2, 2)),
            )

    def test_diagonal_must_match_local_bandwidth(self):
        with pytest.raises(TopologyError):
            MachineTopology(
                nodes=(_node(0, bw=10.0),),
                link_bandwidth=np.array([[99.0]]),
            )

    def test_node_order_enforced(self):
        n0 = _node(1)  # wrong id in position 0
        with pytest.raises(TopologyError):
            MachineTopology(nodes=(n0,), link_bandwidth=np.array([[10.0]]))

    def test_out_of_range_lookups(self):
        m = MachineTopology.homogeneous(
            num_nodes=1,
            cores_per_node=1,
            peak_gflops_per_core=1.0,
            local_bandwidth=1.0,
        )
        with pytest.raises(TopologyError):
            m.node(3)
        with pytest.raises(TopologyError):
            m.core(7)

    def test_ridge_ai(self):
        m = MachineTopology.homogeneous(
            num_nodes=1,
            cores_per_node=8,
            peak_gflops_per_core=10.0,
            local_bandwidth=32.0,
        )
        assert m.ridge_ai(0) == pytest.approx(80.0 / 32.0)

    def test_scaled_bandwidth(self):
        m = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=2,
            peak_gflops_per_core=1.0,
            local_bandwidth=10.0,
            remote_bandwidth=2.0,
        )
        m2 = m.scaled_bandwidth(2.0)
        assert m2.bandwidth(0, 0) == 20.0
        assert m2.bandwidth(0, 1) == 4.0
        with pytest.raises(TopologyError):
            m.scaled_bandwidth(0.0)

    def test_describe_mentions_nodes(self):
        m = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=2,
            peak_gflops_per_core=1.0,
            local_bandwidth=10.0,
            remote_bandwidth=3.0,
            name="testbox",
        )
        text = m.describe()
        assert "testbox" in text
        assert "node 1" in text

    def test_link_matrix_immutable(self):
        m = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=2,
            peak_gflops_per_core=1.0,
            local_bandwidth=10.0,
        )
        with pytest.raises(ValueError):
            m.link_bandwidth[0, 1] = 99.0

    def test_with_name(self):
        m = MachineTopology.homogeneous(
            num_nodes=1,
            cores_per_node=1,
            peak_gflops_per_core=1.0,
            local_bandwidth=1.0,
        )
        assert m.with_name("other").name == "other"
