"""Per-NUMA-node memory-bandwidth arbitration.

Implements assumptions 4 and 5 of the paper's model (Section III-A):

4. memory bandwidth is shared by all cores in the same NUMA node;
5. the actual bandwidth is split so that each core can get at least its
   equal share of the node total (the *baseline*, ``node_bw / num_cores``),
   and the remainder is split proportionately to the attempted memory
   access above the baseline.

The remainder split is a water-filling problem: a thread can never receive
more than it demands, and bandwidth freed by a thread whose demand is met
flows back to the still-unsatisfied threads.  The paper's worked examples
(Tables I and II) only exercise the case where all unsatisfied threads have
identical unmet demand, where proportional and even splitting coincide;
:class:`RemainderRule` exposes both so the difference can be ablated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = [
    "RemainderRule",
    "NodeShare",
    "share_node_bandwidth",
    "share_node_bandwidth_batch",
]

#: Bandwidth below this (GB/s) is treated as zero during water-filling.
_EPS = 1e-12


class RemainderRule(enum.Enum):
    """How leftover bandwidth is divided among unsatisfied threads."""

    #: Proportional to each thread's unmet demand (paper assumption 5:
    #: "a code that would want to make twice as many memory operations
    #: above the baseline will end up getting twice as much of the
    #: remaining bandwidth").
    PROPORTIONAL = "proportional"

    #: Equal split among unsatisfied threads (the arithmetic actually
    #: performed in the paper's worked examples: "We split this evenly
    #: among the three memory-bound applications").
    EVEN = "even"


@dataclass(frozen=True)
class NodeShare:
    """Result of arbitrating one node's bandwidth.

    Attributes
    ----------
    allocated:
        GB/s granted to each thread, same order as the input demands.
    baseline:
        The per-core baseline share used (``capacity / num_cores``).
    capacity:
        The bandwidth that was available for local threads.
    """

    allocated: np.ndarray
    baseline: float
    capacity: float

    @property
    def consumed(self) -> float:
        """Total bandwidth handed out."""
        return float(self.allocated.sum())

    @property
    def leftover(self) -> float:
        """Bandwidth that nobody wanted."""
        return self.capacity - self.consumed


def share_node_bandwidth(
    capacity: float,
    num_cores: int,
    demands: np.ndarray | list[float],
    *,
    rule: RemainderRule = RemainderRule.PROPORTIONAL,
) -> NodeShare:
    """Split ``capacity`` GB/s among threads with the given ``demands``.

    Parameters
    ----------
    capacity:
        Bandwidth available to local threads on this node (GB/s).  This is
        the node's full local bandwidth unless remote traffic was served
        first (see :mod:`repro.core.model`).
    num_cores:
        Number of CPU cores in the node.  The baseline is
        ``capacity / num_cores`` regardless of how many threads are
        actually running — an idle core's share joins the remainder pool.
    demands:
        Per-thread attempted bandwidth (GB/s).

    Returns
    -------
    NodeShare
        Per-thread grants.  Invariants: ``0 <= grant <= demand`` for every
        thread, ``sum(grants) <= capacity``, and when total demand meets or
        exceeds capacity the grants exhaust it (up to rounding).
    """
    if capacity < 0:
        raise ModelError(f"capacity must be non-negative, got {capacity}")
    if num_cores <= 0:
        raise ModelError(f"num_cores must be positive, got {num_cores}")
    d = np.asarray(demands, dtype=float)
    if d.ndim != 1:
        raise ModelError(f"demands must be 1-D, got shape {d.shape}")
    if np.any(d < 0):
        raise ModelError("demands must be non-negative")
    if len(d) > num_cores:
        raise ModelError(
            f"{len(d)} threads on a node with {num_cores} cores violates "
            f"the model's no-over-subscription assumption"
        )

    baseline = capacity / num_cores
    allocated = np.minimum(d, baseline)
    remaining = capacity - allocated.sum()

    # Water-fill the remainder.  Each pass hands out bandwidth according to
    # the rule, capped at each thread's unmet demand; threads that become
    # satisfied drop out and their unused share is redistributed in the
    # next pass.  Terminates because every pass either exhausts the
    # remainder or satisfies at least one thread.
    while remaining > _EPS:
        unmet = d - allocated
        unsatisfied = unmet > _EPS
        if not np.any(unsatisfied):
            break
        if rule is RemainderRule.PROPORTIONAL:
            weights = np.where(unsatisfied, unmet, 0.0)
        else:
            weights = unsatisfied.astype(float)
        give = remaining * weights / weights.sum()
        give = np.minimum(give, unmet)
        handed = give.sum()
        if handed <= _EPS:
            break
        allocated += give
        remaining -= handed

    return NodeShare(
        allocated=allocated, baseline=baseline, capacity=capacity
    )


def share_node_bandwidth_batch(
    capacity: np.ndarray,
    num_cores: int,
    demands: np.ndarray,
    counts: np.ndarray,
    *,
    rule: RemainderRule = RemainderRule.PROPORTIONAL,
) -> np.ndarray:
    """Closed-form water-fill over a batch of candidate node states.

    The batched counterpart of :func:`share_node_bandwidth` used by the
    fast evaluation engine (:mod:`repro.core.fasteval`).  Threads are
    folded into *groups* of identical per-thread demand (all threads of
    one application on one node are symmetric under the model), and the
    iterative redistribution loop is replaced with its closed form:

    * ``PROPORTIONAL`` — the iterative rule terminates after a single
      pass whenever the remainder cannot satisfy everyone (each thread's
      proportional share is strictly below its unmet demand), so the
      closed form *is* the first pass: grant
      ``min(d, baseline) + remaining * unmet / total_unmet``.
    * ``EVEN`` — the fixed point of even redistribution is the classic
      water level: every thread receives
      ``min(d, baseline) + min(unmet, tau)`` where ``tau`` solves
      ``sum(count * min(unmet, tau)) == remaining``.  ``tau`` falls out
      of one sort of the group demands (shared by the whole batch, since
      the sort order of unmet demand does not depend on the baseline)
      plus cumulative sums — no per-pass Python loop.

    Parameters
    ----------
    capacity:
        Bandwidth available to local threads, shape ``(B,)`` — one entry
        per batch element, each non-negative.
    num_cores:
        Cores per node (the baseline divisor), shared by the batch.
    demands:
        Per-thread demand of each group (GB/s), shape ``(G,)``, shared
        by the batch.
    counts:
        Threads per group, shape ``(B, G)``, non-negative; each row must
        sum to at most ``num_cores``.

    Returns
    -------
    np.ndarray
        Total bandwidth granted to each group (GB/s), shape ``(B, G)``
        — the group's per-thread grant times its thread count.  Agrees
        with the per-thread :func:`share_node_bandwidth` (expanded over
        groups) to within accumulated rounding (< 1e-9 on model-scale
        inputs).
    """
    if num_cores <= 0:
        raise ModelError(f"num_cores must be positive, got {num_cores}")
    cap = np.asarray(capacity, dtype=float)
    d = np.asarray(demands, dtype=float)
    w = np.asarray(counts, dtype=float)
    if cap.ndim != 1 or d.ndim != 1 or w.shape != (cap.shape[0], d.shape[0]):
        raise ModelError(
            f"inconsistent batch shapes: capacity {cap.shape}, demands "
            f"{d.shape}, counts {w.shape}"
        )
    if np.any(cap < 0):
        raise ModelError("capacity must be non-negative")
    if np.any(d < 0):
        raise ModelError("demands must be non-negative")
    if np.any(w < 0):
        raise ModelError("counts must be non-negative")
    if np.any(w.sum(axis=1) > num_cores):
        raise ModelError(
            f"a batch row allocates more threads than the node's "
            f"{num_cores} cores (no-over-subscription assumption)"
        )

    baseline = cap / num_cores  # (B,)
    per_thread = np.minimum(d[None, :], baseline[:, None])  # (B, G)
    remaining = np.maximum(cap - (w * per_thread).sum(axis=1), 0.0)  # (B,)
    unmet = np.maximum(d[None, :] - baseline[:, None], 0.0)  # (B, G)
    total_unmet = (w * unmet).sum(axis=1)  # (B,)
    satisfied = total_unmet <= remaining + _EPS  # whole batch row fits

    if rule is RemainderRule.PROPORTIONAL:
        denom = np.where(total_unmet > _EPS, total_unmet, 1.0)
        extra = remaining[:, None] * unmet / denom[:, None]
    else:  # EVEN: find the water level tau per batch row
        order = np.argsort(d, kind="stable")
        us = unmet[:, order]  # ascending per row (unmet is monotone in d)
        ws = w[:, order]
        weighted = ws * us
        cum_fill = np.cumsum(weighted, axis=1)  # fill groups 0..j fully
        cum_threads = np.cumsum(ws, axis=1)
        threads_from = cum_threads[:, -1:] - (cum_threads - ws)  # >= j
        # Cost of raising the level to us[:, j]: groups below j capped,
        # everyone from j up at the level.
        level_cost = (cum_fill - weighted) + threads_from * us
        reachable = level_cost >= remaining[:, None] - _EPS
        j = np.argmax(reachable, axis=1)  # first affordable level
        rows = np.arange(cap.shape[0])
        pool = threads_from[rows, j]
        tau = (remaining - (cum_fill - weighted)[rows, j]) / np.where(
            pool > 0, pool, 1.0
        )
        tau = np.maximum(tau, 0.0)
        extra_sorted = np.minimum(us, tau[:, None])
        extra = np.empty_like(extra_sorted)
        extra[:, order] = extra_sorted
    extra = np.where(satisfied[:, None], unmet, extra)
    return w * (per_thread + extra)
