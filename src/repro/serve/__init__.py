"""Long-running allocation service: the Figure 1 agent as a daemon.

Where :mod:`repro.agent` runs a fixed number of coordination rounds
over a static application set, :mod:`repro.serve` keeps the loop alive
under *churn*: applications register, stream progress reports, and
deregister while the service continuously re-optimizes per-NUMA-node
thread counts for whoever is currently admitted — debouncing join/leave
bursts, reusing the :class:`~repro.core.fasteval.ScoreCache` across
membership changes, quarantining silent sessions under the PR-3
:class:`~repro.agent.resilience.ResiliencePolicy`, and streaming
allocation updates back with at-least-once delivery.

Layering (each layer usable on its own):

* :mod:`repro.serve.protocol` — the newline-delimited-JSON wire
  messages and their strict codec;
* :mod:`repro.serve.registry` — session lifecycle and the live
  workload;
* :mod:`repro.serve.persist` — the crash-safety layer: an append-only
  CRC'd write-ahead journal with atomic snapshot compaction, feeding
  deterministic :meth:`~repro.serve.service.AllocationService.recover`;
* :mod:`repro.serve.service` — the transport- and clock-agnostic core;
* :mod:`repro.serve.client` — in-process loopback client (tests,
  examples, the tutorial);
* :mod:`repro.serve.server` — the asyncio unix-socket daemon with
  per-connection backpressure and graceful drain;
* :mod:`repro.serve.gateway` — the network-facing TCP/HTTP front end
  with admission control: connection caps, token-bucket rate limiting,
  a bounded admission queue, idle deadlines, and graceful drain
  (``python -m repro serve --tcp :9070``, ``docs/GATEWAY.md``);
* :mod:`repro.serve.load` — the open-loop load harness behind
  ``python -m repro load``: seeded Poisson/diurnal arrivals, latency
  percentiles, shed/retry accounting (``BENCH_serve.json``);
* :mod:`repro.serve.scenarios` — seeded churn replays on the DES clock
  (``python -m repro serve --scenario churn-basic``).

Protocol, lifecycle, and failure semantics are documented in
``docs/SERVICE.md``; the guided walk-through is ``docs/TUTORIAL.md``.
"""

from __future__ import annotations

from repro.serve.client import ServiceClient
from repro.serve.persist import (
    Journal,
    RecoveryLoad,
    atomic_write,
    load_journal,
)
from repro.serve.protocol import (
    ERROR_CODES,
    Ack,
    AllocationUpdate,
    Deregister,
    ErrorReply,
    ProgressReport,
    QueryAllocation,
    Register,
    ShutdownNotice,
    decode_message,
    encode_message,
)
from repro.serve.gateway import (
    GatewayConfig,
    GatewayServer,
    TokenBucket,
)
from repro.serve.load import (
    LOAD_SCENARIOS,
    LoadReport,
    LoadScenario,
    run_load,
)
from repro.serve.registry import Session, SessionState, WorkloadRegistry
from repro.serve.scenarios import (
    ChurnEvent,
    ChurnReport,
    ReplayDriver,
    ReplayEndpoint,
    SERVE_SCENARIOS,
    run_replay,
)
from repro.serve.server import AsyncServiceClient, ServiceServer
from repro.serve.service import AllocationService, ServiceConfig

__all__ = [
    "ERROR_CODES",
    "Register",
    "Deregister",
    "ProgressReport",
    "QueryAllocation",
    "Ack",
    "AllocationUpdate",
    "ErrorReply",
    "ShutdownNotice",
    "encode_message",
    "decode_message",
    "Session",
    "SessionState",
    "WorkloadRegistry",
    "Journal",
    "RecoveryLoad",
    "atomic_write",
    "load_journal",
    "ServiceConfig",
    "AllocationService",
    "ServiceClient",
    "ServiceServer",
    "AsyncServiceClient",
    "TokenBucket",
    "GatewayConfig",
    "GatewayServer",
    "LoadScenario",
    "LoadReport",
    "LOAD_SCENARIOS",
    "run_load",
    "ChurnEvent",
    "ChurnReport",
    "ReplayEndpoint",
    "ReplayDriver",
    "SERVE_SCENARIOS",
    "run_replay",
]
