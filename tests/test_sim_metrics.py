"""Unit tests for counters, time series, and rate integrators."""

import importlib
import warnings

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.obs.metrics import Counter, MetricSet, RateIntegrator, TimeSeries


class TestDeprecatedShim:
    def test_sim_metrics_import_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.sim.metrics as shim

            importlib.reload(shim)  # re-run module body even if cached
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.obs.metrics" in str(w.message)
            for w in caught
        )

    def test_shim_reexports_same_objects(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.sim.metrics as shim

        assert shim.Counter is Counter
        assert shim.MetricSet is MetricSet
        assert shim.RateIntegrator is RateIntegrator
        assert shim.TimeSeries is TimeSeries

    def test_shim_surface_is_exactly_obs_metrics(self):
        """The shim re-exports obs.metrics' __all__ — nothing more."""
        import repro.obs.metrics as obs_metrics

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.sim.metrics as shim

        assert shim.__all__ == list(obs_metrics.__all__)
        for name in shim.__all__:
            assert getattr(shim, name) is getattr(obs_metrics, name)

    def test_shim_has_no_silent_fallback(self):
        """Unknown attributes raise instead of resolving to stale copies."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.sim.metrics as shim

        with pytest.raises(AttributeError, match="repro.obs.metrics"):
            shim.MetricRegistryV1


class TestCounter:
    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(2.5)
        assert c.value == 3.5

    def test_decrease_rejected(self):
        with pytest.raises(SimulationError):
            Counter("x").add(-1)


class TestTimeSeries:
    def test_record_and_arrays(self):
        s = TimeSeries("g")
        s.record(0.0, 1.0)
        s.record(1.0, 3.0)
        assert len(s) == 2
        assert np.allclose(s.times, [0.0, 1.0])
        assert s.last == 3.0
        assert s.max() == 3.0

    def test_time_must_not_decrease(self):
        s = TimeSeries("g")
        s.record(2.0, 1.0)
        with pytest.raises(SimulationError):
            s.record(1.0, 1.0)

    def test_time_weighted_mean(self):
        s = TimeSeries("g")
        s.record(0.0, 10.0)  # holds for 1s
        s.record(1.0, 0.0)  # holds for 3s
        s.record(4.0, 99.0)  # terminal, zero weight
        assert s.mean() == pytest.approx(10.0 / 4.0)

    def test_mean_needs_two_samples(self):
        s = TimeSeries("g")
        s.record(0.0, 1.0)
        with pytest.raises(SimulationError):
            s.mean()

    def test_empty_series_errors(self):
        s = TimeSeries("g")
        with pytest.raises(SimulationError):
            s.last
        with pytest.raises(SimulationError):
            s.max()


class TestRateIntegrator:
    def test_accumulate(self):
        r = RateIntegrator("flops")
        r.accumulate(0.0, 2.0, 5.0)
        r.accumulate(2.0, 3.0, 10.0)
        assert r.total == pytest.approx(20.0)
        assert r.average_rate(4.0) == pytest.approx(5.0)

    def test_validation(self):
        r = RateIntegrator("flops")
        with pytest.raises(SimulationError):
            r.accumulate(1.0, 0.0, 1.0)
        with pytest.raises(SimulationError):
            r.accumulate(0.0, 1.0, -1.0)
        with pytest.raises(SimulationError):
            r.average_rate(0.0)


class TestMetricSet:
    def test_autocreate_and_identity(self):
        m = MetricSet()
        assert m.counter("a") is m.counter("a")
        assert m.series("s") is m.series("s")
        assert m.integrator("i") is m.integrator("i")

    def test_snapshot(self):
        m = MetricSet()
        m.counter("tasks").add(3)
        m.integrator("flops").accumulate(0, 1, 2.0)
        snap = m.snapshot()
        assert snap["counter/tasks"] == 3
        assert snap["total/flops"] == 2.0
