"""SARIF 2.1.0 reporter for the lint engine.

SARIF (Static Analysis Results Interchange Format) is the format code
scanning UIs ingest.  :func:`violations_to_sarif` renders a violation
list as one SARIF *run*: the tool's ``driver`` carries the rule
catalogue (id, summary, default severity) for every rule that appears,
and each violation becomes a ``result`` with a physical location
(relative URI + start line) and a ``ruleIndex`` back-reference into the
catalogue.

The output targets the published 2.1.0 schema; the structural subset we
emit is pinned by ``tests/test_lint_sarif.py`` so the reporter cannot
drift without a test telling on it.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro._version import __version__
from repro.lint.engine import Severity, Violation, all_rules

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "violations_to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Lint severities -> SARIF result levels.
_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_descriptor(rule_id: str, summary: str, severity: str) -> dict:
    return {
        "id": rule_id,
        "shortDescription": {"text": summary},
        "defaultConfiguration": {"level": severity},
    }


def _known_rules() -> dict[str, tuple[str, str]]:
    """Rule id -> (summary, level) for syntax rules and invariants."""
    from repro.lint.invariants import INVARIANT_IDS

    known = {
        rule_id: (cls.summary, _LEVELS[cls.severity])
        for rule_id, cls in all_rules().items()
    }
    for inv_id, summary in INVARIANT_IDS.items():
        known.setdefault(inv_id, (summary, "error"))
    return known


def violations_to_sarif(violations: Sequence[Violation]) -> str:
    """Serialise ``violations`` as a SARIF 2.1.0 document (a JSON string).

    The driver's rule array lists exactly the rules that fired, in
    first-appearance order; unknown rule ids (possible when replaying a
    findings file from a newer checkout) still get a bare descriptor.
    """
    known = _known_rules()
    rule_ids: list[str] = []
    rule_index: dict[str, int] = {}
    results = []
    for v in violations:
        if v.rule_id not in rule_index:
            rule_index[v.rule_id] = len(rule_ids)
            rule_ids.append(v.rule_id)
        results.append(
            {
                "ruleId": v.rule_id,
                "ruleIndex": rule_index[v.rule_id],
                "level": _LEVELS[v.severity],
                "message": {"text": v.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": v.file.replace("\\", "/"),
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {"startLine": max(v.line, 1)},
                        }
                    }
                ],
            }
        )
    rules = [
        _rule_descriptor(
            rule_id, *known.get(rule_id, ("(unknown rule)", "warning"))
        )
        for rule_id in rule_ids
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": __version__,
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
