#!/usr/bin/env python3
"""The long-running allocation service under live workload churn.

Drives `repro.serve` on the deterministic simulator clock through a
small story: two memory-bound applications register, a NUMA-bad third
joins mid-run, one of the originals leaves again — and after every
(debounced) membership change the service re-optimizes and pushes
fresh per-node thread counts to every subscribed client.  Each client
heartbeats while it lives, so nobody trips the staleness quarantine.
At the end, the live service's allocation is checked against an
offline exhaustive search over the same final workload: they must
match exactly.

Run:  python examples/service_churn.py
"""

from repro.analysis import render_table
from repro.core import AppSpec, NumaPerformanceModel
from repro.core.optimizer import ExhaustiveSearch
from repro.machine import model_machine
from repro.serve import AllocationService, ServiceClient, ServiceConfig
from repro.sim.engine import Simulator

HEARTBEAT = 0.05


def main() -> None:
    machine = model_machine()
    sim = Simulator()
    service = AllocationService(
        ServiceConfig(machine=machine),
        clock=lambda: sim.now,
        call_later=lambda delay, fn: sim.schedule(delay, fn),
    )

    alpha = ServiceClient(service, "alpha")
    beta = ServiceClient(service, "beta")
    bad = ServiceClient(service, "bad")
    live: set[str] = set()

    def heartbeat(client: ServiceClient) -> None:
        if client.name not in live:
            return
        client.report(sim.now, cpu_load=0.8, acked_epoch=client.last_epoch())
        sim.schedule(HEARTBEAT, lambda: heartbeat(client))

    def join(client: ServiceClient, app: AppSpec) -> None:
        client.register(app)
        live.add(client.name)
        sim.schedule(HEARTBEAT, lambda: heartbeat(client))

    def leave(client: ServiceClient) -> None:
        client.deregister()
        live.discard(client.name)

    timeline: list[list[object]] = []

    def snapshot(label: str) -> None:
        alloc = service.current_allocation()
        score = service.current_score()
        timeline.append(
            [
                f"{sim.now:.2f}",
                label,
                service.reoptimizations,
                *(
                    str(alloc[name]) if name in alloc else "-"
                    for name in ("alpha", "beta", "bad")
                ),
                f"{score:.1f}" if score is not None else "-",
            ]
        )

    # t=0: two memory-bound apps join in one debounce window -> one search.
    join(alpha, AppSpec.memory_bound("alpha", arithmetic_intensity=0.5))
    join(beta, AppSpec.memory_bound("beta", arithmetic_intensity=0.7))

    # t=0.10: a NUMA-bad app (all data homed on node 0) joins.
    sim.schedule_at(
        0.10,
        lambda: join(bad, AppSpec.numa_bad("bad", 1.0, home_node=0)),
    )
    # t=0.20: beta finishes and leaves; its cores are redistributed.
    sim.schedule_at(0.20, lambda: leave(beta))

    for t, label in [
        (0.05, "alpha+beta joined"),
        (0.15, "bad joined"),
        (0.25, "beta left"),
    ]:
        sim.schedule_at(t, lambda label=label: snapshot(label))
    sim.run_until(0.30)

    print(
        render_table(
            ["t [s]", "event", "reopts", "alpha", "beta", "bad", "GFLOPS"],
            timeline,
            title="Allocation service under churn (per-node threads):",
        )
    )

    # Cross-check the live service against the offline oracle.
    offline = ExhaustiveSearch(NumaPerformanceModel()).search(
        machine, list(service.registry.active_specs())
    )
    live_score = service.current_score()
    assert live_score == offline.score, (live_score, offline.score)
    print(
        f"\nlive service score {live_score:.1f} GFLOPS == offline "
        f"exhaustive search ({offline.evaluations} candidates evaluated)"
    )
    print(
        f"'alpha' received {len(alpha.inbox)} pushed messages; final "
        f"allocation {alpha.last_allocation().per_node} at epoch "
        f"{alpha.last_epoch()}"
    )


if __name__ == "__main__":
    main()
