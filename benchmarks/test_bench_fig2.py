"""Figure 2: the three allocation scenarios (254 / 140 / 128 GFLOPS)."""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_fig2


def test_bench_fig2(benchmark):
    results = benchmark(run_fig2)
    emit(
        "Figure 2 - allocation scenarios on the model machine",
        render_table(
            ["scenario", "GFLOPS (ours)", "GFLOPS (paper)"],
            [[r.name, r.gflops, r.paper_gflops] for r in results],
        ),
    )
    by_name = {r.name: r.gflops for r in results}
    assert by_name["a) uneven (1,1,1,5)"] == pytest.approx(254.0)
    assert by_name["b) even (2,2,2,2)"] == pytest.approx(140.0)
    assert by_name["c) node-exclusive"] == pytest.approx(128.0)
    # Paper's qualitative ordering for NUMA-perfect apps.
    g = [r.gflops for r in results]
    assert g[0] > g[1] > g[2]
