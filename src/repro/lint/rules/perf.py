"""Performance rules.

The observability layer's metric lookups
(``OBS.metrics.counter("name")``) hash the metric name and take the
registry lock on every call.  In a search inner loop that runs tens of
thousands of times per second, the lookup dominates the instrumented
work — the batched evaluation engine exists precisely because per-call
overhead compounds there.  PERF001 flags lookups inside loop bodies so
they get hoisted into a module- or instance-level handle
(:class:`~repro.obs.CounterHandle` and friends), which resolves the
name once and survives registry swaps.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register,
)

__all__ = ["MetricLookupInLoop"]

#: Registry factory methods whose per-call lookup cost PERF001 targets.
_METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _is_metric_lookup(node: ast.Call) -> str | None:
    """The metric kind when ``node`` is ``<expr>.metrics.<kind>(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in _METRIC_KINDS:
        return None
    owner = func.value
    if isinstance(owner, ast.Attribute) and owner.attr == "metrics":
        return func.attr
    return None


@register
class MetricLookupInLoop(Rule):
    """``OBS.metrics.counter(...)`` resolved inside a loop body.

    A warning rather than an error: a lookup in a cold loop (a shutdown
    sweep, a once-per-tick simulator step) is harmless, and the author
    is the one who knows the loop's temperature.  Hot paths should hoist
    the lookup into a :class:`~repro.obs.CounterHandle` /
    :class:`~repro.obs.GaugeHandle` / :class:`~repro.obs.HistogramHandle`
    created once; deliberate cold-loop lookups get
    ``# repro: noqa[PERF001]``.
    """

    rule_id = "PERF001"
    severity = Severity.WARNING
    summary = (
        "metric registry lookup (`*.metrics.counter/gauge/histogram`) "
        "inside a loop body; hoist it into a module- or instance-level "
        "metric handle (see repro.obs.CounterHandle)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            kind = _is_metric_lookup(node)
            if kind is None:
                continue
            loop = self._enclosing_loop(ctx, node)
            if loop is None:
                continue
            yield self.violation(
                ctx,
                node,
                f"`.metrics.{kind}(...)` re-resolves the metric on every "
                f"iteration of the loop at line {loop.lineno}; create the "
                f"{kind} handle once outside the loop "
                f"(repro.obs.{kind.capitalize()}Handle)",
            )

    @staticmethod
    def _enclosing_loop(ctx: FileContext, node: ast.AST) -> ast.AST | None:
        """The innermost loop that re-evaluates ``node`` per iteration.

        That is the loop's body/else (and a ``while`` condition), but
        *not* a ``for``'s iterable, which evaluates once.  Stops at
        function boundaries: a lookup in a nested function that merely
        happens to be *defined* inside a loop runs once per call, not
        once per iteration, and loop temperature is the callee's
        concern.
        """
        child: ast.AST = node
        for anc in ctx.parents(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None
            if isinstance(anc, _LOOPS):
                per_iteration = list(anc.body) + list(anc.orelse)
                if isinstance(anc, ast.While):
                    per_iteration.append(anc.test)
                if any(child is part for part in per_iteration):
                    return anc
            child = anc
        return None
