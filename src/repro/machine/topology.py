"""NUMA machine topology description.

The paper's performance model (Section III-A) characterises a machine by a
small set of scalars:

* the number of NUMA nodes and CPU cores per node,
* the peak floating-point performance of a core (GFLOPS),
* the peak local memory bandwidth of each NUMA node (GB/s),
* the peak bandwidth of the link between every pair of NUMA nodes (GB/s) —
  added when the model was extended to handle "NUMA-bad" applications that
  store all of their data on a single node.

:class:`MachineTopology` captures exactly this information.  Everything else
in the library (the analytic model, the discrete-event simulator, the
runtime systems, the distributed layer) consumes machines through this one
type, so experiments can swap the paper's worked-example machine for the
calibrated Skylake server by changing a single constructor call (see
:mod:`repro.machine.presets`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import TopologyError

__all__ = ["Core", "NumaNode", "MachineTopology"]


@dataclass(frozen=True, slots=True)
class Core:
    """A single CPU core.

    Attributes
    ----------
    global_id:
        Machine-wide core index, dense in ``[0, total_cores)``.
    node_id:
        Index of the NUMA node this core belongs to.
    local_id:
        Index of the core within its NUMA node.
    peak_gflops:
        Peak floating-point throughput of this core in GFLOPS.
    """

    global_id: int
    node_id: int
    local_id: int
    peak_gflops: float

    def __post_init__(self) -> None:
        if self.global_id < 0 or self.node_id < 0 or self.local_id < 0:
            raise TopologyError(f"core indices must be non-negative: {self}")
        if self.peak_gflops <= 0:
            raise TopologyError(
                f"core {self.global_id}: peak_gflops must be positive, "
                f"got {self.peak_gflops}"
            )


@dataclass(frozen=True, slots=True)
class NumaNode:
    """One NUMA node: a set of cores attached to one memory controller.

    Attributes
    ----------
    node_id:
        Index of the node within the machine.
    cores:
        The cores local to this node.
    local_bandwidth:
        Peak bandwidth (GB/s) of the node's memory as seen by its own cores.
    """

    node_id: int
    cores: tuple[Core, ...]
    local_bandwidth: float

    def __post_init__(self) -> None:
        if not self.cores:
            raise TopologyError(f"NUMA node {self.node_id} has no cores")
        if self.local_bandwidth <= 0:
            raise TopologyError(
                f"NUMA node {self.node_id}: local_bandwidth must be "
                f"positive, got {self.local_bandwidth}"
            )
        for core in self.cores:
            if core.node_id != self.node_id:
                raise TopologyError(
                    f"core {core.global_id} claims node {core.node_id} but "
                    f"is attached to node {self.node_id}"
                )

    @property
    def num_cores(self) -> int:
        """Number of cores in this node."""
        return len(self.cores)

    @property
    def peak_gflops(self) -> float:
        """Aggregate peak compute throughput of the node (GFLOPS)."""
        return float(sum(c.peak_gflops for c in self.cores))


@dataclass(frozen=True)
class MachineTopology:
    """A complete NUMA machine description.

    Parameters
    ----------
    nodes:
        The NUMA nodes.  ``nodes[i].node_id`` must equal ``i``.
    link_bandwidth:
        Square matrix where entry ``[s, m]`` is the peak bandwidth (GB/s)
        available to cores on node ``s`` reading from the memory of node
        ``m``.  The diagonal must match each node's ``local_bandwidth``.
    name:
        Human-readable machine name used in reports.
    """

    nodes: tuple[NumaNode, ...]
    link_bandwidth: np.ndarray
    name: str = "machine"
    _cores: tuple[Core, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise TopologyError("a machine needs at least one NUMA node")
        for i, node in enumerate(self.nodes):
            if node.node_id != i:
                raise TopologyError(
                    f"nodes must be listed in id order: position {i} holds "
                    f"node {node.node_id}"
                )
        links = np.asarray(self.link_bandwidth, dtype=float)
        n = len(self.nodes)
        if links.shape != (n, n):
            raise TopologyError(
                f"link_bandwidth must be {n}x{n}, got shape {links.shape}"
            )
        if np.any(links <= 0):
            raise TopologyError("all link bandwidths must be positive")
        for i, node in enumerate(self.nodes):
            if not np.isclose(links[i, i], node.local_bandwidth):
                raise TopologyError(
                    f"link_bandwidth[{i},{i}]={links[i, i]} disagrees with "
                    f"node {i} local_bandwidth={node.local_bandwidth}"
                )
        links.setflags(write=False)
        object.__setattr__(self, "link_bandwidth", links)
        cores: list[Core] = []
        for node in self.nodes:
            cores.extend(node.cores)
        for expect, core in enumerate(cores):
            if core.global_id != expect:
                raise TopologyError(
                    f"core global ids must be dense and ordered by node; "
                    f"expected {expect}, found {core.global_id}"
                )
        object.__setattr__(self, "_cores", tuple(cores))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        *,
        num_nodes: int,
        cores_per_node: int,
        peak_gflops_per_core: float,
        local_bandwidth: float,
        remote_bandwidth: float | None = None,
        link_bandwidth: np.ndarray | Sequence[Sequence[float]] | None = None,
        name: str = "machine",
    ) -> "MachineTopology":
        """Build a machine where every node looks the same.

        Either ``remote_bandwidth`` (one value for every off-diagonal link)
        or a full ``link_bandwidth`` matrix may be given; if neither is
        given, remote links default to the local bandwidth (a UMA machine
        expressed in NUMA terms).
        """
        if num_nodes <= 0:
            raise TopologyError(f"num_nodes must be positive, got {num_nodes}")
        if cores_per_node <= 0:
            raise TopologyError(
                f"cores_per_node must be positive, got {cores_per_node}"
            )
        if remote_bandwidth is not None and link_bandwidth is not None:
            raise TopologyError(
                "give either remote_bandwidth or link_bandwidth, not both"
            )
        nodes: list[NumaNode] = []
        gid = 0
        for node_id in range(num_nodes):
            cores = []
            for local_id in range(cores_per_node):
                cores.append(
                    Core(
                        global_id=gid,
                        node_id=node_id,
                        local_id=local_id,
                        peak_gflops=peak_gflops_per_core,
                    )
                )
                gid += 1
            nodes.append(
                NumaNode(
                    node_id=node_id,
                    cores=tuple(cores),
                    local_bandwidth=local_bandwidth,
                )
            )
        if link_bandwidth is None:
            remote = local_bandwidth if remote_bandwidth is None else remote_bandwidth
            links = np.full((num_nodes, num_nodes), float(remote))
            np.fill_diagonal(links, local_bandwidth)
        else:
            links = np.asarray(link_bandwidth, dtype=float)
        return cls(nodes=tuple(nodes), link_bandwidth=links, name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of NUMA nodes."""
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        """Total number of cores across all nodes."""
        return len(self._cores)

    @property
    def cores(self) -> tuple[Core, ...]:
        """All cores, ordered by global id."""
        return self._cores

    @property
    def cores_per_node(self) -> tuple[int, ...]:
        """Core count of each node, in node order."""
        return tuple(node.num_cores for node in self.nodes)

    @property
    def is_symmetric(self) -> bool:
        """True when every node has the same core count and bandwidths."""
        counts = {node.num_cores for node in self.nodes}
        bws = {node.local_bandwidth for node in self.nodes}
        gflops = {core.peak_gflops for core in self._cores}
        off = self.link_bandwidth[~np.eye(self.num_nodes, dtype=bool)]
        return (
            len(counts) == 1
            and len(bws) == 1
            and len(gflops) == 1
            and (off.size == 0 or bool(np.all(np.isclose(off, off.flat[0]))))
        )

    @property
    def peak_gflops(self) -> float:
        """Aggregate peak compute throughput of the machine (GFLOPS)."""
        return float(sum(core.peak_gflops for core in self._cores))

    @property
    def total_local_bandwidth(self) -> float:
        """Sum of all nodes' local memory bandwidth (GB/s)."""
        return float(sum(node.local_bandwidth for node in self.nodes))

    @property
    def fingerprint(self) -> tuple:
        """Hashable digest of everything the performance model reads.

        Two topologies with equal fingerprints are interchangeable as
        model inputs (same name, node/core structure, per-core peaks and
        bandwidth matrix), which is what makes the fingerprint a safe
        memo-cache key component (:mod:`repro.core.fasteval`).  Computed
        once per instance — topologies are immutable.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = (
                self.name,
                self.cores_per_node,
                tuple(node.local_bandwidth for node in self.nodes),
                tuple(core.peak_gflops for core in self._cores),
                self.link_bandwidth.tobytes(),
            )
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def node_of_core(self, global_id: int) -> NumaNode:
        """Return the NUMA node owning core ``global_id``."""
        core = self.core(global_id)
        return self.nodes[core.node_id]

    def core(self, global_id: int) -> Core:
        """Return the core with the given global id."""
        if not 0 <= global_id < len(self._cores):
            raise TopologyError(
                f"core id {global_id} out of range [0, {len(self._cores)})"
            )
        return self._cores[global_id]

    def cores_of_node(self, node_id: int) -> tuple[Core, ...]:
        """Return the cores of node ``node_id``."""
        return self.node(node_id).cores

    def node(self, node_id: int) -> NumaNode:
        """Return the node with the given id."""
        if not 0 <= node_id < len(self.nodes):
            raise TopologyError(
                f"node id {node_id} out of range [0, {len(self.nodes)})"
            )
        return self.nodes[node_id]

    def bandwidth(self, source_node: int, memory_node: int) -> float:
        """Peak GB/s for cores on ``source_node`` reading ``memory_node``."""
        self.node(source_node)
        self.node(memory_node)
        return float(self.link_bandwidth[source_node, memory_node])

    def ridge_ai(self, node_id: int) -> float:
        """Roofline ridge-point arithmetic intensity of a node.

        An application whose arithmetic intensity is below this value is
        memory bound on the node (when running on all of the node's cores);
        above it, compute bound.
        """
        node = self.node(node_id)
        return node.peak_gflops / node.local_bandwidth

    def iter_node_pairs(self) -> Iterator[tuple[int, int]]:
        """Yield all ordered (source, memory) node pairs, including self."""
        for s in range(self.num_nodes):
            for m in range(self.num_nodes):
                yield s, m

    def describe(self) -> str:
        """Human-readable multi-line summary of the machine."""
        lines = [f"machine '{self.name}':"]
        lines.append(
            f"  {self.num_nodes} NUMA node(s), {self.total_cores} core(s), "
            f"peak {self.peak_gflops:.2f} GFLOPS"
        )
        for node in self.nodes:
            lines.append(
                f"  node {node.node_id}: {node.num_cores} cores x "
                f"{node.cores[0].peak_gflops:g} GFLOPS, "
                f"{node.local_bandwidth:g} GB/s local"
            )
        if self.num_nodes > 1:
            off = self.link_bandwidth[~np.eye(self.num_nodes, dtype=bool)]
            lines.append(
                f"  inter-node links: min {off.min():g} / max {off.max():g} GB/s"
            )
        return "\n".join(lines)

    def with_name(self, name: str) -> "MachineTopology":
        """Return a copy of this topology under a different name."""
        return MachineTopology(
            nodes=self.nodes, link_bandwidth=self.link_bandwidth, name=name
        )

    def scaled_bandwidth(self, factor: float) -> "MachineTopology":
        """Return a topology with all bandwidths multiplied by ``factor``.

        Useful for sensitivity sweeps (e.g. "what if the links were twice
        as fast?").
        """
        if factor <= 0:
            raise TopologyError(f"scale factor must be positive, got {factor}")
        nodes = tuple(
            NumaNode(
                node_id=n.node_id,
                cores=n.cores,
                local_bandwidth=n.local_bandwidth * factor,
            )
            for n in self.nodes
        )
        return MachineTopology(
            nodes=nodes,
            link_bandwidth=np.asarray(self.link_bandwidth) * factor,
            name=f"{self.name}(bw x{factor:g})",
        )
