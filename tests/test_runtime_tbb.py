"""Unit tests for the TBB-like arena/RML runtime."""

import pytest

from repro.errors import RuntimeSystemError
from repro.machine import model_machine
from repro.runtime.task import Task
from repro.runtime.tbb import TbbRuntime
from repro.sim import ExecutionSimulator


def mk(name, flops=0.01, ai=10.0):
    return Task(name=name, flops=flops, arithmetic_intensity=ai)


@pytest.fixture
def ex():
    return ExecutionSimulator(model_machine())


class TestArenas:
    def test_create_and_duplicate(self, ex):
        tbb = TbbRuntime("tbb", ex, num_threads=4)
        tbb.create_arena("a", 2)
        with pytest.raises(RuntimeSystemError):
            tbb.create_arena("a", 2)

    def test_invalid_concurrency(self, ex):
        tbb = TbbRuntime("tbb", ex, num_threads=4)
        with pytest.raises(RuntimeSystemError):
            tbb.create_arena("a", -1)

    def test_invalid_node(self, ex):
        from repro.errors import TopologyError

        tbb = TbbRuntime("tbb", ex, num_threads=4)
        with pytest.raises(TopologyError):
            tbb.create_arena("a", 2, node=99)

    def test_enqueue_unready_rejected(self, ex):
        tbb = TbbRuntime("tbb", ex, num_threads=4)
        arena = tbb.create_arena("a", 2)
        a, b = mk("a"), mk("b")
        b.depends_on(a)
        with pytest.raises(RuntimeSystemError):
            arena.enqueue(b)


class TestExecution:
    def test_tasks_run(self, ex):
        tbb = TbbRuntime("tbb", ex, num_threads=8)
        arena = tbb.create_arena("a", 8)
        for i in range(30):
            arena.enqueue(mk(f"t{i}"))
        ex.run_until_idle()
        assert tbb.stats_tasks_executed == 30
        assert arena.tasks_executed == 30
        assert tbb.idle_threads == 8

    def test_concurrency_limit_respected(self, ex):
        tbb = TbbRuntime("tbb", ex, num_threads=8)
        arena = tbb.create_arena("a", 2)
        for i in range(10):
            arena.enqueue(mk(f"t{i}", flops=0.05))
        ex.run(0.01)
        assert arena.active <= 2

    def test_two_arenas_share_market(self, ex):
        tbb = TbbRuntime("tbb", ex, num_threads=8)
        a = tbb.create_arena("a", 4)
        b = tbb.create_arena("b", 4)
        for i in range(20):
            a.enqueue(mk(f"a{i}"))
            b.enqueue(mk(f"b{i}"))
        ex.run_until_idle()
        assert a.tasks_executed == 20
        assert b.tasks_executed == 20

    def test_rml_dynamic_concurrency(self, ex):
        # The paper's RML observation: adjusting arena concurrency at
        # runtime re-allocates threads between arenas.
        tbb = TbbRuntime("tbb", ex, num_threads=8)
        a = tbb.create_arena("a", 8)
        b = tbb.create_arena("b", 0)
        for i in range(200):
            a.enqueue(mk(f"a{i}", flops=0.02))
            b.enqueue(mk(f"b{i}", flops=0.02))
        ex.run(0.02)
        assert b.active == 0
        tbb.set_arena_concurrency("a", 2)
        tbb.set_arena_concurrency("b", 6)
        ex.run(0.05)
        assert b.active > 0
        assert a.active <= 2

    def test_unknown_arena_rejected(self, ex):
        tbb = TbbRuntime("tbb", ex, num_threads=2)
        with pytest.raises(RuntimeSystemError):
            tbb.set_arena_concurrency("nope", 1)


class TestNumaBinding:
    def test_workers_rebind_to_arena_node(self, ex):
        # Arena bound to node 2: its workers execute on node 2 (the
        # paper's TBB option-3 equivalent).
        tbb = TbbRuntime("tbb", ex, num_threads=4)
        arena = tbb.create_arena("a", 4, node=2)
        for i in range(400):
            arena.enqueue(mk(f"t{i}"))
        ex.run(0.02)
        running = [
            t for t in ex.threads if t.assigned_node is not None and t.busy
        ]
        assert running
        assert all(t.assigned_node == 2 for t in running)

    def test_zero_threads_rejected(self, ex):
        with pytest.raises(RuntimeSystemError):
            TbbRuntime("tbb", ex, num_threads=0)
