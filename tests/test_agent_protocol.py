"""Unit tests for agent<->runtime protocol messages and endpoints."""

import pytest

from repro.agent.protocol import (
    CommandKind,
    OcrVxEndpoint,
    ThreadCommand,
)
from repro.errors import ProtocolError
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


class TestThreadCommand:
    def test_required_fields_enforced(self):
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS)
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.SET_NODE_THREADS, node=0)
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.SET_ALLOCATION)
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.BLOCK_WORKERS)

    def test_valid_commands(self):
        ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=4)
        ThreadCommand(kind=CommandKind.SET_NODE_THREADS, node=0, count=2)
        ThreadCommand(
            kind=CommandKind.SET_ALLOCATION, per_node=(1, 1, 1, 1)
        )
        ThreadCommand(
            kind=CommandKind.UNBLOCK_WORKERS, workers=("a/w0",)
        )

    def test_set_node_threads_requires_both_fields(self):
        # The satellite case: count without node, node without count.
        with pytest.raises(ProtocolError, match="node"):
            ThreadCommand(kind=CommandKind.SET_NODE_THREADS, count=2)
        with pytest.raises(ProtocolError, match="count"):
            ThreadCommand(kind=CommandKind.SET_NODE_THREADS, node=1)

    def test_extraneous_fields_rejected(self):
        with pytest.raises(ProtocolError, match="does not take"):
            ThreadCommand(
                kind=CommandKind.SET_TOTAL_THREADS, total=4, node=0
            )
        with pytest.raises(ProtocolError, match="does not take"):
            ThreadCommand(
                kind=CommandKind.SET_ALLOCATION,
                per_node=(1, 1),
                workers=("a/w0",),
            )

    def test_integer_fields_validated(self):
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=-1)
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=2.5)
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=True)
        with pytest.raises(ProtocolError):
            ThreadCommand(
                kind=CommandKind.SET_NODE_THREADS, node=-1, count=2
            )

    def test_numpy_integers_accepted(self):
        np = pytest.importorskip("numpy")
        cmd = ThreadCommand(
            kind=CommandKind.SET_NODE_THREADS,
            node=np.int64(1),
            count=np.int32(3),
        )
        assert int(cmd.node) == 1
        ThreadCommand(
            kind=CommandKind.SET_ALLOCATION,
            per_node=(np.int64(2), np.int64(2)),
        )

    def test_per_node_and_workers_validated(self):
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.SET_ALLOCATION, per_node=())
        with pytest.raises(ProtocolError):
            ThreadCommand(
                kind=CommandKind.SET_ALLOCATION, per_node=(1, -1)
            )
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.BLOCK_WORKERS, workers=())

    def test_kind_must_be_command_kind(self):
        with pytest.raises(ProtocolError):
            ThreadCommand(kind="set-total-threads", total=4)


class TestOcrVxEndpoint:
    @pytest.fixture
    def setup(self):
        ex = ExecutionSimulator(model_machine())
        rt = OCRVxRuntime("app", ex)
        rt.start([2, 2, 2, 2])
        return ex, rt, OcrVxEndpoint(rt)

    def test_report_contents(self, setup):
        ex, rt, ep = setup
        r = ep.report(ex.sim.now)
        assert r.runtime_name == "app"
        assert r.active_threads == 8
        assert r.active_per_node == (2, 2, 2, 2)
        assert r.workers_per_node == (2, 2, 2, 2)
        assert r.queue_length == 0

    def test_cpu_load_differencing(self, setup):
        ex, rt, ep = setup
        ep.report(ex.sim.now)
        for i in range(100):
            rt.create_task(f"t{i}", 0.01, 10.0)
        ex.run(0.05)
        r = ep.report(ex.sim.now)
        assert 0.0 < r.cpu_load <= 1.01

    def test_apply_allocation(self, setup):
        ex, rt, ep = setup
        ep.apply(
            ThreadCommand(
                kind=CommandKind.SET_ALLOCATION, per_node=(1, 1, 1, 1)
            )
        )
        ex.run(0.01)
        assert rt.active_per_node() == [1, 1, 1, 1]

    def test_apply_total(self, setup):
        ex, rt, ep = setup
        ep.apply(
            ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=3)
        )
        ex.run(0.01)
        assert rt.active_threads == 3

    def test_apply_block_unblock(self, setup):
        ex, rt, ep = setup
        name = rt.workers[0].name
        ep.apply(
            ThreadCommand(
                kind=CommandKind.BLOCK_WORKERS, workers=(name,)
            )
        )
        ex.run(0.01)
        assert rt.workers[0].blocked
        ep.apply(
            ThreadCommand(
                kind=CommandKind.UNBLOCK_WORKERS, workers=(name,)
            )
        )
        assert not rt.workers[0].blocked
