"""Tests for the MPI-flavoured network model and BSP programs."""

import pytest

from repro.distributed.messaging import (
    BspProgram,
    LossyNetworkModel,
    NetworkModel,
    ReliableChannel,
    SyncKind,
)
from repro.distributed.rates import PeriodicRate, RatePhase
from repro.errors import DistributedError


class TestNetworkModel:
    def test_transfer_time(self):
        net = NetworkModel(latency=1e-6, bandwidth=10.0)
        # 1 GB over 10 GB/s = 0.1 s plus latency
        assert net.transfer_time(1e9) == pytest.approx(0.1, rel=0.01)

    def test_barrier_scaling(self):
        net = NetworkModel()
        assert net.barrier_time(1) == 0.0
        assert net.barrier_time(8) == pytest.approx(
            3 * net.transfer_time(8)
        )
        assert net.barrier_time(9) == pytest.approx(
            4 * net.transfer_time(8)
        )

    def test_allreduce_scaling(self):
        net = NetworkModel()
        one = net.allreduce_time(1e6, 2)
        assert net.allreduce_time(1e6, 4) == pytest.approx(2 * one)

    def test_validation(self):
        with pytest.raises(DistributedError):
            NetworkModel(latency=-1)
        with pytest.raises(DistributedError):
            NetworkModel(bandwidth=0)
        with pytest.raises(DistributedError):
            NetworkModel().transfer_time(-1)
        with pytest.raises(DistributedError):
            NetworkModel().barrier_time(0)


class TestBspProgram:
    def test_homogeneous_ranks_no_wait(self):
        prog = BspProgram(
            iterations=5, work_per_rank=10.0, sync=SyncKind.GLOBAL,
            message_bytes=0.0,
        )
        res = prog.run([PeriodicRate.constant(10.0)] * 4)
        assert res.makespan == pytest.approx(5.0, rel=0.01)
        assert res.mean_wait_fraction < 0.01

    def test_global_sync_waits_for_slowest(self):
        prog = BspProgram(
            iterations=4, work_per_rank=10.0, sync=SyncKind.GLOBAL,
            message_bytes=0.0,
        )
        res = prog.run(
            [PeriodicRate.constant(10.0), PeriodicRate.constant(5.0)]
        )
        assert res.makespan == pytest.approx(8.0, rel=0.01)
        # fast rank waits half of every iteration
        assert res.wait_time[0] == pytest.approx(4.0, rel=0.05)

    def test_none_sync_ranks_independent(self):
        prog = BspProgram(
            iterations=4, work_per_rank=10.0, sync=SyncKind.NONE
        )
        res = prog.run(
            [PeriodicRate.constant(10.0), PeriodicRate.constant(5.0)]
        )
        assert res.makespan == pytest.approx(8.0, rel=0.01)
        assert sum(res.wait_time) == pytest.approx(0.0)

    def test_neighbor_sync_localises_skew(self):
        # One slow rank in a chain of fast ones: with NEIGHBOR sync only
        # adjacent ranks wait each iteration, so total wait is smaller
        # than under GLOBAL sync.
        fast = PeriodicRate.constant(10.0)
        slow = PeriodicRate.constant(5.0)
        ranks = [fast, fast, fast, slow, fast, fast, fast]

        def total_wait(sync):
            prog = BspProgram(
                iterations=3,
                work_per_rank=10.0,
                sync=sync,
                message_bytes=0.0,
            )
            return sum(prog.run(ranks).wait_time)

        assert total_wait(SyncKind.NEIGHBOR) < total_wait(SyncKind.GLOBAL)

    def test_bursty_corunner_hurts_global_most(self):
        # The Section V story with communication included: a staggered
        # bursty co-runner costs much more under global sync.
        phases = [RatePhase(0.5, 5.0), RatePhase(0.5, 10.0)]
        ranks = [
            PeriodicRate(phases, offset=r * 0.125) for r in range(8)
        ]

        def makespan(sync):
            return BspProgram(
                iterations=10,
                work_per_rank=5.0,
                sync=sync,
                message_bytes=0.0,
            ).run(ranks).makespan

        loose = makespan(SyncKind.NONE)
        neigh = makespan(SyncKind.NEIGHBOR)
        tight = makespan(SyncKind.GLOBAL)
        assert loose <= neigh <= tight

    def test_comm_time_accounted(self):
        prog = BspProgram(
            iterations=2,
            work_per_rank=1.0,
            sync=SyncKind.GLOBAL,
            message_bytes=1e9,
            network=NetworkModel(bandwidth=10.0),
        )
        res = prog.run([PeriodicRate.constant(10.0)] * 2)
        # each allreduce: 1 round x 0.1 s, twice
        assert res.comm_time == pytest.approx(0.2, rel=0.01)

    def test_validation(self):
        with pytest.raises(DistributedError):
            BspProgram(iterations=0, work_per_rank=1.0)
        with pytest.raises(DistributedError):
            BspProgram(iterations=1, work_per_rank=0.0)
        prog = BspProgram(iterations=1, work_per_rank=1.0)
        with pytest.raises(DistributedError):
            prog.run([])


class TestLossyNetworkModel:
    def test_validation(self):
        with pytest.raises(DistributedError):
            LossyNetworkModel(loss_rate=1.0)  # must stay < 1
        with pytest.raises(DistributedError):
            LossyNetworkModel(duplication_rate=-0.1)
        with pytest.raises(DistributedError):
            LossyNetworkModel(ack_timeout=0.0)
        with pytest.raises(DistributedError):
            LossyNetworkModel(bandwidth=0.0)  # base validation still runs

    def test_ack_timeout_defaults_to_four_latencies(self):
        net = LossyNetworkModel(latency=1e-6)
        assert net.effective_ack_timeout == pytest.approx(4e-6)
        assert LossyNetworkModel(
            ack_timeout=0.5
        ).effective_ack_timeout == pytest.approx(0.5)

    def test_is_a_network_model(self):
        net = LossyNetworkModel(latency=1e-6, bandwidth=10.0, loss_rate=0.5)
        assert net.transfer_time(1e9) == pytest.approx(0.1, rel=0.01)


class TestReliableChannel:
    def test_lossless_link_delivers_first_try(self):
        chan = ReliableChannel(LossyNetworkModel())
        result = chan.send(1e6)
        assert result.delivered
        assert result.attempts == 1
        assert result.retransmits == 0
        assert chan.delivery_rate == pytest.approx(1.0)

    def test_lossy_link_retransmits_within_budget(self):
        net = LossyNetworkModel(loss_rate=0.5, duplication_rate=0.1)
        chan = ReliableChannel(net, max_retransmits=10, seed=1)
        results = [chan.send(1e6) for _ in range(200)]
        assert all(r.delivered for r in results)
        assert chan.retransmits > 0
        assert chan.duplicates > 0
        assert all(r.attempts <= 11 for r in results)

    def test_budget_exhaustion_fails_visibly(self):
        net = LossyNetworkModel(loss_rate=0.99)
        chan = ReliableChannel(net, max_retransmits=1, seed=0)
        results = [chan.send(1e3) for _ in range(50)]
        assert any(not r.delivered for r in results)
        assert chan.undeliverable > 0
        assert chan.delivery_rate < 1.0

    def test_strict_mode_raises(self):
        net = LossyNetworkModel(loss_rate=0.99)
        chan = ReliableChannel(net, max_retransmits=0, strict=True, seed=0)
        with pytest.raises(DistributedError, match="budget"):
            for _ in range(100):
                chan.send(1e3)

    def test_seeded_determinism(self):
        def tallies(seed):
            net = LossyNetworkModel(loss_rate=0.3, duplication_rate=0.1)
            chan = ReliableChannel(net, seed=seed)
            for _ in range(100):
                chan.send(1e6)
            return (chan.delivered, chan.retransmits, chan.duplicates)

        assert tallies(7) == tallies(7)
        assert tallies(7) != tallies(8)

    def test_failed_attempts_pay_ack_timeout(self):
        net = LossyNetworkModel(
            latency=1e-6, loss_rate=0.5, ack_timeout=1.0
        )
        chan = ReliableChannel(net, max_retransmits=10, seed=3)
        result = next(
            r for r in (chan.send(1e3) for _ in range(50)) if r.retransmits
        )
        assert result.elapsed_seconds > result.retransmits * 1.0

    def test_negative_budget_rejected(self):
        with pytest.raises(DistributedError):
            ReliableChannel(LossyNetworkModel(), max_retransmits=-1)
