"""Tests for the C-flavoured OCR API facade."""

import pytest

from repro.errors import RuntimeSystemError
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime
from repro.runtime.ocr_api import (
    UNINITIALIZED,
    OcrContext,
    OcrEventKind,
    ocr_add_dependence,
    ocr_db_create,
    ocr_db_destroy,
    ocr_edt_create,
    ocr_edt_template_create,
    ocr_event_create,
    ocr_event_satisfy,
)
from repro.sim import ExecutionSimulator


@pytest.fixture
def env():
    ex = ExecutionSimulator(model_machine())
    rt = OCRVxRuntime("ocr", ex)
    rt.start([2, 2, 2, 2])
    return ex, rt, OcrContext(rt)


class TestTemplatesAndEdts:
    def test_create_and_run(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        edt, out = ocr_edt_create(ctx, tpl)
        ex.run_until_idle()
        assert ctx.get(out).fired
        assert rt.stats.tasks_executed == 1

    def test_template_validation(self, env):
        _, _, ctx = env
        with pytest.raises(RuntimeSystemError):
            ocr_edt_template_create(ctx, "k", 0.0, 1.0)

    def test_edt_needs_template_guid(self, env):
        ex, rt, ctx = env
        ev = ocr_event_create(ctx)
        with pytest.raises(RuntimeSystemError):
            ocr_edt_create(ctx, ev)

    def test_chain_via_output_events(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        a, a_out = ocr_edt_create(ctx, tpl)
        b, b_out = ocr_edt_create(ctx, tpl, depv=[a_out])
        ex.run_until_idle()
        assert ctx.get(b_out).fired

    def test_uninitialized_slot_connected_later(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        consumer, c_out = ocr_edt_create(
            ctx, tpl, depv=[UNINITIALIZED]
        )
        producer, p_out = ocr_edt_create(ctx, tpl)
        ocr_add_dependence(ctx, p_out, consumer, slot=0)
        ex.run_until_idle()
        assert ctx.get(c_out).fired

    def test_unconnected_slot_blocks_forever(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        edt, out = ocr_edt_create(ctx, tpl, depv=[UNINITIALIZED])
        ex.run(0.05)
        assert not ctx.get(out).fired

    def test_affinity_passes_through(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        edt, _ = ocr_edt_create(ctx, tpl, affinity_node=2)
        assert ctx.task_of(edt).affinity_node == 2


class TestDatablocks:
    def test_db_dependence_satisfied_immediately(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        db = ocr_db_create(ctx, 1024, home_node=1)
        edt, out = ocr_edt_create(ctx, tpl, depv=[db])
        ex.run_until_idle()
        assert ctx.get(out).fired
        # the task's traffic followed the datablock's home
        assert ctx.task_of(edt).traffic() == {1: pytest.approx(1.0)}

    def test_db_destroy(self, env):
        _, _, ctx = env
        db = ocr_db_create(ctx, 64, home_node=0)
        ocr_db_destroy(ctx, db)
        with pytest.raises(RuntimeSystemError):
            ctx.get(db)

    def test_db_as_late_dependence(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        edt, out = ocr_edt_create(ctx, tpl, depv=[UNINITIALIZED])
        db = ocr_db_create(ctx, 64, home_node=0)
        ocr_add_dependence(ctx, db, edt, slot=0)
        ex.run_until_idle()
        assert ctx.get(out).fired


class TestEvents:
    def test_once_event(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        ev = ocr_event_create(ctx, OcrEventKind.ONCE)
        edt, out = ocr_edt_create(ctx, tpl, depv=[ev])
        ex.run(0.01)
        assert not ctx.get(out).fired
        ocr_event_satisfy(ctx, ev)
        ex.run_until_idle()
        assert ctx.get(out).fired

    def test_latch_event(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        latch = ocr_event_create(
            ctx, OcrEventKind.LATCH, latch_count=2
        )
        edt, out = ocr_edt_create(ctx, tpl, depv=[latch])
        ocr_event_satisfy(ctx, latch)
        ex.run(0.01)
        assert not ctx.get(out).fired
        ocr_event_satisfy(ctx, latch)
        ex.run_until_idle()
        assert ctx.get(out).fired

    def test_satisfy_non_event_rejected(self, env):
        _, _, ctx = env
        db = ocr_db_create(ctx, 64, home_node=0)
        with pytest.raises(RuntimeSystemError):
            ocr_event_satisfy(ctx, db)


class TestAddDependence:
    def test_slot_bounds(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        edt, _ = ocr_edt_create(ctx, tpl, depv=[UNINITIALIZED])
        ev = ocr_event_create(ctx)
        with pytest.raises(RuntimeSystemError):
            ocr_add_dependence(ctx, ev, edt, slot=5)

    def test_double_connect_rejected(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        edt, _ = ocr_edt_create(ctx, tpl, depv=[UNINITIALIZED])
        ev = ocr_event_create(ctx)
        ocr_event_satisfy(ctx, ev)
        ocr_add_dependence(ctx, ev, edt, slot=0)
        ev2 = ocr_event_create(ctx)
        with pytest.raises(RuntimeSystemError):
            ocr_add_dependence(ctx, ev2, edt, slot=0)

    def test_pre_satisfied_slot_rejected(self, env):
        ex, rt, ctx = env
        tpl = ocr_edt_template_create(ctx, "k", 0.01, 8.0)
        db = ocr_db_create(ctx, 64, home_node=0)
        edt, _ = ocr_edt_create(ctx, tpl, depv=[db])
        ev = ocr_event_create(ctx)
        with pytest.raises(RuntimeSystemError):
            ocr_add_dependence(ctx, ev, edt, slot=0)

    def test_fork_join_program(self, env):
        """Port of the canonical OCR fork-join example."""
        ex, rt, ctx = env
        work_tpl = ocr_edt_template_create(ctx, "work", 0.01, 8.0)
        join_tpl = ocr_edt_template_create(ctx, "join", 0.005, 8.0)
        width = 6
        join, join_out = ocr_edt_create(
            ctx, join_tpl, depv=[UNINITIALIZED] * width
        )
        for i in range(width):
            _, out = ocr_edt_create(ctx, work_tpl)
            ocr_add_dependence(ctx, out, join, slot=i)
        ex.run_until_idle()
        assert ctx.get(join_out).fired
        assert rt.stats.tasks_executed == width + 1
