"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows next to the paper's published values, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the experiment
report generator.
"""

from __future__ import annotations


def emit(title: str, text: str) -> None:
    """Print an experiment block (visible with ``-s`` / on failures)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{text}")
