"""Open-loop load harness driving the gateway (``python -m repro load``).

The harness measures the *serve path* the way the model bench
(:mod:`repro.analysis.bench`) measures the optimizer: a seeded,
repeatable workload with committed baseline numbers (``BENCH_serve
.json``) gated in CI.  It is **open-loop**: client sessions arrive on a
seeded stochastic schedule that does not slow down when the service
does — the defining property of real traffic, and the reason latency
percentiles (not averages) are the headline numbers.  Each simulated
session connects to a live :class:`~repro.serve.gateway.GatewayServer`,
registers, streams progress reports, deregisters, and retries with
backoff when the gateway sheds it ``overloaded``.

Arrival processes are pure seeded functions of ``(rate, duration,
seed)`` so a schedule can equally drive the DES
:class:`~repro.sim.engine.Simulator` (they return plain offsets in
seconds, clock-agnostic and deterministic):

>>> from repro.serve.load import poisson_arrivals, diurnal_arrivals
>>> sched = poisson_arrivals(rate=100.0, duration=1.0, seed=7)
>>> sched == poisson_arrivals(rate=100.0, duration=1.0, seed=7)
True
>>> all(0 <= t < 1.0 for t in sched)
True
>>> day = diurnal_arrivals(base_rate=10.0, peak_rate=60.0, period=2.0,
...                        duration=4.0, seed=3)
>>> day == sorted(day)
True

What a run reports — p50/p95/p99 command latency, shed/retry counts,
and the re-optimization debounce behaviour (churn events coalesced per
search) — is documented field by field in ``docs/BENCHMARKS.md``; the
walkthrough lives in ``docs/GATEWAY.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import random
import time
from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.machine import model_machine
from repro.serve.gateway import GatewayConfig, GatewayServer
from repro.core.spec import AppSpec
from repro.serve.protocol import (
    Ack,
    Deregister,
    ErrorReply,
    ProgressReport,
    Register,
    decode_message,
    encode_message,
)
from repro.serve.service import ServiceConfig

__all__ = [
    "poisson_arrivals",
    "diurnal_arrivals",
    "percentile",
    "LoadScenario",
    "LOAD_SCENARIOS",
    "LoadReport",
    "run_load",
]

#: JSON schema tag stamped on every load report (``BENCH_serve.json``).
_SCHEMA = "repro-serve-bench/1"

#: Seconds a client waits for one reply line before giving up on the
#: session (a CI-hang guard, far above any sane latency SLO).
_REPLY_TIMEOUT = 30.0


def poisson_arrivals(
    rate: float, duration: float, seed: int
) -> tuple[float, ...]:
    """Homogeneous Poisson arrival offsets over ``[0, duration)``.

    Inter-arrival gaps are i.i.d. exponential with mean ``1/rate``;
    the same ``(rate, duration, seed)`` always yields the same
    schedule, on any clock (the offsets are plain seconds).
    """
    if rate <= 0:
        raise ServiceError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ServiceError(f"duration must be positive, got {duration}")
    rng = random.Random(seed)
    out: list[float] = []
    t = rng.expovariate(rate)
    while t < duration:
        out.append(t)
        t += rng.expovariate(rate)
    return tuple(out)


def diurnal_arrivals(
    base_rate: float,
    peak_rate: float,
    period: float,
    duration: float,
    seed: int,
) -> tuple[float, ...]:
    """Nonhomogeneous Poisson offsets with a sinusoidal daily profile.

    The instantaneous rate swings between ``base_rate`` (trough, at
    ``t = 0``) and ``peak_rate`` (crest, half a ``period`` later):
    ``rate(t) = base + (peak - base) * (1 - cos(2*pi*t/period)) / 2``.
    Sampled by thinning: candidates are drawn at the constant
    ``peak_rate`` and kept with probability ``rate(t)/peak_rate``,
    which is exact for any bounded rate function.  Deterministic in
    ``seed`` like :func:`poisson_arrivals`.
    """
    if base_rate <= 0:
        raise ServiceError(
            f"base_rate must be positive, got {base_rate}"
        )
    if peak_rate < base_rate:
        raise ServiceError(
            f"peak_rate must be >= base_rate, "
            f"got {peak_rate} < {base_rate}"
        )
    if period <= 0:
        raise ServiceError(f"period must be positive, got {period}")
    if duration <= 0:
        raise ServiceError(f"duration must be positive, got {duration}")
    rng = random.Random(seed)
    out: list[float] = []
    t = rng.expovariate(peak_rate)
    while t < duration:
        rate_t = base_rate + (peak_rate - base_rate) * (
            1.0 - math.cos(2.0 * math.pi * t / period)
        ) / 2.0
        if rng.random() < rate_t / peak_rate:
            out.append(t)
        t += rng.expovariate(peak_rate)
    return tuple(out)


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile by linear interpolation.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    >>> percentile([5.0], 99)
    5.0
    """
    if not values:
        raise ServiceError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ServiceError(f"percentile must be in [0, 100], got {q}")
    xs = sorted(values)
    if len(xs) == 1:
        return xs[0]
    rank = (q / 100.0) * (len(xs) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(xs) - 1)
    frac = rank - low
    return xs[low] * (1.0 - frac) + xs[high] * frac


@dataclass(frozen=True)
class LoadScenario:
    """One named open-loop workload against a gateway-fronted service.

    Arrival side: ``arrival`` picks the process (``"poisson"`` uses
    ``rate``; ``"diurnal"`` additionally uses ``peak_rate`` and
    ``period``) over ``duration`` seconds.  Each arrival is one client
    session: register, ``reports_per_session`` progress reports spaced
    ``report_interval`` apart, deregister — retrying ``overloaded``
    sheds up to ``max_retries`` times with linear ``retry_backoff``.

    Service side: the gateway runs an admission-capped
    (``max_sessions``) service in ``mode`` with the given ``debounce``,
    behind a token bucket (``bucket_rate``/``bucket_burst``), a bounded
    admission queue (``admission_limit``), a connection cap
    (``max_connections``), and an ``idle_deadline``.

    SLO side: a run *passes* when the overall command-latency p99
    stays at or under ``slo_p99_ms`` milliseconds and at least
    ``min_admitted`` sessions made it through admission (so an
    accidentally-empty run cannot pass vacuously).
    """

    name: str
    description: str
    arrival: str
    rate: float
    duration: float
    reports_per_session: int
    report_interval: float
    peak_rate: float | None = None
    period: float | None = None
    max_sessions: int = 6
    mode: str = "delta"
    debounce: float = 0.02
    service_report_interval: float = 0.1
    bucket_rate: float | None = None
    bucket_burst: int = 64
    admission_limit: int = 512
    max_connections: int = 512
    idle_deadline: float = 5.0
    max_retries: int = 2
    retry_backoff: float = 0.05
    slo_p99_ms: float = 250.0
    min_admitted: int = 10

    def __post_init__(self) -> None:
        if self.arrival not in ("poisson", "diurnal"):
            raise ServiceError(
                f"arrival must be 'poisson' or 'diurnal', "
                f"got {self.arrival!r}"
            )
        if self.arrival == "diurnal" and (
            self.peak_rate is None or self.period is None
        ):
            raise ServiceError(
                "diurnal arrivals need peak_rate and period"
            )
        if self.reports_per_session < 0:
            raise ServiceError(
                f"reports_per_session must be >= 0, "
                f"got {self.reports_per_session}"
            )
        if self.max_retries < 0:
            raise ServiceError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.slo_p99_ms <= 0:
            raise ServiceError(
                f"slo_p99_ms must be positive, got {self.slo_p99_ms}"
            )

    def arrival_times(self, seed: int) -> tuple[float, ...]:
        """The session-arrival offsets this scenario generates."""
        if self.arrival == "poisson":
            return poisson_arrivals(self.rate, self.duration, seed)
        assert self.peak_rate is not None and self.period is not None
        return diurnal_arrivals(
            self.rate, self.peak_rate, self.period, self.duration, seed
        )

    def service_config(self) -> ServiceConfig:
        """The :class:`~repro.serve.service.ServiceConfig` to run."""
        return ServiceConfig(
            machine=model_machine(),
            debounce=self.debounce,
            report_interval=self.service_report_interval,
            max_sessions=self.max_sessions,
            mode=self.mode,
        )

    def gateway_config(self, *, http: bool) -> GatewayConfig:
        """The :class:`~repro.serve.gateway.GatewayConfig` to run."""
        return GatewayConfig(
            port=0,
            http_port=0 if http else None,
            max_connections=self.max_connections,
            rate=self.bucket_rate,
            burst=self.bucket_burst,
            admission_limit=self.admission_limit,
            idle_deadline=self.idle_deadline,
        )


#: The scenario library.  ``open-loop-small`` is the CI preset behind
#: ``BENCH_serve.json``; ``open-loop-large`` is the tens-of-thousands
#: dev-box run (docs/BENCHMARKS.md shows how to run and read it).
LOAD_SCENARIOS: dict[str, LoadScenario] = {
    scenario.name: scenario
    for scenario in (
        LoadScenario(
            name="open-loop-small",
            description=(
                "CI smoke: ~240 Poisson sessions over 2 s against a "
                "6-session service; generous bucket, SLO p99 <= 250 ms"
            ),
            arrival="poisson",
            rate=120.0,
            duration=2.0,
            reports_per_session=3,
            report_interval=0.04,
            max_sessions=6,
            bucket_rate=4000.0,
            bucket_burst=400,
            slo_p99_ms=250.0,
            min_admitted=10,
        ),
        LoadScenario(
            name="open-loop-burst",
            description=(
                "rate-limit stress: 500/s offered against a 150/s "
                "bucket — most commands shed, survivors stay fast"
            ),
            arrival="poisson",
            rate=500.0,
            duration=1.2,
            reports_per_session=2,
            report_interval=0.03,
            max_sessions=4,
            bucket_rate=150.0,
            bucket_burst=60,
            admission_limit=256,
            max_connections=1024,
            max_retries=1,
            retry_backoff=0.02,
            slo_p99_ms=400.0,
            min_admitted=5,
        ),
        LoadScenario(
            name="diurnal-small",
            description=(
                "sinusoidal day: 30/s trough to 180/s crest over three "
                "1 s periods; exercises debounce under a moving rate"
            ),
            arrival="diurnal",
            rate=30.0,
            peak_rate=180.0,
            period=1.0,
            duration=3.0,
            reports_per_session=3,
            report_interval=0.05,
            max_sessions=6,
            bucket_rate=4000.0,
            bucket_burst=400,
            slo_p99_ms=300.0,
            min_admitted=10,
        ),
        LoadScenario(
            name="open-loop-large",
            description=(
                "dev-box scale: ~32k Poisson sessions over 8 s "
                "(tens of thousands of clients; not run in CI)"
            ),
            arrival="poisson",
            rate=4000.0,
            duration=8.0,
            reports_per_session=2,
            report_interval=0.05,
            max_sessions=8,
            bucket_rate=20000.0,
            bucket_burst=2000,
            admission_limit=4096,
            max_connections=8192,
            idle_deadline=10.0,
            max_retries=1,
            retry_backoff=0.02,
            slo_p99_ms=500.0,
            min_admitted=50,
        ),
    )
}


class _Recorder:
    """Mutable tallies one load run accumulates across its sessions."""

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.by_type: dict[str, int] = {}
        self.admitted = 0
        self.completed = 0
        self.turned_away = 0
        self.connect_failures = 0
        self.session_errors = 0
        self.retries = 0
        self.pushes = 0
        self.overloaded_replies = 0
        self.error_replies: dict[str, int] = {}

    def record(self, msg_type: str, seconds: float) -> None:
        """One command round-trip of ``msg_type`` taking ``seconds``."""
        self.latencies.append(seconds)
        self.by_type[msg_type] = self.by_type.get(msg_type, 0) + 1

    def record_error(self, code: str | None) -> None:
        """One :class:`~repro.serve.protocol.ErrorReply` received."""
        key = code or "unknown"
        self.error_replies[key] = self.error_replies.get(key, 0) + 1
        if key == "overloaded":
            self.overloaded_replies += 1


@dataclass
class LoadReport:
    """Everything one load run measured (see ``docs/BENCHMARKS.md``).

    The JSON form (:meth:`to_dict`) is what ``python -m repro load
    --out`` writes and what ``BENCH_serve.json`` pins as the committed
    baseline; :meth:`format` renders the same numbers as the
    human-readable table the CLI prints by default.
    """

    scenario: str
    seed: int
    transport: str
    wall_seconds: float
    sessions: dict = field(default_factory=dict)
    commands: dict = field(default_factory=dict)
    latency_ms: dict = field(default_factory=dict)
    shed: dict = field(default_factory=dict)
    service: dict = field(default_factory=dict)
    slo: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """Whether the run met its SLO (the CLI's exit-code gate)."""
        return bool(self.slo.get("passed"))

    def to_dict(self) -> dict:
        """JSON-safe form (``BENCH_serve.json`` layout)."""
        return {
            "schema": _SCHEMA,
            "scenario": self.scenario,
            "seed": self.seed,
            "transport": self.transport,
            "wall_seconds": self.wall_seconds,
            "sessions": dict(self.sessions),
            "commands": dict(self.commands),
            "latency_ms": dict(self.latency_ms),
            "shed": dict(self.shed),
            "service": dict(self.service),
            "slo": dict(self.slo),
        }

    def to_json(self) -> str:
        """The report as indented JSON."""
        return json.dumps(self.to_dict(), indent=2)

    def format(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"load scenario '{self.scenario}' "
            f"(seed {self.seed}, {self.transport}) — "
            f"{self.wall_seconds:.2f} s wall",
            "",
            f"  sessions   target {self.sessions.get('target', 0)}, "
            f"admitted {self.sessions.get('admitted', 0)}, "
            f"completed {self.sessions.get('completed', 0)}, "
            f"turned away {self.sessions.get('turned_away', 0)}",
            f"  commands   {self.commands.get('measured', 0)} measured, "
            f"{self.commands.get('retries', 0)} retries, "
            f"{self.commands.get('pushes', 0)} pushes",
            f"  latency    p50 {self.latency_ms.get('p50', 0.0):.2f} ms, "
            f"p95 {self.latency_ms.get('p95', 0.0):.2f} ms, "
            f"p99 {self.latency_ms.get('p99', 0.0):.2f} ms, "
            f"max {self.latency_ms.get('max', 0.0):.2f} ms",
            f"  shed       gateway {self.shed.get('gateway', 0)} "
            f"(rate-limited {self.shed.get('rate_limited', 0)}, "
            f"queue-full {self.shed.get('queue_full', 0)}), "
            f"service {self.shed.get('service', 0)}, "
            f"client-observed {self.shed.get('client_observed', 0)}",
            f"  service    {self.service.get('reoptimizations', 0)} "
            f"re-optimizations for "
            f"{self.service.get('churn_epochs', 0)} churn epochs "
            f"(x{self.service.get('coalescing', 0.0):.1f} coalescing), "
            f"{self.service.get('degraded', 0)} degraded",
            f"  SLO        p99 <= {self.slo.get('p99_ms', 0.0):.0f} ms: "
            f"{'PASS' if self.passed else 'FAIL'}",
        ]
        return "\n".join(lines)


class _Fleet:
    """The client fleet of one run: spawns sessions on the schedule."""

    def __init__(
        self,
        scenario: LoadScenario,
        server: GatewayServer,
        seed: int,
        transport: str,
    ) -> None:
        self.scenario = scenario
        self.server = server
        self.seed = seed
        self.transport = transport
        self.recorder = _Recorder()

    async def run(self) -> None:
        """Spawn every session at its arrival offset; await them all."""
        loop = asyncio.get_running_loop()
        arrivals = self.scenario.arrival_times(self.seed)
        start = loop.time()
        tasks: list[asyncio.Task] = []
        for index, offset in enumerate(arrivals):
            delay = (start + offset) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                asyncio.ensure_future(self._session(index))
            )
        if tasks:
            await asyncio.gather(*tasks)

    def _spec(self, index: int) -> AppSpec:
        """Deterministic per-session app spec (paper's two intensities)."""
        return AppSpec(
            name=f"load-{index}",
            arithmetic_intensity=0.5 if index % 2 == 0 else 10.0,
        )

    async def _session(self, index: int) -> None:
        if self.transport == "http":
            await self._http_session(index)
        else:
            await self._tcp_session(index)

    # -- TCP sessions ---------------------------------------------------

    async def _tcp_session(self, index: int) -> None:
        scenario = self.scenario
        rec = self.recorder
        rng = random.Random((self.seed << 20) ^ index)
        host, port = self.server.tcp_address
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except (ConnectionError, OSError):
            rec.connect_failures += 1
            return
        loop = asyncio.get_running_loop()
        name = f"load-{index}"
        try:
            reply = await self._tcp_request(
                reader, writer, Register(name=name, app=self._spec(index)),
                rng,
            )
            if not isinstance(reply, Ack):
                rec.turned_away += 1
                return
            rec.admitted += 1
            for _ in range(scenario.reports_per_session):
                await asyncio.sleep(scenario.report_interval)
                await self._tcp_request(
                    reader,
                    writer,
                    ProgressReport(
                        name=name,
                        time=loop.time(),
                        cpu_load=0.5,
                    ),
                    rng,
                )
            reply = await self._tcp_request(
                reader, writer, Deregister(name=name), rng
            )
            if isinstance(reply, Ack):
                rec.completed += 1
        except (ServiceError, ConnectionError, asyncio.TimeoutError):
            rec.session_errors += 1
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _tcp_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        message,
        rng: random.Random,
    ):
        """One command with shed-retry; returns the final reply."""
        scenario = self.scenario
        rec = self.recorder
        loop = asyncio.get_running_loop()
        reply = None
        for attempt in range(scenario.max_retries + 1):
            sent = loop.time()
            writer.write(
                (encode_message(message) + "\n").encode("utf-8")
            )
            await writer.drain()
            # Not a retry loop: one iteration per stream line until the
            # in_reply_to-tagged reply arrives (pushes are buffered).
            while True:  # repro: noqa[RETRY001]
                line = await asyncio.wait_for(
                    reader.readline(), timeout=_REPLY_TIMEOUT
                )
                if not line:
                    raise ServiceError(
                        "connection closed while awaiting a reply"
                    )
                reply = decode_message(line.decode("utf-8"))
                if getattr(reply, "in_reply_to", None) is not None:
                    break
                rec.pushes += 1
            rec.record(message.TYPE, loop.time() - sent)
            if not isinstance(reply, ErrorReply):
                return reply
            rec.record_error(reply.code)
            if (
                reply.code != "overloaded"
                or attempt >= scenario.max_retries
            ):
                return reply
            rec.retries += 1
            backoff = scenario.retry_backoff * (attempt + 1)
            await asyncio.sleep(backoff * (0.5 + rng.random()))
        return reply

    # -- HTTP sessions --------------------------------------------------

    async def _http_session(self, index: int) -> None:
        scenario = self.scenario
        rec = self.recorder
        rng = random.Random((self.seed << 20) ^ index)
        loop = asyncio.get_running_loop()
        name = f"load-{index}"
        try:
            reply = await self._http_request(
                Register(name=name, app=self._spec(index)), rng
            )
            if not isinstance(reply, Ack):
                rec.turned_away += 1
                return
            rec.admitted += 1
            for _ in range(scenario.reports_per_session):
                await asyncio.sleep(scenario.report_interval)
                await self._http_request(
                    ProgressReport(
                        name=name,
                        time=loop.time(),
                        cpu_load=0.5,
                    ),
                    rng,
                )
            reply = await self._http_request(Deregister(name=name), rng)
            if isinstance(reply, Ack):
                rec.completed += 1
        except (ServiceError, ConnectionError, asyncio.TimeoutError, OSError):
            rec.session_errors += 1

    async def _http_request(self, message, rng: random.Random):
        """One command as an HTTP POST with shed-retry."""
        scenario = self.scenario
        rec = self.recorder
        loop = asyncio.get_running_loop()
        host, port = self.server.http_address
        body = encode_message(message).encode("utf-8")
        reply = None
        for attempt in range(scenario.max_retries + 1):
            sent = loop.time()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                head = (
                    f"POST /v1/command HTTP/1.1\r\n"
                    f"host: {host}:{port}\r\n"
                    f"content-type: application/json\r\n"
                    f"content-length: {len(body)}\r\n"
                    f"connection: close\r\n\r\n"
                ).encode("latin-1")
                writer.write(head + body)
                await writer.drain()
                payload = await asyncio.wait_for(
                    self._read_http_body(reader), timeout=_REPLY_TIMEOUT
                )
            finally:
                writer.close()
                with contextlib.suppress(ConnectionError, OSError):
                    await writer.wait_closed()
            reply = decode_message(payload)
            rec.record(message.TYPE, loop.time() - sent)
            if not isinstance(reply, ErrorReply):
                return reply
            rec.record_error(reply.code)
            if (
                reply.code != "overloaded"
                or attempt >= scenario.max_retries
            ):
                return reply
            rec.retries += 1
            backoff = scenario.retry_backoff * (attempt + 1)
            await asyncio.sleep(backoff * (0.5 + rng.random()))
        return reply

    @staticmethod
    async def _read_http_body(reader: asyncio.StreamReader) -> str:
        """The JSON body of one ``Connection: close`` HTTP response."""
        status_line = await reader.readline()
        if not status_line:
            raise ServiceError("connection closed before the response")
        length: int | None = None
        # Not a retry loop: one iteration per header line, ended by the
        # blank separator (or EOF).
        while True:  # repro: noqa[RETRY001]
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length is None:
            raise ServiceError("response carried no content-length")
        payload = await reader.readexactly(length)
        return payload.decode("utf-8")


async def _run_async(
    scenario: LoadScenario, seed: int, transport: str
) -> tuple[_Recorder, GatewayServer, dict]:
    """Run one scenario against an in-process gateway; returns tallies."""
    server = GatewayServer(
        scenario.service_config(),
        scenario.gateway_config(http=transport == "http"),
    )
    service = await server.start()
    fleet = _Fleet(scenario, server, seed, transport)
    try:
        await fleet.run()
        # Let the trailing debounce window fire so the last burst of
        # departures is folded into a final re-optimization.
        await asyncio.sleep(scenario.debounce * 2)
    finally:
        counters = {
            "reoptimizations": service.reoptimizations,
            "degraded": service.degraded_reoptimizations,
            "delta": service.delta_reoptimizations,
            "churn_epochs": service.registry.epoch,
            "service_shed": service.shed_commands,
            "final_sessions": len(service.registry),
        }
        await server.stop()
    return fleet.recorder, server, counters


def run_load(
    scenario_name: str,
    *,
    seed: int = 0,
    transport: str = "tcp",
    max_p99_ms: float | None = None,
) -> LoadReport:
    """Run one named scenario and report latency, sheds, and debounce.

    ``transport`` picks how sessions speak to the gateway: ``"tcp"``
    (persistent NDJSON streams, the default) or ``"http"`` (one
    HTTP/1.1 request per command through the adapter).  ``max_p99_ms``
    overrides the scenario's SLO threshold — the CI gate passes the
    committed baseline's headroom here.
    """
    scenario = LOAD_SCENARIOS.get(scenario_name)
    if scenario is None:
        raise ServiceError(
            f"unknown load scenario {scenario_name!r} "
            f"(known: {sorted(LOAD_SCENARIOS)})"
        )
    if transport not in ("tcp", "http"):
        raise ServiceError(
            f"transport must be 'tcp' or 'http', got {transport!r}"
        )
    wall_start = time.perf_counter()
    recorder, server, counters = asyncio.run(
        _run_async(scenario, seed, transport)
    )
    wall = time.perf_counter() - wall_start
    target = len(scenario.arrival_times(seed))
    lat_ms = [s * 1000.0 for s in recorder.latencies]
    if lat_ms:
        latency = {
            "count": len(lat_ms),
            "mean": sum(lat_ms) / len(lat_ms),
            "p50": percentile(lat_ms, 50),
            "p95": percentile(lat_ms, 95),
            "p99": percentile(lat_ms, 99),
            "max": max(lat_ms),
        }
    else:
        latency = {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
            "p99": 0.0, "max": 0.0,
        }
    threshold = (
        max_p99_ms if max_p99_ms is not None else scenario.slo_p99_ms
    )
    passed = (
        latency["count"] > 0
        and latency["p99"] <= threshold
        and recorder.admitted >= scenario.min_admitted
    )
    reopts = counters["reoptimizations"]
    return LoadReport(
        scenario=scenario.name,
        seed=seed,
        transport=transport,
        wall_seconds=wall,
        sessions={
            "target": target,
            "admitted": recorder.admitted,
            "completed": recorder.completed,
            "turned_away": recorder.turned_away,
            "connect_failures": recorder.connect_failures,
            "session_errors": recorder.session_errors,
        },
        commands={
            "measured": latency["count"],
            "by_type": dict(sorted(recorder.by_type.items())),
            "retries": recorder.retries,
            "pushes": recorder.pushes,
            "dispatched": server.commands,
            "http_requests": server.http_requests,
            "error_replies": dict(sorted(recorder.error_replies.items())),
        },
        latency_ms=latency,
        shed={
            "gateway": server.shed,
            "rate_limited": server.rate_limited,
            "queue_full": server.shed - server.rate_limited,
            "rejected_connections": server.rejected_connections,
            "idle_timeouts": server.idle_timeouts,
            "service": counters["service_shed"],
            "client_observed": recorder.overloaded_replies,
        },
        service={
            "reoptimizations": reopts,
            "degraded": counters["degraded"],
            "delta": counters["delta"],
            "churn_epochs": counters["churn_epochs"],
            "coalescing": (
                counters["churn_epochs"] / reopts if reopts else 0.0
            ),
            "final_sessions": counters["final_sessions"],
        },
        slo={
            "p99_ms": threshold,
            "latency_p99_ms": latency["p99"],
            "min_admitted": scenario.min_admitted,
            "passed": passed,
        },
    )
