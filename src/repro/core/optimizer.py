"""Search for good thread allocations under the analytic model.

The paper argues ("There are many other ways to partition the machine...")
that picking the right partition matters — the Tables I/II workload spans
254 vs 140 vs 128 GFLOPS across three natural choices.  This module
provides the search machinery a resource arbiter would use:

* :class:`ExhaustiveSearch` over the node-symmetric subspace (ground truth
  for small machines; the symmetric space for 8 cores / 4 apps has only
  165 points),
* :class:`GreedySearch` — build the allocation one thread at a time, always
  adding where the model says the marginal GFLOPS gain is largest,
* :class:`HillClimbSearch` — local search over single-thread moves between
  apps (optionally asymmetric across nodes),
* :class:`AnnealingSearch` — simulated annealing over the full asymmetric
  space, able to escape the local optima hill climbing gets stuck in.

All searches also support an *objective* other than total GFLOPS, e.g.
weighted throughput or max-min fairness, since a real arbiter rarely
optimises raw FLOP/s alone.

Candidate enumeration is delegated to
:class:`~repro.core.candidates.CandidateSpace`, the shared layer that
also powers the incremental churn-time searcher in
:mod:`repro.core.delta`; the enumeration orders are pinned there (and
by ``tests/test_core_candidates.py``), which is what lets the batched
paths below pick winners with a plain ``argmax``.

Fast path
---------
Every search drives the batched evaluation engine
(:mod:`repro.core.fasteval`) when it can: exhaustive search scores its
whole symmetric space in one
:meth:`~repro.core.model.NumaPerformanceModel.predict_scores` call,
greedy and hill climbing batch each round's candidate set, and annealing
funnels its single proposals through the memo cache.  The fast path is
only taken when the objective carries a ``batched`` form (the built-in
objectives all do); custom objectives over full
:class:`~repro.core.model.Prediction` objects transparently fall back to
the scalar reference path, as does ``use_fast=False``.  Either way the
returned :class:`SearchResult` carries a ground-truth prediction and
score computed by the scalar model on the winning allocation, and the
candidate enumeration order is identical, so the deterministic searches
return the same winner (ties and all) as the reference path (annealing
may diverge on exact ties; see its docstring).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.allocation import ThreadAllocation
from repro.core.candidates import CandidateSpace
from repro.core.fasteval import FastEvaluator
from repro.core.model import NumaPerformanceModel, Prediction
from repro.core.spec import AppSpec
from repro.errors import AllocationError, ModelError
from repro.machine.topology import MachineTopology
from repro.obs import OBS, CounterHandle, GaugeHandle

__all__ = [
    "Objective",
    "OptimizerConfig",
    "total_gflops",
    "weighted_gflops",
    "min_app_gflops",
    "SearchResult",
    "ExhaustiveSearch",
    "GreedySearch",
    "HillClimbSearch",
    "AnnealingSearch",
]

#: An objective maps a model prediction to a scalar score (higher = better).
#: Carrying a ``batched`` attribute — ``(app_gflops (B, A), apps) -> (B,)``
#: — additionally opts the objective into the searches' fast path.
Objective = Callable[[Prediction], float]

# Metric handles hoisted out of the search inner loops (PERF001): resolved
# against the live registry on first use, re-resolved only when obs is
# re-enabled with a fresh registry.
_EVALUATIONS = CounterHandle("optimizer/evaluations")
_BEST_SCORE = GaugeHandle("optimizer/best_score")


def total_gflops(prediction: Prediction) -> float:
    """Default objective: machine-wide achieved GFLOPS."""
    return prediction.total_gflops


def _total_gflops_batched(
    app_gflops: np.ndarray, apps: Sequence[AppSpec]
) -> np.ndarray:
    return app_gflops.sum(axis=1)


total_gflops.batched = _total_gflops_batched


def weighted_gflops(weights: dict[str, float]) -> Objective:
    """Objective factory: weighted sum of per-app GFLOPS.

    Lets an arbiter encode priorities (e.g. the interactive component
    counts double).  Apps not named in ``weights`` count with weight 1;
    extra names are ignored.
    """

    def objective(prediction: Prediction) -> float:
        return sum(
            weights.get(a.name, 1.0) * a.gflops for a in prediction.apps
        )

    def batched(
        app_gflops: np.ndarray, apps: Sequence[AppSpec]
    ) -> np.ndarray:
        w = np.array([weights.get(a.name, 1.0) for a in apps])
        return app_gflops @ w

    objective.batched = batched
    return objective


def min_app_gflops(prediction: Prediction) -> float:
    """Max-min fairness objective: the worst-off application's GFLOPS."""
    return min(a.gflops for a in prediction.apps)


def _min_app_gflops_batched(
    app_gflops: np.ndarray, apps: Sequence[AppSpec]
) -> np.ndarray:
    return app_gflops.min(axis=1)


min_app_gflops.batched = _min_app_gflops_batched


@dataclass(frozen=True)
class OptimizerConfig:
    """Search-wide knobs shared by every optimizer.

    A single value the serve layer (and tests) can thread through all
    searches instead of repeating keyword arguments.  Every search
    accepts ``config=`` plus per-call overrides; an explicit keyword
    always wins over the config value.

    Attributes
    ----------
    use_fast:
        Drive the batched evaluation engine when the objective supports
        it (default).  ``False`` forces the scalar reference path.
    workers:
        Process count for big score batches (:mod:`repro.core.
        parallel`).  ``None`` leaves the model's setting alone (which
        defaults to the ``REPRO_WORKERS`` environment variable); ``0``
        forces serial scoring.  Search results are byte-identical for
        every worker count.
    parallel_min_batch:
        Smallest batch routed through the worker pool; ``None`` keeps
        the model's threshold
        (:data:`repro.core.parallel.DEFAULT_MIN_BATCH`).
    """

    use_fast: bool = True
    workers: int | None = None
    parallel_min_batch: int | None = None


@dataclass(frozen=True)
class SearchResult:
    """Outcome of an allocation search."""

    allocation: ThreadAllocation
    prediction: Prediction
    score: float
    evaluations: int
    trajectory: tuple[float, ...] = ()

    def __str__(self) -> str:
        return (
            f"SearchResult(score={self.score:.3f}, "
            f"evaluations={self.evaluations}, "
            f"allocation={self.allocation})"
        )


class _SearchBase:
    """Shared plumbing: model evaluation with counting.

    Every search is instrumented through :mod:`repro.obs` when enabled:
    one span per :meth:`search` call (``optimizer/<search>``), the
    ``optimizer/evaluations`` counter per candidate scored (batched
    evaluations count each candidate in the batch), and the
    ``optimizer/best_score`` gauge set to the returned score.
    """

    #: span name suffix; subclasses override (``optimizer/<span_name>``)
    span_name = "search"

    def __init__(
        self,
        model: NumaPerformanceModel | None = None,
        objective: Objective = total_gflops,
        *,
        use_fast: bool | None = None,
        workers: int | None = None,
        config: OptimizerConfig | None = None,
    ) -> None:
        self.config = config or OptimizerConfig()
        self.model = model or NumaPerformanceModel()
        self.objective = objective
        self.use_fast = (
            self.config.use_fast if use_fast is None else use_fast
        )
        workers = self.config.workers if workers is None else workers
        if workers is not None:
            self.model.set_workers(
                workers, min_batch=self.config.parallel_min_batch
            )
        self._evaluations = 0

    def _score(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        allocation: ThreadAllocation,
    ) -> tuple[float, Prediction]:
        self._evaluations += 1
        if OBS.enabled:
            _EVALUATIONS.add()
        prediction = self.model.predict(machine, apps, allocation)
        return self.objective(prediction), prediction

    def _evaluator(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> FastEvaluator | None:
        """The batched evaluator, or ``None`` → take the scalar path."""
        if not self.use_fast:
            return None
        return FastEvaluator.create(
            self.model, machine, apps, self.objective
        )

    def _space(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> CandidateSpace:
        """The shared candidate/move enumerator for this workload size."""
        return CandidateSpace(machine, len(apps))

    def _score_batch(
        self, evaluator: FastEvaluator, counts: np.ndarray
    ) -> np.ndarray:
        """Objective score of each ``(B, A, N)`` candidate, counted."""
        scores = evaluator.scores(counts)
        self._evaluations += len(scores)
        if OBS.enabled:
            _EVALUATIONS.add(len(scores))
        return scores

    def _exact(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        allocation: ThreadAllocation,
    ) -> tuple[float, Prediction]:
        """Ground-truth (score, prediction) of the winning allocation.

        Runs the scalar reference model so the returned
        :class:`SearchResult` is bit-identical to the scalar path's.  Not
        counted as a search evaluation.
        """
        prediction = self.model.predict(machine, apps, allocation)
        return self.objective(prediction), prediction

    def _span(self, machine: MachineTopology, apps: Sequence[AppSpec]):
        """Open the per-search span (a no-op context manager when off)."""
        return OBS.tracer.span(
            f"optimizer/{self.span_name}",
            machine=machine.name,
            apps=len(apps),
        )

    def _finish(self, span, result: SearchResult) -> SearchResult:
        """Annotate the search span and publish the best-score gauge."""
        if OBS.enabled:
            span.attrs["score"] = result.score
            span.attrs["evaluations"] = result.evaluations
            _BEST_SCORE.set(result.score)
        return result


class ExhaustiveSearch(_SearchBase):
    """Evaluate every node-symmetric allocation; exact in that subspace.

    Parameters
    ----------
    require_full:
        Whether every core must be occupied.  Allowing idle cores enlarges
        the space but can win when all applications are memory bound.
    use_fast:
        Score the whole space in one batched model call when the
        objective supports it (default).  ``False`` forces the scalar
        reference path.
    """

    span_name = "exhaustive"

    def __init__(
        self,
        model: NumaPerformanceModel | None = None,
        objective: Objective = total_gflops,
        *,
        require_full: bool = True,
        use_fast: bool | None = None,
        workers: int | None = None,
        config: OptimizerConfig | None = None,
    ) -> None:
        super().__init__(
            model, objective, use_fast=use_fast, workers=workers,
            config=config,
        )
        self.require_full = require_full

    def search(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> SearchResult:
        """Return the best symmetric allocation."""
        with self._span(machine, apps) as span:
            return self._finish(span, self._run(machine, apps))

    def _run(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> SearchResult:
        self._evaluations = 0
        evaluator = self._evaluator(machine, apps)
        if evaluator is not None:
            return self._run_batched(machine, apps, evaluator)
        best: tuple[float, ThreadAllocation, Prediction] | None = None
        for alloc in self._space(machine, apps).symmetric_allocations(
            apps, require_full=self.require_full
        ):
            score, pred = self._score(machine, apps, alloc)
            if best is None or score > best[0]:
                best = (score, alloc, pred)
        if best is None:
            raise AllocationError("empty search space")
        return SearchResult(
            allocation=best[1],
            prediction=best[2],
            score=best[0],
            evaluations=self._evaluations,
        )

    def _run_batched(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        evaluator: FastEvaluator,
    ) -> SearchResult:
        counts = self._space(machine, apps).symmetric_tensor(
            require_full=self.require_full
        )
        if len(counts) == 0:
            raise AllocationError("empty search space")
        scores = self._score_batch(evaluator, counts)
        # argmax returns the first maximum — the same candidate the
        # scalar loop's strict ">" keeps, since the tensor rows follow
        # the same enumeration order as symmetric_allocations.
        best = int(np.argmax(scores))
        allocation = ThreadAllocation(
            app_names=tuple(a.name for a in apps),
            counts=counts[best].copy(),
        )
        score, prediction = self._exact(machine, apps, allocation)
        return SearchResult(
            allocation=allocation,
            prediction=prediction,
            score=score,
            evaluations=self._evaluations,
        )


class GreedySearch(_SearchBase):
    """Add one thread at a time where the marginal objective gain is best.

    Starts from the empty allocation and performs
    ``sum(cores per node)`` rounds; each round tries every (app, node)
    placement with a free core and keeps the best.  Runs in
    ``O(total_cores * apps * nodes)`` model evaluations and may place
    different compositions on different nodes (unlike
    :class:`ExhaustiveSearch`).  Stops early if every possible addition
    lowers the objective (only possible with non-throughput objectives or
    contention-heavy workloads).  With a batchable objective each round's
    candidate set is scored in one model call.
    """

    span_name = "greedy"

    def search(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> SearchResult:
        """Greedily build an allocation."""
        with self._span(machine, apps) as span:
            return self._finish(span, self._run(machine, apps))

    def _run(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> SearchResult:
        self._evaluations = 0
        evaluator = self._evaluator(machine, apps)
        if evaluator is not None:
            return self._run_batched(machine, apps, evaluator)
        names = tuple(a.name for a in apps)
        space = self._space(machine, apps)
        counts = np.zeros((len(apps), machine.num_nodes), dtype=np.int64)
        free = np.array([n.num_cores for n in machine.nodes], dtype=np.int64)
        current_score = -math.inf
        best_pred: Prediction | None = None
        trajectory: list[float] = []
        while free.sum() > 0:
            best_step: tuple[float, int, int, Prediction] | None = None
            for a, n in space.addition_moves(free):
                counts[a, n] += 1
                alloc = ThreadAllocation(
                    app_names=names, counts=counts.copy()
                )
                score, pred = self._score(machine, apps, alloc)
                counts[a, n] -= 1
                if best_step is None or score > best_step[0]:
                    best_step = (score, a, n, pred)
            if best_step is None:
                break
            score, a, n, pred = best_step
            if score < current_score - 1e-12:
                break  # every addition hurts; stop with idle cores
            counts[a, n] += 1
            free[n] -= 1
            current_score = score
            best_pred = pred
            trajectory.append(score)
        if best_pred is None:
            raise AllocationError("greedy search placed no threads")
        return SearchResult(
            # Copy: `counts` is this method's scratch buffer, and the
            # result must not be a window onto it.
            allocation=ThreadAllocation(app_names=names, counts=counts.copy()),
            prediction=best_pred,
            score=current_score,
            evaluations=self._evaluations,
            trajectory=tuple(trajectory),
        )

    def _run_batched(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        evaluator: FastEvaluator,
    ) -> SearchResult:
        names = tuple(a.name for a in apps)
        space = self._space(machine, apps)
        counts = np.zeros((len(apps), machine.num_nodes), dtype=np.int64)
        free = np.array([n.num_cores for n in machine.nodes], dtype=np.int64)
        current_score = -math.inf
        placed = False
        trajectory: list[float] = []
        while free.sum() > 0:
            # Candidate additions in the scalar loop's (app, node) order.
            moves = space.addition_moves(free)
            if not moves:
                break
            scores = self._score_batch(
                evaluator, space.addition_batch(counts, moves)
            )
            k = int(np.argmax(scores))
            score = float(scores[k])
            if score < current_score - 1e-12:
                break  # every addition hurts; stop with idle cores
            a, n = moves[k]
            counts[a, n] += 1
            free[n] -= 1
            current_score = score
            placed = True
            trajectory.append(score)
        if not placed:
            raise AllocationError("greedy search placed no threads")
        allocation = ThreadAllocation(app_names=names, counts=counts.copy())
        score, prediction = self._exact(machine, apps, allocation)
        return SearchResult(
            allocation=allocation,
            prediction=prediction,
            score=score,
            evaluations=self._evaluations,
            trajectory=tuple(trajectory),
        )


class HillClimbSearch(_SearchBase):
    """Steepest-ascent local search over single-thread moves.

    A move takes one thread of one app on one node and gives it to another
    app on the same node (the machine stays fully utilised).  Terminates at
    a local optimum of the move neighbourhood.  With a batchable objective
    the whole neighbourhood of each round is scored in one model call.
    """

    span_name = "hillclimb"

    def __init__(
        self,
        model: NumaPerformanceModel | None = None,
        objective: Objective = total_gflops,
        *,
        max_rounds: int = 1000,
        use_fast: bool | None = None,
        workers: int | None = None,
        config: OptimizerConfig | None = None,
    ) -> None:
        super().__init__(
            model, objective, use_fast=use_fast, workers=workers,
            config=config,
        )
        self.max_rounds = max_rounds

    def search(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        start: ThreadAllocation | None = None,
    ) -> SearchResult:
        """Climb from ``start`` (default: even share with leftovers)."""
        with self._span(machine, apps) as span:
            return self._finish(span, self._run(machine, apps, start))

    def _run(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        start: ThreadAllocation | None = None,
    ) -> SearchResult:
        self._evaluations = 0
        if start is None:
            from repro.core.policies import EvenSharePolicy

            start = EvenSharePolicy(distribute_leftover=True).allocate(
                machine, apps
            )
        start.validate(machine)
        evaluator = self._evaluator(machine, apps)
        if evaluator is not None:
            return self._run_batched(machine, apps, start, evaluator)
        current = start
        names = current.app_names
        space = self._space(machine, apps)
        score, pred = self._score(machine, apps, current)
        trajectory = [score]
        for _ in range(self.max_rounds):
            best_move: tuple[float, ThreadAllocation, Prediction] | None = None
            for si, di, n in space.thread_moves(current.counts):
                cand = current.move_thread(names[si], names[di], n)
                s, p = self._score(machine, apps, cand)
                if best_move is None or s > best_move[0]:
                    best_move = (s, cand, p)
            if best_move is None or best_move[0] <= score + 1e-12:
                break
            score, current, pred = best_move
            trajectory.append(score)
        return SearchResult(
            allocation=current,
            prediction=pred,
            score=score,
            evaluations=self._evaluations,
            trajectory=tuple(trajectory),
        )

    def _run_batched(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        start: ThreadAllocation,
        evaluator: FastEvaluator,
    ) -> SearchResult:
        names = start.app_names
        current = start
        space = self._space(machine, apps)
        score = float(self._score_batch(evaluator, current.counts[None])[0])
        trajectory = [score]
        for _ in range(self.max_rounds):
            # Neighbourhood in the scalar loop's (src, dst, node) order.
            moves = space.thread_moves(current.counts)
            if not moves:
                break
            batch = space.move_batch(current.counts, moves)
            scores = self._score_batch(evaluator, batch)
            k = int(np.argmax(scores))
            if scores[k] <= score + 1e-12:
                break
            current = ThreadAllocation(
                app_names=names, counts=batch[k].copy()
            )
            score = float(scores[k])
            trajectory.append(score)
        final_score, prediction = self._exact(machine, apps, current)
        return SearchResult(
            allocation=current,
            prediction=prediction,
            score=final_score,
            evaluations=self._evaluations,
            trajectory=tuple(trajectory),
        )


class AnnealingSearch(_SearchBase):
    """Simulated annealing over single-thread moves.

    Same neighbourhood as :class:`HillClimbSearch` but accepts worsening
    moves with probability ``exp(delta / T)`` under a geometric cooling
    schedule, so it can cross the valleys between symmetric optima.
    Deterministic for a fixed ``seed``.

    Annealing's proposals are inherently sequential (each depends on the
    previous accept/reject draw), so the fast path scores them one at a
    time through the model's memo cache rather than batching — revisited
    allocations, which dominate late in the cooling schedule, cost a
    dict lookup instead of a model evaluation.  Each path is
    deterministic for a fixed seed, but the two paths may walk different
    (equally valid) trajectories: when two allocations tie exactly, the
    1e-14-scale rounding difference between scalar and vectorised
    arithmetic can flip the ``delta >= 0`` shortcut and desynchronise
    the rng stream.
    """

    span_name = "annealing"

    def __init__(
        self,
        model: NumaPerformanceModel | None = None,
        objective: Objective = total_gflops,
        *,
        steps: int = 2000,
        initial_temperature: float = 5.0,
        cooling: float = 0.995,
        seed: int = 0,
        use_fast: bool | None = None,
        workers: int | None = None,
        config: OptimizerConfig | None = None,
    ) -> None:
        super().__init__(
            model, objective, use_fast=use_fast, workers=workers,
            config=config,
        )
        if steps <= 0:
            raise ModelError(f"steps must be positive, got {steps}")
        if not 0 < cooling < 1:
            raise ModelError(f"cooling must be in (0,1), got {cooling}")
        self.steps = steps
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed

    def search(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        start: ThreadAllocation | None = None,
    ) -> SearchResult:
        """Anneal from ``start`` (default: even share with leftovers)."""
        with self._span(machine, apps) as span:
            return self._finish(span, self._run(machine, apps, start))

    def _run(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        start: ThreadAllocation | None = None,
    ) -> SearchResult:
        self._evaluations = 0
        rng = np.random.default_rng(self.seed)
        if start is None:
            from repro.core.policies import EvenSharePolicy

            start = EvenSharePolicy(distribute_leftover=True).allocate(
                machine, apps
            )
        start.validate(machine)
        evaluator = self._evaluator(machine, apps)
        if evaluator is not None:
            return self._run_cached(machine, apps, start, evaluator, rng)
        current = start
        space = self._space(machine, apps)
        score, pred = self._score(machine, apps, current)
        best = (score, current, pred)
        temperature = self.initial_temperature
        trajectory = [score]
        names = current.app_names
        for _ in range(self.steps):
            # Propose a random legal single-thread move.
            move = space.random_move(current.counts, rng)
            if move is None:
                break
            ai, dj, n = move
            cand = current.move_thread(names[ai], names[dj], n)
            s, p = self._score(machine, apps, cand)
            delta = s - score
            if delta >= 0 or rng.random() < math.exp(delta / temperature):
                current, score, pred = cand, s, p
                if score > best[0]:
                    best = (score, current, pred)
            temperature = max(temperature * self.cooling, 1e-6)
            trajectory.append(score)
        return SearchResult(
            allocation=best[1],
            prediction=best[2],
            score=best[0],
            evaluations=self._evaluations,
            trajectory=tuple(trajectory),
        )

    def _run_cached(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        start: ThreadAllocation,
        evaluator: FastEvaluator,
        rng: np.random.Generator,
    ) -> SearchResult:
        current = start
        space = self._space(machine, apps)
        score = float(self._score_batch(evaluator, current.counts[None])[0])
        best = (score, current)
        temperature = self.initial_temperature
        trajectory = [score]
        names = current.app_names
        for _ in range(self.steps):
            # Propose a random legal single-thread move (same rng draw
            # sequence as the scalar path, modulo exact-tie divergence —
            # see the class docstring).
            move = space.random_move(current.counts, rng)
            if move is None:
                break
            ai, dj, n = move
            cand = current.move_thread(names[ai], names[dj], n)
            s = float(self._score_batch(evaluator, cand.counts[None])[0])
            delta = s - score
            if delta >= 0 or rng.random() < math.exp(delta / temperature):
                current, score = cand, s
                if score > best[0]:
                    best = (score, current)
            temperature = max(temperature * self.cooling, 1e-6)
            trajectory.append(score)
        final_score, prediction = self._exact(machine, apps, best[1])
        return SearchResult(
            allocation=best[1],
            prediction=prediction,
            score=final_score,
            evaluations=self._evaluations,
            trajectory=tuple(trajectory),
        )
