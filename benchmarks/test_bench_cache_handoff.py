"""Section II's tightest integration: cache handoff between applications.

"with even tighter integration, we might be able to not just move the
threads, but also make sure that the core that wrote the data ... also
starts processing the data inside the other application, enabling cache
reuse."
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_cache_handoff


def test_bench_cache_handoff(benchmark):
    res = benchmark.pedantic(run_cache_handoff, rounds=1, iterations=1)
    emit(
        "Producer->consumer cache handoff (Section II tight integration)",
        render_table(
            ["configuration", "completion time [s]"],
            [
                ["handoff (co-located + warm LLC)", res.handoff_time],
                [
                    "co-located, cache model off",
                    res.colocated_no_cache_time,
                ],
                ["separate nodes", res.separate_nodes_time],
            ],
        )
        + f"\nconsumer LLC hit rate: {res.cache_hit_rate * 100:.0f}%"
        f"\ncache-only speedup {res.cache_speedup:.2f}x, "
        f"total {res.total_speedup:.2f}x",
    )
    assert res.cache_speedup > 1.2
    assert res.total_speedup > 2.0
