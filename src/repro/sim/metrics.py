"""Lightweight instrumentation primitives for the simulator.

Experiments need three things: counters (tasks executed, context
switches), gauges sampled over time (threads running, bandwidth in use),
and accumulators integrating a rate over time (FLOPs executed).  All three
store plain Python floats and convert to NumPy arrays only on demand, so
recording stays O(1) per sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import SimulationError

__all__ = ["Counter", "TimeSeries", "RateIntegrator", "MetricSet"]


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise SimulationError(
                f"counter '{self.name}' cannot decrease (amount={amount})"
            )
        self.value += amount


@dataclass
class TimeSeries:
    """Timestamped samples of a gauge."""

    name: str
    _times: list[float] = field(default_factory=list)
    _values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self._times and time < self._times[-1] - 1e-12:
            raise SimulationError(
                f"time series '{self.name}': sample at {time} after "
                f"{self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps as an array."""
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array."""
        return np.asarray(self._values)

    @property
    def last(self) -> float:
        """Most recent value."""
        if not self._values:
            raise SimulationError(f"time series '{self.name}' is empty")
        return self._values[-1]

    def mean(self) -> float:
        """Time-weighted mean of the series (trapezoid-free: step-wise).

        Each sample's value is assumed to hold until the next sample.  The
        final sample gets zero weight (its holding interval is unknown), so
        a series needs at least two samples.
        """
        if len(self._times) < 2:
            raise SimulationError(
                f"time series '{self.name}' needs >= 2 samples for a mean"
            )
        t = self.times
        v = self.values
        dt = np.diff(t)
        span = t[-1] - t[0]
        if span <= 0:
            return float(v[:-1].mean())
        return float((v[:-1] * dt).sum() / span)

    def max(self) -> float:
        """Largest sample value."""
        if not self._values:
            raise SimulationError(f"time series '{self.name}' is empty")
        return float(np.max(self._values))


@dataclass
class RateIntegrator:
    """Integrates a piecewise-constant rate into a total.

    Used for FLOPs (integrate GFLOPS over seconds) and bytes moved
    (integrate GB/s).
    """

    name: str
    total: float = 0.0
    _last_time: float | None = None

    def accumulate(self, start: float, end: float, rate: float) -> None:
        """Add ``rate * (end - start)`` to the total."""
        if end < start:
            raise SimulationError(
                f"integrator '{self.name}': end {end} before start {start}"
            )
        if rate < 0:
            raise SimulationError(
                f"integrator '{self.name}': negative rate {rate}"
            )
        self.total += rate * (end - start)
        self._last_time = end

    def average_rate(self, duration: float) -> float:
        """Total divided by ``duration`` (e.g. achieved GFLOPS)."""
        if duration <= 0:
            raise SimulationError(
                f"integrator '{self.name}': non-positive duration {duration}"
            )
        return self.total / duration


class MetricSet:
    """A named registry of metrics, auto-creating on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._series: dict[str, TimeSeries] = {}
        self._integrators: dict[str, RateIntegrator] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def series(self, name: str) -> TimeSeries:
        """Get or create the time series ``name``."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def integrator(self, name: str) -> RateIntegrator:
        """Get or create the rate integrator ``name``."""
        if name not in self._integrators:
            self._integrators[name] = RateIntegrator(name)
        return self._integrators[name]

    def counters(self) -> Iterator[Counter]:
        """All counters, in creation order."""
        return iter(self._counters.values())

    def snapshot(self) -> dict[str, float]:
        """Flat dict of counter values and integrator totals."""
        out: dict[str, float] = {}
        for c in self._counters.values():
            out[f"counter/{c.name}"] = c.value
        for i in self._integrators.values():
            out[f"total/{i.name}"] = i.total
        return out
