"""Floating-point comparison discipline.

Every quantity the model trades in — GFLOPS, GB/s, arithmetic
intensity — is a float produced by division and water-filling, so exact
``==`` against a float literal is almost always a latent bug: the
worked examples only pass because the paper's numbers happen to be
exactly representable.  Comparisons belong on ``math.isclose`` /
``numpy.isclose`` / ``pytest.approx`` with an explicit tolerance.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register,
)

__all__ = ["FloatEquality"]


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # A negated literal parses as UnaryOp(USub, Constant).
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


def _is_float_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    )


@register
class FloatEquality(Rule):
    """``x == 1.5`` on model quantities; use an explicit tolerance."""

    rule_id = "FLT001"
    severity = Severity.ERROR
    summary = (
        "exact ==/!= against a float; use math.isclose / np.isclose / "
        "pytest.approx with an explicit tolerance"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands, operands[1:]
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(
                    _is_float_literal(side) or _is_float_call(side)
                    for side in (left, right)
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "exact float equality; rounding in the model's "
                        "arithmetic makes this comparison fragile",
                    )
                    break
