"""Concurrency-discipline rules: lock acquisition and span lifetimes.

The observability layer (:mod:`repro.obs`) and the thread-pool-shaped
runtime code both rely on two idioms this module enforces statically:

* locks are held via ``with`` (or an ``acquire`` immediately protected
  by ``try/finally: release``) so an exception can never leave a lock
  held — :class:`BareLockAcquire`;
* tracer spans are opened through their context manager (or explicitly
  paired with ``finish``) so the span buffer never accumulates
  unterminated spans — :class:`SpanWithoutWith` and
  :class:`StartWithoutFinish`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register,
)

__all__ = ["BareLockAcquire", "SpanWithoutWith", "StartWithoutFinish"]


def _receiver_name(node: ast.expr) -> str:
    """Best-effort dotted name of a call receiver (``self._lock`` etc.)."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    return ".".join(reversed(parts))


def _is_lockish(node: ast.expr) -> bool:
    """Does this expression look like a lock?

    Either its dotted name mentions ``lock``/``mutex``/``sem``, or it is
    a direct ``threading.Lock()``-style constructor call (acquiring a
    freshly constructed lock is *always* a bug — nobody can release it).
    """
    if isinstance(node, ast.Call):
        callee = _receiver_name(node.func).lower()
        return callee.rsplit(".", 1)[-1] in {
            "lock",
            "rlock",
            "semaphore",
            "boundedsemaphore",
        }
    name = _receiver_name(node).lower()
    leaf = name.rsplit(".", 1)[-1]
    return any(tag in leaf for tag in ("lock", "mutex", "sem"))


def _statement_of(ctx: FileContext, node: ast.AST) -> ast.stmt | None:
    """The innermost statement containing ``node``."""
    current: ast.AST | None = node
    while current is not None and not isinstance(current, ast.stmt):
        current = getattr(current, "parent", None)
    return current


def _next_sibling(stmt: ast.stmt) -> ast.stmt | None:
    """The statement following ``stmt`` in its enclosing body, if any."""
    parent = getattr(stmt, "parent", None)
    if parent is None:
        return None
    for field in ("body", "orelse", "finalbody", "handlers"):
        body = getattr(parent, field, None)
        if isinstance(body, list) and stmt in body:
            idx = body.index(stmt)
            return body[idx + 1] if idx + 1 < len(body) else None
    return None


def _releases(tree: ast.AST, receiver: str) -> bool:
    """Does ``tree`` contain a ``<receiver>.release()`` call?"""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
            and _receiver_name(node.func.value) == receiver
        ):
            return True
    return False


@register
class BareLockAcquire(Rule):
    """``lock.acquire()`` outside ``with`` / ``try-finally: release``."""

    rule_id = "LOCK001"
    severity = Severity.ERROR
    summary = (
        "lock acquired without `with` or a try/finally release "
        "(exception leaves the lock held)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and _is_lockish(node.func.value)
            ):
                continue
            if isinstance(node.func.value, ast.Call):
                yield self.violation(
                    ctx,
                    node,
                    "acquire() on a freshly constructed lock can never "
                    "be released; store the lock and use `with`",
                )
                continue
            receiver = _receiver_name(node.func.value)
            if self._protected(ctx, node, receiver):
                continue
            yield self.violation(
                ctx,
                node,
                f"`{receiver}.acquire()` without `with {receiver}:` or a "
                f"try/finally releasing it",
            )

    @staticmethod
    def _protected(
        ctx: FileContext, call: ast.Call, receiver: str
    ) -> bool:
        # Pattern A: the acquire happens inside a try whose finally
        # releases the same receiver (acquire-inside-try).
        for anc in ctx.parents(call):
            if isinstance(anc, ast.Try) and any(
                _releases(stmt, receiver) for stmt in anc.finalbody
            ):
                return True
        # Pattern B: ``lock.acquire()`` immediately followed by such a
        # try (acquire-before-try, the canonical pre-3.0 idiom).
        stmt = _statement_of(ctx, call)
        if stmt is not None:
            sibling = _next_sibling(stmt)
            if isinstance(sibling, ast.Try) and any(
                _releases(s, receiver) for s in sibling.finalbody
            ):
                return True
        # Pattern C: non-blocking probe — the result is consumed
        # (``if lock.acquire(blocking=False):``), which is a protocol,
        # not a leak; the branch owns the release discipline.
        parent = getattr(call, "parent", None)
        if not isinstance(parent, ast.Expr) and any(
            kw.arg == "blocking" for kw in call.keywords
        ):
            return True
        return False


def _is_tracerish(node: ast.expr) -> bool:
    """Does the receiver look like a span tracer (``OBS.tracer`` etc.)?"""
    name = _receiver_name(node).lower()
    leaf = name.rsplit(".", 1)[-1]
    return "tracer" in leaf or leaf == "obs"


@register
class SpanWithoutWith(Rule):
    """``tracer.span(...)`` not used as a context manager."""

    rule_id = "OBS001"
    severity = Severity.ERROR
    summary = (
        "tracer.span() result must enter a `with` block (or be "
        "returned to a caller that does)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and _is_tracerish(node.func.value)
            ):
                continue
            parent = getattr(node, "parent", None)
            if isinstance(parent, ast.withitem):
                continue
            if isinstance(parent, ast.Return):
                continue  # delegating the context manager to the caller
            yield self.violation(
                ctx,
                node,
                "span() returns a context manager; use "
                "`with tracer.span(...):` so the span always closes",
            )


@register
class StartWithoutFinish(Rule):
    """``tracer.start(...)`` with no ``finish`` in the same scope."""

    rule_id = "OBS002"
    severity = Severity.WARNING
    summary = (
        "manually started span has no matching finish() in the "
        "enclosing function or class"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "start"
                and _is_tracerish(node.func.value)
            ):
                continue
            scope: ast.AST | None = ctx.enclosing_function(node)
            if scope is not None and self._finishes(scope):
                continue
            scope = ctx.enclosing_class(node)
            if scope is None:
                scope = ctx.tree
            if self._finishes(scope):
                continue
            yield self.violation(
                ctx,
                node,
                "span started with start() but never finish()ed in "
                "this scope; prefer `with tracer.span(...):`",
            )

    @staticmethod
    def _finishes(scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "finish"
            ):
                return True
        return False
