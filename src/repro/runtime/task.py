"""Tasks: the unit of work scheduled by the runtime systems.

Tasks follow the OCR lifecycle: *created* with a number of unsatisfied
pre-slots, *ready* once all pre-slots are satisfied, *running* on a worker
thread, *finished* when their work completes (firing their output event).
The paper's central premise is that "by decoupling the work (tasks) from
the processing units (CPU cores), these runtime systems get much more
flexibility" — tasks never block and never migrate mid-execution, which is
what lets the runtime suspend worker threads at task boundaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import DependencyError, TaskError
from repro.runtime.datablock import AccessMode, Datablock, traffic_fractions
from repro.runtime.events import Event, OnceEvent

__all__ = ["TaskState", "Task"]


class TaskState(enum.Enum):
    """Lifecycle of a task."""

    WAITING = "waiting"  #: has unsatisfied pre-slots
    READY = "ready"  #: schedulable
    RUNNING = "running"  #: executing on a worker
    FINISHED = "finished"  #: done; output event fired


class Task:
    """One task.

    Parameters
    ----------
    name:
        Identifier for traces.
    flops:
        Work volume in GFLOP.
    arithmetic_intensity:
        FLOPs per byte of this task's kernel.
    datablocks:
        Blocks the task acquires while running; their home nodes determine
        where its memory traffic goes.  Empty means node-local traffic
        (the NUMA-perfect idealisation).
    affinity_node:
        Scheduling hint: prefer running on this NUMA node.  Defaults to
        the largest datablock's home, or ``None``.
    on_finish:
        Callback run (on the runtime's control path) after completion —
        OCR-style dynamic task graphs create successor tasks here.
    tied_to:
        Worker name this task must run on (models OpenMP *tied* tasks;
        ``None`` for the normal untied case).
    """

    _next_id = 0

    def __init__(
        self,
        name: str,
        flops: float,
        arithmetic_intensity: float,
        *,
        datablocks: list[Datablock] | None = None,
        access_modes: list[AccessMode] | None = None,
        affinity_node: int | None = None,
        on_finish: Callable[["Task"], None] | None = None,
        tied_to: str | None = None,
    ) -> None:
        if flops <= 0:
            raise TaskError(f"task '{name}': flops must be positive")
        if arithmetic_intensity <= 0:
            raise TaskError(f"task '{name}': AI must be positive")
        self.task_id = Task._next_id
        Task._next_id += 1
        self.name = name or f"task-{self.task_id}"
        self.flops = float(flops)
        self.arithmetic_intensity = float(arithmetic_intensity)
        self.datablocks = list(datablocks or [])
        if access_modes is None:
            access_modes = [AccessMode.READ_ONLY] * len(self.datablocks)
        if len(access_modes) != len(self.datablocks):
            raise TaskError(
                f"task '{name}': {len(access_modes)} access modes for "
                f"{len(self.datablocks)} datablocks"
            )
        self.access_modes = access_modes
        if affinity_node is None and self.datablocks:
            biggest = max(self.datablocks, key=lambda db: db.size_bytes)
            affinity_node = biggest.home_node
        self.affinity_node = affinity_node
        self.on_finish = on_finish
        self.tied_to = tied_to
        self.state = TaskState.READY
        self.output_event: OnceEvent = OnceEvent(f"{self.name}.out")
        self._pending_slots = 0
        self._ready_callback: Callable[["Task"], None] | None = None
        self.worker_name: str | None = None

    # ------------------------------------------------------------------
    # Dependencies
    # ------------------------------------------------------------------
    def depends_on(self, source: "Task | Event") -> None:
        """Add a pre-slot satisfied by ``source`` (task output or event).

        Must be called before the task is handed to a scheduler (the
        runtime enforces this by only accepting WAITING->READY
        transitions through the dependence mechanism).
        """
        if self.state not in (TaskState.WAITING, TaskState.READY):
            raise DependencyError(
                f"task '{self.name}': cannot add dependences in state "
                f"{self.state.value}"
            )
        event = source.output_event if isinstance(source, Task) else source
        self._pending_slots += 1
        self.state = TaskState.WAITING
        event.add_dependent(self._slot_satisfied)

    def _slot_satisfied(self, _payload: Any) -> None:
        if self._pending_slots <= 0:
            raise DependencyError(
                f"task '{self.name}': more satisfactions than slots"
            )
        self._pending_slots -= 1
        if self._pending_slots == 0 and self.state is TaskState.WAITING:
            self.state = TaskState.READY
            if self._ready_callback is not None:
                self._ready_callback(self)

    def on_ready(self, callback: Callable[["Task"], None]) -> None:
        """Register the runtime's "task became ready" hook.

        Fires immediately if the task is already ready.
        """
        self._ready_callback = callback
        if self.state is TaskState.READY:
            callback(self)

    # ------------------------------------------------------------------
    # Execution transitions (driven by the runtime)
    # ------------------------------------------------------------------
    def start(self, worker_name: str) -> None:
        """Transition READY -> RUNNING; acquires the task's datablocks."""
        if self.state is not TaskState.READY:
            raise TaskError(
                f"task '{self.name}': start from state {self.state.value}"
            )
        if self.tied_to is not None and worker_name != self.tied_to:
            raise TaskError(
                f"tied task '{self.name}' must run on '{self.tied_to}', "
                f"not '{worker_name}'"
            )
        for db, mode in zip(self.datablocks, self.access_modes):
            db.acquire(mode)
        self.state = TaskState.RUNNING
        self.worker_name = worker_name

    def finish(self) -> None:
        """Transition RUNNING -> FINISHED; releases blocks, fires output."""
        if self.state is not TaskState.RUNNING:
            raise TaskError(
                f"task '{self.name}': finish from state {self.state.value}"
            )
        for db in self.datablocks:
            db.release()
        self.state = TaskState.FINISHED
        if self.on_finish is not None:
            self.on_finish(self)
        self.output_event.satisfy(self)

    # ------------------------------------------------------------------
    def traffic(self) -> dict[int, float] | None:
        """Per-node traffic fractions derived from the task's datablocks."""
        return traffic_fractions(self.datablocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Task {self.name} {self.state.value} flops={self.flops:g} "
            f"ai={self.arithmetic_intensity:g}>"
        )
