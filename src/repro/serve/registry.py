"""Live workload bookkeeping for the allocation service.

The :class:`WorkloadRegistry` is the service's single source of truth
about *who is running*: every admitted application has one
:class:`Session` carrying its :class:`~repro.core.spec.AppSpec`, its
lifecycle :class:`SessionState`, and its delivery bookkeeping (the last
allocation epoch the runtime acknowledged, the last heartbeat time).

Membership changes — admission, departure, quarantine — bump a
monotonically increasing *epoch*.  The epoch is what every
:class:`~repro.serve.protocol.AllocationUpdate` is stamped with, so a
runtime (and the service's at-least-once re-push loop) can tell a
current command from a stale one without comparing thread counts.

The registry is deliberately passive: it holds state and answers
queries (`active_specs`, `fingerprint`), while all policy — debounce,
staleness, quorum, degradation — lives in
:class:`~repro.serve.service.AllocationService`.  The lifecycle state
machine is documented in ``docs/SERVICE.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.core.bwshare import RemainderRule
from repro.core.fasteval import workload_fingerprint
from repro.core.spec import AppSpec
from repro.errors import ServiceError
from repro.machine.topology import MachineTopology

__all__ = [
    "SessionState",
    "Session",
    "WorkloadRegistry",
]


class SessionState(enum.Enum):
    """Lifecycle of one admitted application.

    ``ACTIVE`` sessions shape the optimized workload.  ``QUARANTINED``
    sessions stopped reporting inside the freshness window; they keep
    their registration (a late heartbeat reactivates them) but are
    excluded from the workload the optimizer sees.  ``CLOSED`` is
    terminal: the session deregistered or the service drained.
    """

    ACTIVE = "active"
    QUARANTINED = "quarantined"
    CLOSED = "closed"


@dataclass
class Session:
    """One admitted application's mutable service-side state.

    Attributes
    ----------
    app:
        The immutable spec the workload is optimized against.
    state:
        Lifecycle position (see :class:`SessionState`).
    admitted_at:
        Service-clock time of admission; kept for diagnostics.
    last_report_time:
        Timestamp of the most recent progress report (the heartbeat the
        staleness check reads), or ``None`` before the first report.
    acked_epoch:
        Highest allocation epoch the runtime confirmed applying; the
        re-push loop retransmits while it trails the current epoch.
    pushed_epoch:
        Epoch of the last :class:`~repro.serve.protocol.AllocationUpdate`
        streamed to the session (unset until the first push).
    progress:
        Last reported application-defined progress counters.
    cpu_load:
        Last reported CPU load.
    """

    app: AppSpec
    state: SessionState = SessionState.ACTIVE
    admitted_at: float = 0.0
    last_report_time: float | None = None
    acked_epoch: int | None = None
    pushed_epoch: int | None = None
    progress: Mapping[str, float] = field(default_factory=dict)
    cpu_load: float = 0.0

    @property
    def name(self) -> str:
        """The session's (application's) unique name."""
        return self.app.name

    @property
    def active(self) -> bool:
        """True while the session shapes the optimized workload."""
        return self.state is SessionState.ACTIVE


class WorkloadRegistry:
    """Ordered registry of admitted applications.

    Admission order is preserved (`dict` insertion order) and is the
    order `active_specs` returns, so the workload handed to the
    optimizer — and therefore the
    :func:`~repro.core.fasteval.workload_fingerprint` keying the
    :class:`~repro.core.fasteval.ScoreCache` — is a pure function of
    the membership history, not of report timing.
    """

    def __init__(self, max_sessions: int | None = None) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ServiceError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        self.max_sessions = max_sessions
        self._sessions: dict[str, Session] = {}
        self._epoch = 0

    # -- membership -----------------------------------------------------

    def admit(self, app: AppSpec, now: float) -> Session:
        """Admit ``app``; returns its new session and bumps the epoch.

        Raises :class:`ServiceError` on a duplicate live name or when
        ``max_sessions`` is reached.  A name whose previous session is
        ``CLOSED`` may be reused.
        """
        existing = self._sessions.get(app.name)
        if existing is not None and existing.state is not SessionState.CLOSED:
            raise ServiceError(
                f"session '{app.name}' is already registered "
                f"({existing.state.value})",
                code="duplicate-session",
            )
        live = sum(
            1
            for s in self._sessions.values()
            if s.state is not SessionState.CLOSED
        )
        if self.max_sessions is not None and live >= self.max_sessions:
            raise ServiceError(
                f"admission of '{app.name}' refused: "
                f"{live} sessions at the max_sessions={self.max_sessions} cap",
                code="overloaded",
            )
        # Re-admission must take the *newest* position in admission
        # order, so drop the closed tombstone first.
        self._sessions.pop(app.name, None)
        session = Session(
            app=app, admitted_at=now, last_report_time=now
        )
        self._sessions[app.name] = session
        self._epoch += 1
        return session

    def remove(self, name: str) -> Session:
        """Close ``name``'s session; bumps the epoch if it was active.

        Deregistering an already-closed session (a duplicate
        ``Deregister``, or one sent after drain closed everything) is a
        deterministic error — the runtime's view of the session has
        diverged from the service's, and silently acknowledging would
        hide that.
        """
        session = self._require(name)
        if session.state is SessionState.CLOSED:
            raise ServiceError(
                f"session '{name}' is already closed",
                code="closed-session",
            )
        was_active = session.active
        session.state = SessionState.CLOSED
        if was_active:
            self._epoch += 1
        return session

    def quarantine(self, name: str) -> Session:
        """Move an active session out of the optimized workload."""
        session = self._require(name)
        if session.state is SessionState.CLOSED:
            raise ServiceError(
                f"cannot quarantine closed session '{name}'",
                code="closed-session",
            )
        if session.active:
            session.state = SessionState.QUARANTINED
            self._epoch += 1
        return session

    def reactivate(self, name: str) -> Session:
        """Return a quarantined session to the optimized workload."""
        session = self._require(name)
        if session.state is SessionState.CLOSED:
            raise ServiceError(
                f"cannot reactivate closed session '{name}'",
                code="closed-session",
            )
        if session.state is SessionState.QUARANTINED:
            session.state = SessionState.ACTIVE
            self._epoch += 1
        return session

    # -- reporting ------------------------------------------------------

    def record_report(
        self,
        name: str,
        time: float,
        progress: Mapping[str, float],
        cpu_load: float,
        acked_epoch: int | None,
    ) -> Session:
        """Fold one progress report into ``name``'s session state."""
        session = self._require(name)
        if session.state is SessionState.CLOSED:
            raise ServiceError(
                f"session '{name}' is closed; re-register first",
                code="closed-session",
            )
        last = session.last_report_time
        if last is not None and time < last:
            raise ServiceError(
                f"report time of '{name}' went backwards "
                f"({time} < {last})",
                code="backwards-report",
            )
        session.last_report_time = time
        session.progress = dict(progress)
        session.cpu_load = cpu_load
        if acked_epoch is not None:
            if session.acked_epoch is None or acked_epoch > session.acked_epoch:
                session.acked_epoch = acked_epoch
        return session

    # -- queries --------------------------------------------------------

    def _require(self, name: str) -> Session:
        session = self._sessions.get(name)
        if session is None:
            raise ServiceError(
                f"unknown session '{name}'", code="unknown-session"
            )
        return session

    def get(self, name: str) -> Session | None:
        """The session registered under ``name``, or ``None``."""
        return self._sessions.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def __len__(self) -> int:
        return sum(1 for _ in self.live_sessions())

    def live_sessions(self) -> Iterator[Session]:
        """All non-closed sessions, in admission order."""
        return (
            s
            for s in self._sessions.values()
            if s.state is not SessionState.CLOSED
        )

    def active_sessions(self) -> Iterator[Session]:
        """All active sessions, in admission order."""
        return (s for s in self._sessions.values() if s.active)

    def active_specs(self) -> tuple[AppSpec, ...]:
        """The optimized workload: active specs in admission order."""
        return tuple(s.app for s in self.active_sessions())

    @property
    def epoch(self) -> int:
        """Monotonic membership-change counter (starts at 0)."""
        return self._epoch

    # -- persistence ----------------------------------------------------

    def to_snapshot(self) -> dict:
        """JSON-safe dump of the full registry, tombstones included.

        Insertion (admission) order is preserved in the ``sessions``
        list, so ``from_snapshot(to_snapshot())`` rebuilds a registry
        whose workload fingerprint — and therefore whose optimizer
        answer — is byte-identical to the original.  Equality of two
        snapshots is exactly state equality of two registries, which is
        what the crash-recovery tests assert with ``==``.
        """
        from repro.serve.protocol import app_spec_to_dict

        return {
            "epoch": self._epoch,
            "sessions": [
                {
                    "app": app_spec_to_dict(session.app),
                    "state": session.state.value,
                    "admitted_at": session.admitted_at,
                    "last_report_time": session.last_report_time,
                    "acked_epoch": session.acked_epoch,
                    "pushed_epoch": session.pushed_epoch,
                    "progress": dict(session.progress),
                    "cpu_load": session.cpu_load,
                }
                for session in self._sessions.values()
            ],
        }

    @classmethod
    def from_snapshot(
        cls, data: Mapping, max_sessions: int | None = None
    ) -> "WorkloadRegistry":
        """Rebuild a registry from :meth:`to_snapshot` output."""
        from repro.serve.protocol import app_spec_from_dict

        epoch = data.get("epoch")
        sessions = data.get("sessions")
        if not isinstance(epoch, int) or not isinstance(sessions, list):
            raise ServiceError(
                "registry snapshot needs integer 'epoch' and "
                "list 'sessions'"
            )
        registry = cls(max_sessions=max_sessions)
        for entry in sessions:
            app = app_spec_from_dict(entry["app"])
            if app.name in registry._sessions:
                raise ServiceError(
                    f"registry snapshot repeats session '{app.name}'"
                )
            registry._sessions[app.name] = Session(
                app=app,
                state=SessionState(entry["state"]),
                admitted_at=entry["admitted_at"],
                last_report_time=entry["last_report_time"],
                acked_epoch=entry["acked_epoch"],
                pushed_epoch=entry["pushed_epoch"],
                progress=dict(entry["progress"]),
                cpu_load=entry["cpu_load"],
            )
        registry._epoch = epoch
        return registry

    def fingerprint(
        self, machine: MachineTopology, rule: RemainderRule
    ) -> tuple:
        """Score-cache key of the current active workload."""
        return workload_fingerprint(machine, self.active_specs(), rule)
