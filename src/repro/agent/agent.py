"""The coordination agent of Figure 1.

A dedicated process that periodically: collects a :class:`StatusReport`
from every registered runtime endpoint, samples machine load, asks its
:class:`~repro.agent.strategies.AgentStrategy` for commands, and applies
them.  The loop runs on the shared discrete-event clock, so agent activity
interleaves with application execution exactly as it would on a real node.

Section IV warns that a CPU-hungry agent perturbs the applications; the
agent therefore tracks its cumulative *deliberation budget*
(``decision_cost_seconds`` per round) and can optionally burn that budget
as real simulated work on a dedicated core via ``charge_cpu=True`` —
letting the experiments quantify the perturbation instead of ignoring it.

The loop is hardened against misbehaving runtimes (crashes, hangs, stale
or corrupt reports — exactly what :mod:`repro.faults` injects):

* report collection retries within the round and probes failing
  endpoints between rounds with exponential backoff and jitter;
* a :class:`~repro.agent.resilience.HeartbeatTracker` rejects reports
  older than the freshness window, so a replayed cached report cannot
  masquerade as progress;
* a circuit breaker quarantines an endpoint after
  ``quarantine_after`` consecutive failed rounds and redistributes its
  cores over the surviving runtimes;
* when fewer than a quorum of endpoints respond, the agent stops
  trusting its strategy and degrades to a static equal per-node
  allocation until the quorum returns.

With no failures the hardened loop is byte-identical to the plain one —
every guard only engages on an actual failure — which the golden tests
in ``tests/test_faults_agent.py`` pin down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.agent.monitor import LoadMonitor, LoadSample
from repro.agent.protocol import (
    CommandKind,
    RuntimeEndpoint,
    StatusReport,
    ThreadCommand,
)
from repro.agent.resilience import (
    EndpointHealth,
    HeartbeatTracker,
    ResiliencePolicy,
)
from repro.errors import AgentError
from repro.obs import OBS, CounterHandle
from repro.sim.executor import ExecutionSimulator, WorkSegment
from repro.sim.cpu import Binding, SimThread
from repro.sim.trace import TraceKind

__all__ = ["AgentDecision", "Agent"]

# Metric handles hoisted out of the per-round/per-retry loops (PERF001):
# resolved once against the live registry instead of per call.
_RETRIES = CounterHandle("agent/retries")
_INVALID_REPORTS = CounterHandle("agent/invalid_reports")
_QUARANTINED = CounterHandle("agent/quarantined")
_DEGRADED_ROUNDS = CounterHandle("agent/degraded_rounds")
_ROUNDS = CounterHandle("agent/rounds")
_COMMANDS = CounterHandle("agent/commands")
_COMMAND_FAILURES = CounterHandle("agent/command_failures")


def _endpoint_threads(endpoint: RuntimeEndpoint) -> int | None:
    """Active-thread count of an endpoint's runtime, if it exposes one.

    Duck-typed so command spans can annotate before/after counts without
    issuing an extra protocol report (which would perturb the endpoints'
    differencing state, e.g. ``cpu_load``).  Endpoints without a
    ``runtime`` attribute (or whose runtime has no ``active_threads``)
    explicitly yield ``None`` — the span annotates those as
    ``"unknown"`` rather than dropping the attribute.
    """
    runtime = getattr(endpoint, "runtime", None)
    if runtime is None:
        return None
    threads = getattr(runtime, "active_threads", None)
    if threads is None:
        return None
    return int(threads)


@dataclass(frozen=True)
class AgentDecision:
    """Record of one agent round.

    ``failures`` names the endpoints that produced no fresh report this
    round, ``quarantined`` the endpoints newly quarantined by it, and
    ``degraded`` marks rounds decided by the static quorum-loss fallback
    instead of the strategy.  All three stay empty/False in fault-free
    runs, keeping the record identical to the pre-hardening agent.
    """

    time: float
    reports: dict[str, StatusReport]
    load: LoadSample
    commands: dict[str, tuple[ThreadCommand, ...]]
    failures: tuple[str, ...] = ()
    quarantined: tuple[str, ...] = ()
    degraded: bool = False


class Agent:
    """The resource-arbitration agent.

    Parameters
    ----------
    executor:
        The shared execution simulator.
    strategy:
        Decision logic.
    period:
        Seconds between rounds.
    decision_cost_seconds:
        CPU time one round costs the agent (Section IV's concern).
    charge_cpu:
        When True, the agent's deliberation is executed as work on a
        dedicated simulated thread (bound to ``agent_node``), competing
        for a core like any other thread would.
    resilience:
        Failure-handling knobs (:class:`ResiliencePolicy`); the default
        policy retries up to 3 times, quarantines after 3 consecutive
        failed rounds, and requires half the endpoints to respond.
    """

    def __init__(
        self,
        executor: ExecutionSimulator,
        strategy,
        *,
        period: float = 0.01,
        decision_cost_seconds: float = 0.0,
        charge_cpu: bool = False,
        agent_node: int = 0,
        resilience: ResiliencePolicy | None = None,
    ) -> None:
        if period <= 0:
            raise AgentError(f"period must be positive, got {period}")
        if decision_cost_seconds < 0:
            raise AgentError("decision_cost_seconds must be >= 0")
        self.executor = executor
        self.strategy = strategy
        self.period = period
        self.decision_cost_seconds = decision_cost_seconds
        self.charge_cpu = charge_cpu
        self.agent_node = agent_node
        self.resilience = resilience or ResiliencePolicy()
        self.endpoints: dict[str, RuntimeEndpoint] = {}
        self.monitor = LoadMonitor(executor)
        self.heartbeats = HeartbeatTracker(
            self.resilience.freshness_window * period
        )
        self.health: dict[str, EndpointHealth] = {}
        self.decisions: list[AgentDecision] = []
        self.total_deliberation = 0.0
        self._started = False
        self._agent_thread: SimThread | None = None
        self._pending_work = 0.0
        self._rng = random.Random(f"agent-resilience:{self.resilience.seed}")
        self._last_reports: dict[str, StatusReport] = {}
        self._probe_pending: set[str] = set()

    # ------------------------------------------------------------------
    def register(self, endpoint: RuntimeEndpoint) -> None:
        """Attach a runtime to the agent."""
        if endpoint.name in self.endpoints:
            raise AgentError(f"duplicate endpoint '{endpoint.name}'")
        self.endpoints[endpoint.name] = endpoint
        self.health[endpoint.name] = EndpointHealth()

    def start(self) -> None:
        """Begin the periodic control loop (first round after one period)."""
        if self._started:
            raise AgentError("agent already started")
        if not self.endpoints:
            raise AgentError("agent has no registered runtimes")
        self._started = True
        if self.charge_cpu and self.decision_cost_seconds > 0:
            # The agent's own thread: its provider drains deliberation
            # work charged by each round.  Compute-only (high AI).
            agent = self

            class _AgentWork:
                def next_segment(self, thread: SimThread) -> WorkSegment | None:
                    if agent._pending_work <= 0:
                        return None
                    core_peak = agent.executor.machine.node(
                        agent.agent_node
                    ).cores[0].peak_gflops
                    flops = agent._pending_work * core_peak
                    agent._pending_work = 0.0
                    return WorkSegment(
                        flops=flops,
                        arithmetic_intensity=1e6,
                        label="agent-deliberation",
                    )

                def segment_finished(self, thread, segment) -> None:
                    pass

            self._agent_thread = self.executor.add_thread(
                "agent",
                Binding.to_node(self.agent_node),
                _AgentWork(),
                app_name="agent",
            )
        self.executor.sim.schedule(self.period, self._round, priority=5)

    # ------------------------------------------------------------------
    # Report collection (the hardened upward path)
    # ------------------------------------------------------------------
    def _valid_report(self, name: str, report: StatusReport, now: float) -> bool:
        """Plausibility gate: a corrupt report must not reach the strategy."""
        if not isinstance(report, StatusReport):
            return False
        nodes = self.executor.machine.num_nodes
        return (
            report.runtime_name == name
            and 0.0 <= report.time <= now + 1e-9
            and report.tasks_executed >= 0
            and report.active_threads >= 0
            and report.blocked_threads >= 0
            and report.queue_length >= 0
            and len(report.active_per_node) == nodes
            and len(report.workers_per_node) == nodes
            and all(x >= 0 for x in report.active_per_node)
            and all(x >= 0 for x in report.workers_per_node)
        )

    def _fetch_report(self, name: str, now: float) -> StatusReport | None:
        """One round's report attempts for one endpoint.

        The first attempt plus up to ``max_attempts - 1`` immediate
        retransmits, all at the current instant (a real coordinator's
        in-round timeout/retry).  Invalid (corrupt) reports count as
        failures.  Returns None when every attempt failed.
        """
        endpoint = self.endpoints[name]
        policy = self.resilience
        for attempt in range(policy.max_attempts):
            if attempt > 0:
                self.health[name].retries += 1
                if OBS.enabled:
                    _RETRIES.add()
            try:
                report = endpoint.report(now)
            except Exception:
                continue
            if self._valid_report(name, report, now):
                return report
            if OBS.enabled:
                _INVALID_REPORTS.add()
        return None

    def _collect_reports(
        self, now: float
    ) -> tuple[dict[str, StatusReport], list[str]]:
        """Fresh report per responding endpoint, plus this round's failures.

        A failed fetch falls back to the endpoint's cached report when
        that is still inside the freshness window (so one lost message
        does not blind the strategy), but still counts as a failure for
        the circuit breaker — the endpoint did not answer *now*.
        """
        reports: dict[str, StatusReport] = {}
        failures: list[str] = []
        for name in self.endpoints:
            if self.health[name].quarantined:
                continue
            report = self._fetch_report(name, now)
            if report is not None and self.heartbeats.fresh(report.time, now):
                reports[name] = report
                self._last_reports[name] = report
                self.heartbeats.beat(name, report.time)
                continue
            failures.append(name)
            cached = self._last_reports.get(name)
            if cached is not None and self.heartbeats.fresh(cached.time, now):
                reports[name] = cached
        return reports, failures

    def _schedule_probe(self, name: str) -> None:
        """One between-rounds backoff probe for a failing endpoint."""
        if name in self._probe_pending or self.health[name].quarantined:
            return
        streak = self.health[name].consecutive_failures
        delay = self.resilience.backoff_delay(max(streak, 1), self._rng)
        if delay >= self.period:
            return  # next round arrives first anyway
        self._probe_pending.add(name)
        self.executor.sim.schedule(delay, lambda: self._probe(name), priority=6)

    def _probe(self, name: str) -> None:
        """Fire one backoff probe; success refreshes the report cache."""
        self._probe_pending.discard(name)
        health = self.health[name]
        if health.quarantined:
            return
        now = self.executor.sim.now
        health.retries += 1
        if OBS.enabled:
            _RETRIES.add()
        try:
            report = self.endpoints[name].report(now)
        except Exception:
            return
        if not self._valid_report(name, report, now):
            return
        # Half-open probe succeeded: the endpoint is alive after all.
        health.consecutive_failures = 0
        self._last_reports[name] = report
        if self.heartbeats.fresh(report.time, now):
            self.heartbeats.beat(name, report.time)

    # ------------------------------------------------------------------
    # Circuit breaker and quorum fallback
    # ------------------------------------------------------------------
    def _update_health(
        self, failures: Sequence[str], now: float
    ) -> list[str]:
        """Advance failure streaks; returns endpoints newly quarantined."""
        policy = self.resilience
        newly: list[str] = []
        for name in self.endpoints:
            health = self.health[name]
            if health.quarantined:
                continue
            if name in failures:
                health.consecutive_failures += 1
                health.total_failures += 1
                if health.consecutive_failures >= policy.quarantine_after:
                    health.quarantined = True
                    health.quarantined_at = now
                    newly.append(name)
                    if OBS.enabled:
                        _QUARANTINED.add()
                        with OBS.tracer.span(
                            "agent/quarantine",
                            runtime=name,
                            sim_time=now,
                            failures=health.consecutive_failures,
                        ):
                            pass
                else:
                    self._schedule_probe(name)
            else:
                health.consecutive_failures = 0
                health.last_report_time = now
        return newly

    @property
    def active_endpoints(self) -> list[str]:
        """Registered endpoints whose circuit breaker is still closed."""
        return [
            name
            for name in self.endpoints
            if not self.health[name].quarantined
        ]

    @property
    def quarantined_endpoints(self) -> list[str]:
        """Endpoints removed from coordination by the circuit breaker."""
        return [
            name for name in self.endpoints if self.health[name].quarantined
        ]

    def _quorum_met(self, responding: int) -> bool:
        active = len(self.active_endpoints)
        if active == 0:
            return False
        return responding / active >= self.resilience.quorum - 1e-12

    def _equal_share(
        self, reports: dict[str, StatusReport]
    ) -> dict[str, list[ThreadCommand]]:
        """Static equal per-node allocation over the responding runtimes.

        The quorum-loss fallback: with too few signals to trust the
        strategy, fall back to the paper's "fair share of the cores".
        """
        names = sorted(reports)
        out: dict[str, list[ThreadCommand]] = {}
        for i, name in enumerate(names):
            per_node = []
            for node in self.executor.machine.nodes:
                share, leftover = divmod(node.num_cores, len(names))
                per_node.append(share + (1 if i < leftover else 0))
            clamped = tuple(
                min(int(n), w)
                for n, w in zip(per_node, reports[name].workers_per_node)
            )
            out[name] = [
                ThreadCommand(
                    kind=CommandKind.SET_ALLOCATION, per_node=clamped
                )
            ]
        return out

    def _redistribute(
        self,
        dead: Sequence[str],
        reports: dict[str, StatusReport],
    ) -> dict[str, list[ThreadCommand]]:
        """Hand a quarantined runtime's cores to the survivors.

        The freed per-node counts (the dead endpoint's last known active
        threads) are dealt round-robin over the responding survivors in
        name order; each survivor receives one SET_ALLOCATION raising its
        current allocation, clamped to the workers it actually has.
        """
        survivors = sorted(reports)
        if not survivors:
            return {}
        freed = [0] * self.executor.machine.num_nodes
        for name in dead:
            last = self._last_reports.get(name)
            if last is None:
                continue
            for node, count in enumerate(last.active_per_node):
                freed[node] += count
        if not any(freed):
            return {}
        extra = {name: [0] * len(freed) for name in survivors}
        for node, count in enumerate(freed):
            for k in range(count):
                extra[survivors[k % len(survivors)]][node] += 1
        out: dict[str, list[ThreadCommand]] = {}
        for name in survivors:
            report = reports[name]
            target = tuple(
                min(a + e, w)
                for a, e, w in zip(
                    report.active_per_node,
                    extra[name],
                    report.workers_per_node,
                )
            )
            out[name] = [
                ThreadCommand(
                    kind=CommandKind.SET_ALLOCATION, per_node=target
                )
            ]
        return out

    # ------------------------------------------------------------------
    def _round(self) -> None:
        now = self.executor.sim.now
        with OBS.tracer.span("agent/round", sim_time=now) as span:
            reports, failures = self._collect_reports(now)
            load = self.monitor.sample()
            newly_quarantined = self._update_health(failures, now)
            for name in newly_quarantined:
                # A cached (still-fresh) report may have survived the
                # collect for an endpoint quarantined *this* round; drop
                # it so the dead runtime is not counted toward quorum,
                # fed to the strategy, or treated as a redistribution
                # survivor receiving back its own freed cores.
                reports.pop(name, None)
            degraded = not self._quorum_met(len(reports))
            if degraded:
                if OBS.enabled:
                    _DEGRADED_ROUNDS.add()
                commands = self._equal_share(reports)
            else:
                commands = self.strategy.decide(
                    self.executor.machine, reports
                )
            if newly_quarantined:
                for name, cmds in self._redistribute(
                    newly_quarantined, reports
                ).items():
                    commands.setdefault(name, []).extend(cmds)
            applied = 0
            for name, cmds in commands.items():
                if name not in self.endpoints:
                    raise AgentError(
                        f"strategy issued commands for unknown runtime "
                        f"'{name}'"
                    )
                if self.health[name].quarantined:
                    continue  # unreachable by definition; drop its commands
                for cmd in cmds:
                    if self._apply_command(name, cmd, now):
                        applied += 1
            if OBS.enabled:
                span.attrs["commands"] = applied
                if failures:
                    span.attrs["failures"] = tuple(failures)
                if degraded:
                    span.attrs["degraded"] = True
                _ROUNDS.add()
        self.total_deliberation += self.decision_cost_seconds
        if self.charge_cpu:
            self._pending_work += self.decision_cost_seconds
        self.decisions.append(
            AgentDecision(
                time=now,
                reports=reports,
                load=load,
                commands={
                    k: tuple(v) for k, v in commands.items()
                },
                failures=tuple(failures),
                quarantined=tuple(newly_quarantined),
                degraded=degraded,
            )
        )
        self.executor.sim.schedule(self.period, self._round, priority=5)

    def _apply_command(self, name: str, cmd: ThreadCommand, now: float) -> bool:
        """Apply one command; when observability is on, log it as a span
        with the runtime's before/after active-thread counts.

        A raising endpoint must not kill the round — the failure is
        recorded on the endpoint's health and the loop moves on to the
        remaining commands and endpoints.  Returns True when the command
        was applied without error.
        """
        endpoint = self.endpoints[name]
        try:
            if not OBS.enabled:
                endpoint.apply(cmd)
            else:
                before = _endpoint_threads(endpoint)
                with OBS.tracer.span(
                    "agent/command",
                    runtime=name,
                    command=cmd.kind.value,
                    sim_time=now,
                ) as span:
                    endpoint.apply(cmd)
                    after = _endpoint_threads(endpoint)
                    span.attrs["threads_before"] = (
                        before if before is not None else "unknown"
                    )
                    span.attrs["threads_after"] = (
                        after if after is not None else "unknown"
                    )
                _COMMANDS.add()
        except Exception:
            self.health[name].command_failures += 1
            if OBS.enabled:
                _COMMAND_FAILURES.add()
            return False
        self.executor.tracer.emit(
            now, TraceKind.COMMAND, name, command=cmd.kind.value
        )
        return True

    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Completed decision rounds."""
        return len(self.decisions)

    def commands_issued(self) -> int:
        """Total commands applied across all rounds."""
        return sum(
            len(cmds)
            for d in self.decisions
            for cmds in d.commands.values()
        )
