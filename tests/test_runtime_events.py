"""Unit tests for OCR-style events."""

import pytest

from repro.errors import DependencyError
from repro.runtime.events import LatchEvent, OnceEvent


class TestOnceEvent:
    def test_fires_with_payload(self):
        e = OnceEvent("e")
        got = []
        e.add_dependent(got.append)
        e.satisfy(42)
        assert got == [42]
        assert e.fired
        assert e.payload == 42

    def test_double_satisfy_rejected(self):
        e = OnceEvent()
        e.satisfy()
        with pytest.raises(DependencyError):
            e.satisfy()

    def test_late_dependent_fires_immediately(self):
        e = OnceEvent()
        e.satisfy("x")
        got = []
        e.add_dependent(got.append)
        assert got == ["x"]

    def test_multiple_dependents(self):
        e = OnceEvent()
        got = []
        for i in range(3):
            e.add_dependent(lambda p, i=i: got.append(i))
        e.satisfy()
        assert got == [0, 1, 2]

    def test_unique_ids_and_default_names(self):
        a, b = OnceEvent(), OnceEvent()
        assert a.event_id != b.event_id
        assert a.name != b.name


class TestLatchEvent:
    def test_fires_at_zero(self):
        latch = LatchEvent(2)
        got = []
        latch.add_dependent(got.append)
        latch.count_down()
        assert not latch.fired
        latch.count_down(payload="done")
        assert got == ["done"]

    def test_count_up_extends(self):
        latch = LatchEvent(1)
        latch.count_up(2)
        latch.count_down()
        latch.count_down()
        assert not latch.fired
        latch.count_down()
        assert latch.fired

    def test_nonpositive_start_rejected(self):
        with pytest.raises(DependencyError):
            LatchEvent(0)

    def test_below_zero_rejected(self):
        latch = LatchEvent(1)
        with pytest.raises(DependencyError):
            latch.count_down(2)

    def test_operations_after_fire_rejected(self):
        latch = LatchEvent(1)
        latch.count_down()
        with pytest.raises(DependencyError):
            latch.count_down()
        with pytest.raises(DependencyError):
            latch.count_up()

    def test_nonpositive_deltas_rejected(self):
        latch = LatchEvent(2)
        with pytest.raises(DependencyError):
            latch.count_down(0)
        with pytest.raises(DependencyError):
            latch.count_up(-1)

    def test_count_property(self):
        latch = LatchEvent(3)
        latch.count_down()
        assert latch.count == 2
