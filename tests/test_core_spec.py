"""Unit tests for AppSpec and Placement."""

import pytest

from repro.core.spec import AppSpec, Placement
from repro.errors import ConfigurationError


class TestConstruction:
    def test_defaults_are_numa_perfect(self):
        a = AppSpec("a", 0.5)
        assert a.placement is Placement.NUMA_PERFECT
        assert a.home_node is None

    def test_memory_bound_helper(self):
        a = AppSpec.memory_bound("m")
        assert a.arithmetic_intensity == 0.5

    def test_compute_bound_helper(self):
        a = AppSpec.compute_bound("c")
        assert a.arithmetic_intensity == 10.0

    def test_numa_bad_helper(self):
        a = AppSpec.numa_bad("b", home_node=2)
        assert a.placement is Placement.SINGLE_NODE
        assert a.home_node == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            AppSpec("", 1.0)

    def test_nonpositive_ai_rejected(self):
        with pytest.raises(ConfigurationError):
            AppSpec("a", 0.0)
        with pytest.raises(ConfigurationError):
            AppSpec("a", -1.0)

    def test_single_node_requires_home(self):
        with pytest.raises(ConfigurationError):
            AppSpec("a", 1.0, placement=Placement.SINGLE_NODE)

    def test_home_node_forbidden_elsewhere(self):
        with pytest.raises(ConfigurationError):
            AppSpec("a", 1.0, home_node=0)

    def test_nonpositive_peak_override_rejected(self):
        with pytest.raises(ConfigurationError):
            AppSpec("a", 1.0, peak_gflops_per_thread=0.0)


class TestDerivedQuantities:
    def test_demand_per_thread_is_peak_over_ai(self):
        # Paper assumption 3: 10 GFLOPS core, AI=2 -> 5 GB/s.
        a = AppSpec("a", 2.0)
        assert a.demand_per_thread(10.0) == pytest.approx(5.0)

    def test_paper_demands(self):
        mem = AppSpec.memory_bound("m", 0.5)
        comp = AppSpec.compute_bound("c", 10.0)
        assert mem.demand_per_thread(10.0) == pytest.approx(20.0)
        assert comp.demand_per_thread(10.0) == pytest.approx(1.0)

    def test_peak_override_caps_at_core_peak(self):
        a = AppSpec("a", 1.0, peak_gflops_per_thread=50.0)
        assert a.peak_gflops(10.0) == 10.0
        b = AppSpec("b", 1.0, peak_gflops_per_thread=5.0)
        assert b.peak_gflops(10.0) == 5.0

    def test_is_memory_bound_on(self):
        mem = AppSpec.memory_bound("m", 0.5)
        comp = AppSpec.compute_bound("c", 10.0)
        assert mem.is_memory_bound_on(10.0, baseline_bw=4.0)
        assert not comp.is_memory_bound_on(10.0, baseline_bw=4.0)
