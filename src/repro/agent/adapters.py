"""Agent protocol endpoints for the non-OCR runtimes.

The paper's conclusion names its next step: "we plan to continue with our
work on OCR-Vx, but also incorporate TBB, allowing TBB and OCR-Vx
applications to cooperatively manage CPU cores."  These adapters make
that concrete:

* :class:`TbbEndpoint` — drives a :class:`~repro.runtime.tbb.TbbRuntime`
  through the recipe the paper spells out in Section II: one arena per
  NUMA node, threads bound to the arena's node, and RML concurrency
  adjustments standing in for OCR-Vx's option 3 ("by binding all threads
  in an arena to a NUMA node and using RML to adjust the number of
  threads in the arenas, we should also be able to get something very
  similar to option 3 of OCR-Vx").
* :class:`OmpEndpoint` — drives an
  :class:`~repro.runtime.openmp.OpenMpRuntime`, which only supports a
  total thread count (option 1) and may decline to block threads holding
  tied work; per-node commands are translated to totals, and the report
  carries how many threads the last command actually blocked.
"""

from __future__ import annotations

from repro.agent.protocol import (
    CommandKind,
    RuntimeEndpoint,
    StatusReport,
    ThreadCommand,
)
from repro.errors import ProtocolError
from repro.runtime.openmp import OpenMpRuntime
from repro.runtime.tbb import TbbRuntime
from repro.sim.cpu import ThreadState

__all__ = ["TbbEndpoint", "OmpEndpoint"]


class TbbEndpoint(RuntimeEndpoint):
    """Arena-per-node adapter for TBB (the paper's option-3 equivalent).

    Creates one node-bound arena per NUMA node on construction (named
    ``node<k>``); the application enqueues tasks through
    :meth:`arena_for` and the agent's SET_ALLOCATION commands become RML
    concurrency changes.
    """

    def __init__(self, runtime: TbbRuntime) -> None:
        self.runtime = runtime
        self.name = runtime.name
        self._last_flops = 0.0
        self._last_time = 0.0
        machine = runtime.machine
        threads = len(runtime._threads)
        base, extra = divmod(threads, machine.num_nodes)
        self._arenas = []
        for node in range(machine.num_nodes):
            limit = base + (1 if node < extra else 0)
            self._arenas.append(
                runtime.create_arena(
                    f"node{node}", max_concurrency=limit, node=node
                )
            )

    def arena_for(self, node: int):
        """The node-bound arena applications enqueue into."""
        return self._arenas[node]

    def report(self, time: float) -> StatusReport:
        """Sample per-arena activity, queue depth, and achieved load."""
        rt = self.runtime
        flops = rt.executor.metrics.integrator(f"flops/{rt.name}").total
        dt = time - self._last_time
        active = sum(a.active for a in self._arenas)
        load = 0.0
        if dt > 0 and active > 0:
            core_peak = rt.machine.nodes[0].cores[0].peak_gflops
            load = (flops - self._last_flops) / dt / (core_peak * active)
        self._last_flops = flops
        self._last_time = time
        total_threads = len(rt._threads)
        return StatusReport(
            runtime_name=rt.name,
            time=time,
            tasks_executed=rt.stats_tasks_executed,
            active_threads=active,
            blocked_threads=rt.idle_threads,
            active_per_node=tuple(a.active for a in self._arenas),
            # Any market thread can join any arena, so every node could
            # host the whole pool.
            workers_per_node=(total_threads,) * len(self._arenas),
            queue_length=sum(a.pending for a in self._arenas),
            progress={},
            cpu_load=load,
        )

    def apply(self, command: ThreadCommand) -> None:
        """Apply a command as per-node arena concurrency changes."""
        rt = self.runtime
        k = command.kind
        if k is CommandKind.SET_ALLOCATION:
            for node, count in enumerate(command.per_node):
                rt.set_arena_concurrency(f"node{node}", int(count))
        elif k is CommandKind.SET_NODE_THREADS:
            rt.set_arena_concurrency(
                f"node{command.node}", int(command.count)
            )
        elif k is CommandKind.SET_TOTAL_THREADS:
            # Spread the total over the arenas, favouring low node ids.
            n = rt.machine.num_nodes
            base, extra = divmod(int(command.total), n)
            for node in range(n):
                rt.set_arena_concurrency(
                    f"node{node}", base + (1 if node < extra else 0)
                )
        else:
            raise ProtocolError(
                f"TBB endpoint cannot apply {k.value} (no per-worker "
                f"blocking in the arena model)"
            )


class OmpEndpoint(RuntimeEndpoint):
    """Option-1-only adapter for the OpenMP runtime (Section IV caveats).

    Per-node commands are honoured by their *total*; the endpoint records
    how many threads the runtime actually blocked, because tied tasks can
    make it decline (the report's ``progress['declined']`` counter lets
    the agent see partially honoured commands).
    """

    def __init__(self, runtime: OpenMpRuntime) -> None:
        self.runtime = runtime
        self.name = runtime.name
        self._last_flops = 0.0
        self._last_time = 0.0
        self.declined = 0

    def report(self, time: float) -> StatusReport:
        """Sample the OpenMP team's activity and achieved load."""
        rt = self.runtime
        flops = rt.executor.metrics.integrator(f"flops/{rt.name}").total
        dt = time - self._last_time
        active = sum(
            1 for t in rt._threads if t.state is ThreadState.RUNNABLE
        )
        load = 0.0
        if dt > 0 and active > 0:
            core_peak = rt.executor.machine.nodes[0].cores[0].peak_gflops
            load = (flops - self._last_flops) / dt / (core_peak * active)
        self._last_flops = flops
        self._last_time = time
        nodes = rt.executor.machine.num_nodes
        per_node = [0] * nodes
        for t in rt._threads:
            if t.state is ThreadState.RUNNABLE:
                node = t.binding.node_of(rt.executor.machine)
                per_node[node if node is not None else 0] += 1
        workers = [0] * nodes
        for t in rt._threads:
            node = t.binding.node_of(rt.executor.machine)
            workers[node if node is not None else 0] += 1
        return StatusReport(
            runtime_name=rt.name,
            time=time,
            tasks_executed=rt.tasks_executed,
            active_threads=active,
            blocked_threads=len(rt._threads) - active,
            active_per_node=tuple(per_node),
            workers_per_node=tuple(workers),
            queue_length=len(rt._shared),
            progress={"declined": float(self.declined)},
            cpu_load=load,
        )

    def apply(self, command: ThreadCommand) -> None:
        """Apply a command to the OpenMP runtime (option 1 only)."""
        rt = self.runtime
        k = command.kind
        if k is CommandKind.SET_TOTAL_THREADS:
            target = int(command.total)
        elif k is CommandKind.SET_ALLOCATION:
            target = int(sum(command.per_node))
        elif k is CommandKind.SET_NODE_THREADS:
            raise ProtocolError(
                "OpenMP runtime has no per-node thread control"
            )
        else:
            raise ProtocolError(
                f"OpenMP endpoint cannot apply {k.value}"
            )
        target = min(target, rt.num_threads)
        before = sum(
            1 for t in rt._threads if t.state is ThreadState.RUNNABLE
        )
        rt.set_total_threads(target)
        after = sum(
            1 for t in rt._threads if t.state is ThreadState.RUNNABLE
        )
        wanted = before - target
        got = before - after
        if wanted > 0 and got < wanted:
            self.declined += wanted - got
