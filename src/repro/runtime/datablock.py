"""OCR-style datablocks: runtime-managed data with NUMA placement.

In OCR "the application data [is] under the control of the runtime
system", which is what the paper says makes data migration feasible ("This
would easily be possible in OCR, where the runtime system is also in
charge of managing the data, but it might be very difficult in
applications based on TBB").  A :class:`Datablock` records where its bytes
live; tasks acquire datablocks, and the traffic of a task is split over
the home nodes of its acquisitions in proportion to their sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import DatablockError

__all__ = ["AccessMode", "Datablock", "traffic_fractions"]


class AccessMode(enum.Enum):
    """How a task acquires a datablock."""

    READ_ONLY = "ro"
    READ_WRITE = "rw"


class Datablock:
    """A block of runtime-managed memory.

    Parameters
    ----------
    size_bytes:
        Size of the block.
    home_node:
        NUMA node currently holding the block.
    name:
        Identifier for traces and errors.
    """

    _next_id = 0

    def __init__(
        self, size_bytes: float, home_node: int, name: str = ""
    ) -> None:
        if size_bytes <= 0:
            raise DatablockError(
                f"datablock size must be positive, got {size_bytes}"
            )
        if home_node < 0:
            raise DatablockError(
                f"home_node must be non-negative, got {home_node}"
            )
        self.db_id = Datablock._next_id
        Datablock._next_id += 1
        self.name = name or f"db-{self.db_id}"
        self.size_bytes = float(size_bytes)
        self._home_node = home_node
        self._freed = False
        self._acquisitions = 0
        self.migrations = 0

    @property
    def home_node(self) -> int:
        """NUMA node currently holding the data."""
        return self._home_node

    @property
    def freed(self) -> bool:
        """True once destroyed."""
        return self._freed

    @property
    def acquired(self) -> bool:
        """True while at least one task holds the block."""
        return self._acquisitions > 0

    def acquire(self, mode: AccessMode = AccessMode.READ_ONLY) -> None:
        """Register an acquisition (tasks call this when they start)."""
        if self._freed:
            raise DatablockError(f"datablock '{self.name}' was freed")
        if mode is AccessMode.READ_WRITE and self._acquisitions > 0:
            raise DatablockError(
                f"datablock '{self.name}': RW acquire while "
                f"{self._acquisitions} acquisition(s) outstanding"
            )
        self._acquisitions += 1

    def release(self) -> None:
        """Drop one acquisition."""
        if self._acquisitions <= 0:
            raise DatablockError(
                f"datablock '{self.name}' released more than acquired"
            )
        self._acquisitions -= 1

    def migrate(self, node: int) -> None:
        """Move the block to another NUMA node.

        Only legal while nobody holds the block — the runtime owns the
        data, so it can move it between tasks.  This is the capability the
        paper calls out as OCR's advantage for fixing NUMA-bad placement.
        """
        if self._freed:
            raise DatablockError(f"datablock '{self.name}' was freed")
        if self._acquisitions > 0:
            raise DatablockError(
                f"datablock '{self.name}': cannot migrate while acquired"
            )
        if node < 0:
            raise DatablockError(f"invalid node {node}")
        if node != self._home_node:
            self._home_node = node
            self.migrations += 1

    def destroy(self) -> None:
        """Free the block; double free raises."""
        if self._freed:
            raise DatablockError(f"datablock '{self.name}' freed twice")
        if self._acquisitions > 0:
            raise DatablockError(
                f"datablock '{self.name}': destroy while acquired"
            )
        self._freed = True


def traffic_fractions(
    datablocks: list[Datablock],
) -> dict[int, float] | None:
    """Split a task's memory traffic over its datablocks' home nodes.

    Fractions are proportional to block sizes.  Returns ``None`` for an
    empty list (meaning: traffic is local to wherever the task runs).
    """
    if not datablocks:
        return None
    total = sum(db.size_bytes for db in datablocks)
    out: dict[int, float] = {}
    for db in datablocks:
        out[db.home_node] = out.get(db.home_node, 0.0) + db.size_bytes / total
    return out
