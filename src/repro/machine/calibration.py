"""Machine-parameter calibration from application measurements.

Section III-B: "we have only been able to make our best effort ... to make
the application work as well as possible and then estimate the parameters
of the machine from the measured performance of the application.  We have
configured the benchmark to match the even thread allocation scenario ...
and estimated the hardware's performance parameters from this case."

Two estimators are provided:

* :func:`calibrate_from_even_run` — the paper's closed-form procedure:
  the compute-bound application's throughput fixes the per-thread peak,
  and, since the even scenario saturates the memory system, the total
  consumed bandwidth (sum of per-app ``GFLOPS / AI``) fixes the node
  bandwidth.
* :class:`LeastSquaresCalibrator` — an extension: fit (peak, node
  bandwidth, link bandwidth) to *any* set of measured scenarios by
  minimising relative error of the Section III model, using
  ``scipy.optimize``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import optimize

from repro.core.allocation import ThreadAllocation
from repro.core.model import NumaPerformanceModel
from repro.core.spec import AppSpec
from repro.errors import CalibrationError
from repro.machine.topology import MachineTopology

__all__ = [
    "CalibratedParameters",
    "calibrate_from_even_run",
    "Scenario",
    "LeastSquaresCalibrator",
]


@dataclass(frozen=True)
class CalibratedParameters:
    """Estimated machine parameters."""

    peak_gflops_per_thread: float
    node_bandwidth: float
    link_bandwidth: float | None = None

    def to_machine(
        self,
        *,
        num_nodes: int,
        cores_per_node: int,
        name: str = "calibrated",
    ) -> MachineTopology:
        """Materialise a topology with these parameters."""
        return MachineTopology.homogeneous(
            num_nodes=num_nodes,
            cores_per_node=cores_per_node,
            peak_gflops_per_core=self.peak_gflops_per_thread,
            local_bandwidth=self.node_bandwidth,
            remote_bandwidth=self.link_bandwidth,
            name=name,
        )


def calibrate_from_even_run(
    *,
    compute_app_gflops_per_node: float,
    compute_app_threads_per_node: int,
    per_app_gflops_per_node: Sequence[float],
    per_app_ai: Sequence[float],
) -> CalibratedParameters:
    """The paper's closed-form calibration from the even scenario.

    Parameters
    ----------
    compute_app_gflops_per_node / compute_app_threads_per_node:
        The compute-bound application's measured per-node throughput and
        thread count; peak per thread is their ratio (a compute-bound
        thread is never bandwidth-starved).
    per_app_gflops_per_node / per_app_ai:
        Every application's measured per-node GFLOPS and arithmetic
        intensity (compute-bound one included).  Assuming the memory
        system is saturated — true of the paper's even scenario — the
        node bandwidth is the total implied traffic
        ``sum(gflops / ai)``.
    """
    if compute_app_threads_per_node <= 0:
        raise CalibrationError("compute app needs at least one thread")
    if compute_app_gflops_per_node <= 0:
        raise CalibrationError("compute app throughput must be positive")
    if len(per_app_gflops_per_node) != len(per_app_ai):
        raise CalibrationError(
            "per_app_gflops_per_node and per_app_ai lengths differ"
        )
    peak = compute_app_gflops_per_node / compute_app_threads_per_node
    bandwidth = 0.0
    for g, ai in zip(per_app_gflops_per_node, per_app_ai):
        if ai <= 0:
            raise CalibrationError(f"non-positive AI {ai}")
        if g < 0:
            raise CalibrationError(f"negative throughput {g}")
        bandwidth += g / ai
    return CalibratedParameters(
        peak_gflops_per_thread=peak, node_bandwidth=bandwidth
    )


@dataclass(frozen=True)
class Scenario:
    """One measured scenario for the least-squares calibrator."""

    apps: tuple[AppSpec, ...]
    allocation: ThreadAllocation
    measured_total_gflops: float


class LeastSquaresCalibrator:
    """Fit (peak, node bandwidth, link bandwidth) to measured scenarios.

    Minimises the sum of squared *relative* errors between the Section III
    model and the measurements; needs at least three scenarios with
    distinct sensitivities (e.g. the five of Table III) for the three
    parameters to be identifiable.
    """

    def __init__(
        self,
        *,
        num_nodes: int,
        cores_per_node: int,
        model: NumaPerformanceModel | None = None,
    ) -> None:
        if num_nodes <= 0 or cores_per_node <= 0:
            raise CalibrationError("invalid machine shape")
        self.num_nodes = num_nodes
        self.cores_per_node = cores_per_node
        self.model = model or NumaPerformanceModel()

    def _machine(self, params: np.ndarray) -> MachineTopology:
        peak, bw, link = params
        return MachineTopology.homogeneous(
            num_nodes=self.num_nodes,
            cores_per_node=self.cores_per_node,
            peak_gflops_per_core=float(peak),
            local_bandwidth=float(bw),
            remote_bandwidth=float(min(link, bw)),
            name="fit-candidate",
        )

    def fit(
        self,
        scenarios: Sequence[Scenario],
        *,
        initial: CalibratedParameters | None = None,
    ) -> CalibratedParameters:
        """Run the fit; raises if the optimiser fails to improve."""
        if len(scenarios) < 3:
            raise CalibrationError(
                f"need >= 3 scenarios to fit 3 parameters, got "
                f"{len(scenarios)}"
            )
        for s in scenarios:
            if s.measured_total_gflops <= 0:
                raise CalibrationError("measurements must be positive")

        if initial is None:
            # Crude starting point: peak from the best per-thread rate
            # observed, bandwidth from implied traffic.
            best_rate = max(
                s.measured_total_gflops / max(s.allocation.total_threads, 1)
                for s in scenarios
            )
            initial = CalibratedParameters(
                peak_gflops_per_thread=best_rate,
                node_bandwidth=best_rate
                * self.cores_per_node
                * self.num_nodes,
                link_bandwidth=best_rate * self.cores_per_node,
            )

        def cost(log_params: np.ndarray) -> float:
            machine = self._machine(np.exp(log_params))
            total = 0.0
            for s in scenarios:
                pred = self.model.predict(
                    machine, list(s.apps), s.allocation
                ).total_gflops
                rel = (
                    pred - s.measured_total_gflops
                ) / s.measured_total_gflops
                total += rel * rel
            return total

        # The model's min() operators make the cost landscape piecewise
        # smooth with flat regions, where gradient-based least squares
        # stalls in local minima.  A coarse log-space grid around the
        # initial guess followed by a Nelder-Mead polish is robust.
        x0 = np.log(
            [
                initial.peak_gflops_per_thread,
                initial.node_bandwidth,
                initial.link_bandwidth or initial.node_bandwidth / 10,
            ]
        )
        span = np.log(10.0)
        steps = np.linspace(-span, span, 7)
        best_x, best_c = x0, cost(x0)
        for dp in steps:
            for db in steps:
                for dl in steps:
                    x = x0 + np.array([dp, db, dl])
                    c = cost(x)
                    if c < best_c:
                        best_x, best_c = x, c
        result = optimize.minimize(
            cost,
            best_x,
            method="Nelder-Mead",
            options={"xatol": 1e-8, "fatol": 1e-12, "maxiter": 5000},
        )
        if result.fun > 1e-3:
            raise CalibrationError(
                f"calibration failed to converge (cost {result.fun:.4g})"
            )
        peak, bw, link = np.exp(result.x)
        return CalibratedParameters(
            peak_gflops_per_thread=float(peak),
            node_bandwidth=float(bw),
            link_bandwidth=float(min(link, bw)),
        )
