"""End-to-end robustness tests: the hardened agent against injected
faults, plus the golden guarantee that fault-free behaviour is
byte-identical to the pre-hardening agent."""

import hashlib
import json

import pytest

from repro.agent import (
    Agent,
    FairShareStrategy,
    FeedbackHillClimb,
    OcrVxEndpoint,
)
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectionProxy,
    SCENARIOS,
    run_scenario,
)
from repro.errors import FaultError
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator

# SHA-256 of the agent's full decision stream (reports + commands) on
# the reference co-scheduling workload, captured from the agent BEFORE
# the resilience hardening.  The hardened agent must reproduce these
# exactly when no faults are injected: every guard may engage only on an
# actual failure.
GOLDEN_FAIR = "7ec46f67c7ea4a0a778d613b52df35a7b694342ea891a979984507ddd6736040"
GOLDEN_CLIMB = "f17b40c7730ef637b730fca188226ac2be008633081aa7363495b581e10e6893"


def _decision_digest(strategy_factory, horizon=0.12):
    """Run the reference two-runtime workload; hash the decision stream."""
    ex = ExecutionSimulator(model_machine())
    a = OCRVxRuntime("a", ex)
    b = OCRVxRuntime("b", ex)
    a.start()
    b.start()
    for i in range(400):
        a.create_task(f"a{i}", 0.01, 8.0)
    for i in range(400):
        b.create_task(f"b{i}", 0.005, 0.5)
    agent = Agent(ex, strategy_factory(), period=0.01)
    agent.register(OcrVxEndpoint(a))
    agent.register(OcrVxEndpoint(b))
    agent.start()
    ex.run(horizon)
    rec = []
    for d in agent.decisions:
        cmds = {
            k: [(c.kind.value, c.total, c.node, c.count, c.per_node) for c in v]
            for k, v in sorted(d.commands.items())
        }
        rep = {
            k: (
                r.tasks_executed,
                r.active_threads,
                r.blocked_threads,
                list(r.active_per_node),
                r.queue_length,
            )
            for k, r in sorted(d.reports.items())
        }
        rec.append([round(d.time, 9), rep, cmds])
    blob = json.dumps(rec, sort_keys=True)
    return len(agent.decisions), hashlib.sha256(blob.encode()).hexdigest()


class TestGoldenFaultFree:
    def test_fair_share_decisions_byte_identical(self):
        rounds, digest = _decision_digest(FairShareStrategy)
        assert rounds == 12
        assert digest == GOLDEN_FAIR

    def test_hill_climb_decisions_byte_identical(self):
        rounds, digest = _decision_digest(lambda: FeedbackHillClimb(["a", "b"]))
        assert rounds == 12
        assert digest == GOLDEN_CLIMB

    def test_fault_free_rounds_record_no_failures(self):
        ex = ExecutionSimulator(model_machine())
        rt = OCRVxRuntime("a", ex)
        rt.start()
        for i in range(100):
            rt.create_task(f"t{i}", 0.01, 8.0)
        agent = Agent(ex, FairShareStrategy(), period=0.01)
        agent.register(OcrVxEndpoint(rt))
        agent.start()
        ex.run(0.05)
        assert agent.decisions
        for d in agent.decisions:
            assert d.failures == ()
            assert d.quarantined == ()
            assert not d.degraded
        assert all(h.retries == 0 for h in agent.health.values())


class TestCrashRecovery:
    """The ISSUE acceptance scenario, asserted directly (not via CLI)."""

    @pytest.fixture(scope="class")
    def crashed_run(self):
        ex = ExecutionSimulator(model_machine())
        alive = OCRVxRuntime("alive", ex)
        victim = OCRVxRuntime("victim", ex)
        alive.start()
        victim.start()
        for i in range(3000):
            alive.create_task(f"a{i}", 0.05, 50.0)
        for i in range(1200):
            victim.create_task(f"v{i}", 0.05, 50.0)
        agent = Agent(ex, FairShareStrategy(), period=0.01)
        plan = FaultPlan(
            [FaultSpec(FaultKind.CRASH, target="victim", at=0.065)]
        )
        agent.register(InjectionProxy(OcrVxEndpoint(alive), ex.sim))
        agent.register(
            InjectionProxy(
                OcrVxEndpoint(victim),
                ex.sim,
                plan=plan,
                on_crash=victim.stop,
            )
        )
        agent.start()
        ex.run(0.25)
        return agent, alive

    def test_victim_quarantined_within_three_rounds(self, crashed_run):
        agent, _ = crashed_run
        assert agent.quarantined_endpoints == ["victim"]
        first_failure = next(
            i for i, d in enumerate(agent.decisions) if "victim" in d.failures
        )
        quarantine = next(
            i
            for i, d in enumerate(agent.decisions)
            if "victim" in d.quarantined
        )
        assert quarantine - first_failure + 1 <= 3

    def test_cores_reallocated_to_survivor(self, crashed_run):
        agent, alive = crashed_run
        machine = model_machine()
        # The survivor ends up owning the whole machine: all its workers
        # active on every node.
        assert alive.active_per_node() == [
            node.num_cores for node in machine.nodes
        ]
        quarantine_round = next(
            d for d in agent.decisions if "victim" in d.quarantined
        )
        assert "alive" in quarantine_round.commands  # the redistribution

    def test_utilization_recovers_to_ninety_percent(self, crashed_run):
        agent, _ = crashed_run
        utils = [d.load.machine_utilization for d in agent.decisions]
        baseline = sum(utils[2:6]) / 4  # pre-crash steady state
        final = sum(utils[-5:]) / 5
        assert baseline > 0
        assert final / baseline >= 0.9

    def test_no_commands_sent_to_quarantined_endpoint(self, crashed_run):
        agent, _ = crashed_run
        quarantine = next(
            i
            for i, d in enumerate(agent.decisions)
            if "victim" in d.quarantined
        )
        for d in agent.decisions[quarantine + 1 :]:
            assert "victim" not in d.reports
            assert "victim" not in d.commands


class TestScenarios:
    """The CLI presets themselves must pass at the CI seed."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_preset_passes_at_seed_zero(self, name):
        report = run_scenario(name, seed=0)
        assert report.passed, report.format()
        assert report.faults_injected > 0
        # format() and to_dict() agree on the verdict.
        assert "PASS" in report.format()
        assert report.to_dict()["passed"] is True

    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultError):
            run_scenario("split-brain")

    def test_crash_one_is_deterministic(self):
        r1 = run_scenario("crash-one", seed=0)
        r2 = run_scenario("crash-one", seed=0)
        assert r1.to_dict() == r2.to_dict()
