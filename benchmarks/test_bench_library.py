"""Tight integration: shifting cores to a delegated "library" app.

Section II's scenario: "quickly shifting resources to the 'library'
application when it is called could improve efficiency. Similarly, when
the 'library' finishes, we can quickly free up the CPU cores."
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_library_shift


def test_bench_library_shift(benchmark):
    res = benchmark.pedantic(
        run_library_shift, kwargs={"phases": 10}, rounds=1, iterations=1
    )
    emit(
        "Main + library composition (Section II tight integration)",
        render_table(
            ["core policy", "completion time [s]"],
            [
                ["static half/half split", res.static_split_time],
                ["static generous-library", res.static_generous_time],
                ["agent dynamic shifting", res.dynamic_shift_time],
            ],
        )
        + f"\ndynamic speedup over static split: {res.speedup:.2f}x",
    )
    assert res.dynamic_shift_time < res.static_split_time
    assert res.dynamic_shift_time < res.static_generous_time
    assert res.speedup > 1.05
