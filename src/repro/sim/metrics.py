"""Deprecated location of the metric primitives.

The simulator-local registry grew into the process-wide observability
layer: everything that used to live here is now defined in
:mod:`repro.obs.metrics`.  This module remains as a *strict* compatibility
shim: it re-exports exactly the public surface of
:mod:`repro.obs.metrics` (``__all__`` is copied, the objects are the
same, not copies) and nothing else — there is no fallback definition
path, so a name that disappears from :mod:`repro.obs.metrics` disappears
from here in the same commit instead of silently resurrecting a stale
copy.

Importing this module emits a :class:`DeprecationWarning`; the shim will
be removed once external callers have had a release to migrate.
"""

from __future__ import annotations

import warnings

import repro.obs.metrics as _obs_metrics

warnings.warn(
    "repro.sim.metrics is deprecated; import Counter/TimeSeries/"
    "RateIntegrator/MetricSet/MetricsRegistry from repro.obs.metrics",
    DeprecationWarning,
    stacklevel=2,
)

#: The shim's surface IS repro.obs.metrics' surface — nothing more.
__all__ = list(_obs_metrics.__all__)

for _name in __all__:
    globals()[_name] = getattr(_obs_metrics, _name)
del _name


def __getattr__(name: str):
    """No silent fallback: anything not in repro.obs.metrics is an error."""
    raise AttributeError(
        f"repro.sim.metrics re-exports only repro.obs.metrics "
        f"(which does not define {name!r})"
    )
