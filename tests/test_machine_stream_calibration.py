"""Tests for STREAM measurement and machine calibration (Section III-B)."""

import numpy as np
import pytest

from repro.core.allocation import ThreadAllocation
from repro.core.spec import AppSpec
from repro.errors import CalibrationError
from repro.machine import (
    LeastSquaresCalibrator,
    Scenario,
    calibrate_from_even_run,
    measure_link_matrix,
    measure_pair_bandwidth,
    model_machine,
    skylake_4s,
)


class TestStream:
    def test_local_bandwidth_recovered(self):
        m = model_machine()
        bw = measure_pair_bandwidth(m, 0, 0, duration=0.1)
        assert bw == pytest.approx(32.0, rel=0.03)

    def test_remote_bandwidth_recovered(self):
        m = model_machine()
        bw = measure_pair_bandwidth(m, 1, 0, duration=0.1)
        assert bw == pytest.approx(10.0, rel=0.03)

    def test_link_matrix_shape_and_symmetry(self):
        m = model_machine()
        links = measure_link_matrix(m, duration=0.05)
        assert links.shape == (4, 4)
        diag = np.diag(links)
        assert np.allclose(diag, 32.0, rtol=0.05)
        off = links[~np.eye(4, dtype=bool)]
        assert np.allclose(off, 10.0, rtol=0.05)

    def test_validation(self):
        m = model_machine()
        with pytest.raises(CalibrationError):
            measure_pair_bandwidth(m, 0, 0, duration=0.0)
        with pytest.raises(CalibrationError):
            measure_pair_bandwidth(m, 0, 0, threads=99)


class TestClosedFormCalibration:
    def test_recovers_paper_parameters(self):
        # Feed the paper's own Table III even-scenario numbers back in:
        # per node, comp: 5 threads * 0.29 = 1.45 GFLOPS; each of the
        # three memory-bound apps achieves 1.0266 GFLOPS per node (5
        # threads at 6.57 GB/s, AI=1/32).
        est = calibrate_from_even_run(
            compute_app_gflops_per_node=1.45,
            compute_app_threads_per_node=5,
            per_app_gflops_per_node=[1.0266] * 3 + [1.45],
            per_app_ai=[1 / 32] * 3 + [1.0],
        )
        assert est.peak_gflops_per_thread == pytest.approx(0.29)
        assert est.node_bandwidth == pytest.approx(100.0, rel=0.01)

    def test_to_machine(self):
        est = calibrate_from_even_run(
            compute_app_gflops_per_node=1.45,
            compute_app_threads_per_node=5,
            per_app_gflops_per_node=[1.0266] * 3 + [1.45],
            per_app_ai=[1 / 32] * 3 + [1.0],
        )
        m = est.to_machine(num_nodes=4, cores_per_node=20)
        assert m.num_nodes == 4
        assert m.nodes[0].cores[0].peak_gflops == pytest.approx(0.29)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            calibrate_from_even_run(
                compute_app_gflops_per_node=0.0,
                compute_app_threads_per_node=5,
                per_app_gflops_per_node=[1.0],
                per_app_ai=[1.0],
            )
        with pytest.raises(CalibrationError):
            calibrate_from_even_run(
                compute_app_gflops_per_node=1.0,
                compute_app_threads_per_node=1,
                per_app_gflops_per_node=[1.0, 2.0],
                per_app_ai=[1.0],
            )


class TestLeastSquares:
    def test_fits_table3_scenarios(self):
        from repro.analysis import table3_scenarios
        from repro.core.model import NumaPerformanceModel

        sky = skylake_4s()
        model = NumaPerformanceModel()
        scenarios = []
        for name, apps, alloc, _, _ in table3_scenarios():
            measured = model.predict(sky, apps, alloc).total_gflops
            scenarios.append(
                Scenario(
                    apps=tuple(apps),
                    allocation=alloc,
                    measured_total_gflops=measured,
                )
            )
        cal = LeastSquaresCalibrator(num_nodes=4, cores_per_node=20)
        est = cal.fit(scenarios)
        assert est.peak_gflops_per_thread == pytest.approx(0.29, rel=0.05)
        assert est.node_bandwidth == pytest.approx(100.0, rel=0.05)
        assert est.link_bandwidth == pytest.approx(10.0, rel=0.15)

    def test_needs_three_scenarios(self):
        cal = LeastSquaresCalibrator(num_nodes=2, cores_per_node=2)
        with pytest.raises(CalibrationError):
            cal.fit([])
