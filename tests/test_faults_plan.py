"""Unit tests for the fault-injection vocabulary: specs, plans, chaos
configs, and the injection proxy's scripted behaviour."""

import pytest

from repro.errors import EndpointUnavailable, FaultError
from repro.faults import (
    ChaosConfig,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectionProxy,
)
from repro.agent.protocol import (
    CommandKind,
    RuntimeEndpoint,
    StatusReport,
    ThreadCommand,
)
from repro.sim.engine import Simulator


def spec(kind=FaultKind.CRASH, target="rt", at=1.0, **kw):
    return FaultSpec(kind, target=target, at=at, **kw)


class TestFaultSpec:
    def test_crash_is_permanent(self):
        s = spec(at=2.0)
        assert not s.active(1.999)
        assert s.active(2.0)
        assert s.active(1e9)

    def test_windowed_kinds_cover_half_open_window(self):
        s = spec(FaultKind.HANG, at=1.0, duration=0.5)
        assert not s.active(0.999)
        assert s.active(1.0)
        assert s.active(1.499)
        assert not s.active(1.5)

    def test_windowed_kind_requires_duration(self):
        for kind in (
            FaultKind.HANG,
            FaultKind.STALE_REPORT,
            FaultKind.SLOWDOWN,
        ):
            with pytest.raises(FaultError):
                spec(kind, at=0.0)

    def test_delay_command_requires_delay(self):
        with pytest.raises(FaultError):
            spec(FaultKind.DELAY_COMMAND, at=0.0, duration=1.0)
        spec(FaultKind.DELAY_COMMAND, at=0.0, duration=1.0, delay=0.01)

    def test_slowdown_factor_bounds(self):
        with pytest.raises(FaultError):
            spec(FaultKind.SLOWDOWN, at=0.0, duration=1.0, factor=0.0)
        with pytest.raises(FaultError):
            spec(FaultKind.SLOWDOWN, at=0.0, duration=1.0, factor=1.5)

    def test_rejects_bad_fields(self):
        with pytest.raises(FaultError):
            spec(target="")
        with pytest.raises(FaultError):
            spec(at=-1.0)
        with pytest.raises(FaultError):
            spec(FaultKind.DROP_COMMAND, at=0.0, count=0)
        with pytest.raises(FaultError):
            FaultSpec("crash", target="rt", at=0.0)


class TestFaultPlan:
    def test_sorted_by_time_and_immutable(self):
        late = spec(at=5.0)
        early = spec(FaultKind.DROP_COMMAND, at=1.0)
        plan = FaultPlan([late, early])
        assert plan.specs == (early, late)
        grown = plan.add(spec(FaultKind.DROP_COMMAND, at=3.0, target="other"))
        assert len(plan) == 2  # original untouched
        assert len(grown) == 3
        assert grown.targets() == ("other", "rt")

    def test_for_target_filters(self):
        plan = FaultPlan([spec(target="a"), spec(target="b")])
        assert all(s.target == "a" for s in plan.for_target("a"))
        assert plan.for_target("missing") == ()

    def test_rejects_non_spec_entries(self):
        with pytest.raises(FaultError):
            FaultPlan([42])


class TestChaosConfig:
    def test_probability_validation(self):
        with pytest.raises(FaultError):
            ChaosConfig(report_failure=1.5)
        with pytest.raises(FaultError):
            ChaosConfig(command_drop=-0.1)
        with pytest.raises(FaultError):
            ChaosConfig(delay=-1.0)

    def test_rng_streams_are_deterministic_and_per_target(self):
        cfg = ChaosConfig(report_failure=0.5, seed=7)
        a1 = [cfg.rng_for("a").random() for _ in range(3)]
        a2 = [cfg.rng_for("a").random() for _ in range(3)]
        b = [cfg.rng_for("b").random() for _ in range(3)]
        assert a1 == a2
        assert a1 != b

    def test_fault_flags(self):
        assert not ChaosConfig().any_report_fault
        assert ChaosConfig(report_stale=0.1).any_report_fault
        assert ChaosConfig(command_delay=0.1).any_command_fault


class _StubEndpoint(RuntimeEndpoint):
    """Records applied commands; serves monotonically numbered reports."""

    def __init__(self, name="rt", nodes=2):
        self.name = name
        self.nodes = nodes
        self.applied = []
        self.reports_served = 0

    def report(self, time):
        self.reports_served += 1
        return StatusReport(
            runtime_name=self.name,
            time=time,
            tasks_executed=self.reports_served,
            active_threads=2,
            blocked_threads=0,
            active_per_node=(1,) * self.nodes,
            workers_per_node=(2,) * self.nodes,
            queue_length=0,
            cpu_load=1.0,
        )

    def apply(self, command):
        self.applied.append(command)


def _cmd():
    return ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=2)


class TestInjectionProxy:
    def test_refuses_stacking(self):
        sim = Simulator()
        proxy = InjectionProxy(_StubEndpoint(), sim)
        with pytest.raises(FaultError):
            InjectionProxy(proxy, sim)

    def test_clean_proxy_is_passthrough(self):
        sim = Simulator()
        stub = _StubEndpoint()
        proxy = InjectionProxy(stub, sim)
        report = proxy.report(0.5)
        assert report.runtime_name == "rt"
        proxy.apply(_cmd())
        assert len(stub.applied) == 1
        assert proxy.injected == []

    def test_crash_raises_and_fires_callback_once(self):
        sim = Simulator()
        stub = _StubEndpoint()
        halted = []
        plan = FaultPlan([spec(FaultKind.CRASH, at=1.0)])
        proxy = InjectionProxy(
            stub, sim, plan=plan, on_crash=lambda: halted.append(True)
        )
        assert proxy.report(0.5).tasks_executed == 1  # before the crash
        for t in (1.0, 2.0):
            with pytest.raises(EndpointUnavailable):
                proxy.report(t)
        with pytest.raises(EndpointUnavailable):
            proxy.apply(_cmd())
        assert halted == [True]
        assert proxy.crashed
        assert stub.applied == []

    def test_hang_window_recovers(self):
        sim = Simulator()
        plan = FaultPlan([spec(FaultKind.HANG, at=1.0, duration=0.5)])
        proxy = InjectionProxy(_StubEndpoint(), sim, plan=plan)
        proxy.report(0.9)
        with pytest.raises(EndpointUnavailable):
            proxy.report(1.2)
        assert proxy.report(1.6).runtime_name == "rt"
        assert not proxy.crashed

    def test_stale_report_replays_cache(self):
        sim = Simulator()
        plan = FaultPlan(
            [spec(FaultKind.STALE_REPORT, at=1.0, duration=1.0)]
        )
        proxy = InjectionProxy(_StubEndpoint(), sim, plan=plan)
        first = proxy.report(0.5)
        stale = proxy.report(1.5)
        assert stale is first  # replayed, not refreshed
        fresh = proxy.report(2.5)
        assert fresh.tasks_executed == first.tasks_executed + 1

    def test_corrupt_report_consumes_count(self):
        sim = Simulator()
        plan = FaultPlan(
            [spec(FaultKind.CORRUPT_REPORT, at=0.0, count=2)]
        )
        proxy = InjectionProxy(_StubEndpoint(), sim, plan=plan)
        for t in (0.1, 0.2):
            bad = proxy.report(t)
            assert bad.tasks_executed < 0  # implausible on purpose
        good = proxy.report(0.3)
        assert good.tasks_executed >= 0

    def test_drop_command_consumes_count(self):
        sim = Simulator()
        stub = _StubEndpoint()
        plan = FaultPlan([spec(FaultKind.DROP_COMMAND, at=0.0, count=1)])
        proxy = InjectionProxy(stub, sim, plan=plan)
        proxy.apply(_cmd())  # dropped
        proxy.apply(_cmd())  # delivered
        assert len(stub.applied) == 1
        assert [f.kind for f in proxy.injected] == [FaultKind.DROP_COMMAND]

    def test_delay_command_delivers_late(self):
        sim = Simulator()
        stub = _StubEndpoint()
        plan = FaultPlan(
            [
                spec(
                    FaultKind.DELAY_COMMAND,
                    at=0.0,
                    duration=1.0,
                    delay=0.25,
                )
            ]
        )
        proxy = InjectionProxy(stub, sim, plan=plan)
        proxy.apply(_cmd())
        assert stub.applied == []  # not yet
        sim.run_until(0.5)
        assert len(stub.applied) == 1

    def test_slowdown_scales_cpu_load(self):
        sim = Simulator()
        plan = FaultPlan(
            [spec(FaultKind.SLOWDOWN, at=0.0, duration=1.0, factor=0.5)]
        )
        proxy = InjectionProxy(_StubEndpoint(), sim, plan=plan)
        assert proxy.report(0.5).cpu_load == pytest.approx(0.5)

    def test_chaos_report_failures_are_seeded(self):
        def run(seed):
            sim = Simulator()
            chaos = ChaosConfig(report_failure=0.5, seed=seed)
            proxy = InjectionProxy(_StubEndpoint(), sim, chaos=chaos)
            outcomes = []
            for i in range(20):
                try:
                    proxy.report(float(i))
                    outcomes.append("ok")
                except EndpointUnavailable:
                    outcomes.append("fail")
            return outcomes

        assert run(3) == run(3)
        assert "fail" in run(3)
        assert run(3) != run(4)


class TestJournalFaultSpecs:
    def test_journal_kinds_are_one_shot(self):
        for kind in (
            FaultKind.TORN_TAIL,
            FaultKind.STALE_SNAPSHOT,
            FaultKind.DUPLICATE_SEGMENT,
        ):
            spec(kind, target="/tmp/j", at=0.0)  # duration 0 is fine
            with pytest.raises(FaultError):
                spec(kind, target="/tmp/j", at=0.0, duration=0.5)


class TestApplyJournalFault:
    def _journal_dir(self, tmp_path, *, snapshot=False, records=3):
        from repro.serve.persist import Journal

        journal = Journal.open(str(tmp_path), fsync=False)
        for i in range(records):
            journal.append({"kind": "register", "name": f"app{i}", "t": 0.0, "app": {}})
        if snapshot:
            journal.compact({"marker": "snap"})
            journal.append({"kind": "deregister", "name": "app0"})
        journal.close()
        return str(tmp_path)

    def test_wire_kind_rejected(self, tmp_path):
        from repro.faults import apply_journal_fault

        with pytest.raises(FaultError):
            apply_journal_fault(spec(FaultKind.CRASH, target=str(tmp_path)))

    def test_torn_tail_is_truncated_on_load(self, tmp_path):
        from repro.faults import apply_journal_fault
        from repro.serve.persist import load_journal

        path = self._journal_dir(tmp_path)
        clean = load_journal(path)
        hit = apply_journal_fault(
            spec(FaultKind.TORN_TAIL, target=path, at=0.0)
        )
        assert hit.endswith(".ndjson")
        loaded = load_journal(path)
        assert loaded.truncated_tail
        assert loaded.events == clean.events  # nothing valid was lost
        assert loaded.last_seq == clean.last_seq

    def test_stale_snapshot_falls_back_a_generation(self, tmp_path):
        from repro.faults import apply_journal_fault
        from repro.serve.persist import load_journal

        path = self._journal_dir(tmp_path, snapshot=True)
        clean = load_journal(path)
        hit = apply_journal_fault(
            spec(FaultKind.STALE_SNAPSHOT, target=path, at=0.0)
        )
        assert "snapshot" in hit
        loaded = load_journal(path)
        assert loaded.snapshot_fallbacks >= 1
        # Replaying the longer pre-snapshot chain lands on the same seq.
        assert loaded.last_seq == clean.last_seq

    def test_stale_snapshot_requires_a_snapshot(self, tmp_path):
        from repro.faults import apply_journal_fault

        path = self._journal_dir(tmp_path, snapshot=False)
        with pytest.raises(FaultError):
            apply_journal_fault(
                spec(FaultKind.STALE_SNAPSHOT, target=path, at=0.0)
            )

    def test_duplicate_segment_is_deduplicated_by_seq(self, tmp_path):
        from repro.faults import apply_journal_fault
        from repro.serve.persist import load_journal

        path = self._journal_dir(tmp_path)
        clean = load_journal(path)
        apply_journal_fault(
            spec(FaultKind.DUPLICATE_SEGMENT, target=path, at=0.0)
        )
        loaded = load_journal(path)
        assert loaded.duplicates_skipped > 0
        assert loaded.events == clean.events
        assert loaded.last_seq == clean.last_seq

    def test_duplicate_segment_requires_a_journal(self, tmp_path):
        from repro.faults import apply_journal_fault

        with pytest.raises(FaultError):
            apply_journal_fault(
                spec(FaultKind.DUPLICATE_SEGMENT, target=str(tmp_path), at=0.0)
            )

    def test_explicit_path_overrides_the_spec_target(self, tmp_path):
        from repro.faults import apply_journal_fault
        from repro.serve.persist import load_journal

        path = self._journal_dir(tmp_path)
        apply_journal_fault(
            spec(FaultKind.TORN_TAIL, target="/nonexistent", at=0.0),
            path=path,
        )
        assert load_journal(path).truncated_tail
