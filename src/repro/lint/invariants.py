"""Semantic spec-invariant checker for machine presets and the model.

Syntax rules catch malformed *code*; this module catches malformed
*physics*.  Every machine preset exported by
:mod:`repro.machine.presets` is loaded and driven through the analytic
model (:class:`~repro.core.model.NumaPerformanceModel`) on a fixed set
of example workloads — without touching the optimizer — and the model's
conservation laws are verified on the output:

``INV001`` — **bandwidth conservation**: no NUMA node hands out more
bandwidth than it has, and every GB/s granted to an application was
drawn from some node (the two totals balance).

``INV002`` — **water-filling caps at demand**: no thread group is
granted more bandwidth than it asked for, and no group's GFLOPS exceed
``min(bw x AI, peak x threads)``.

``INV003`` — **link capacity**: a NUMA-bad group's remote traffic never
exceeds the source->home link bandwidth, and NUMA-perfect groups draw
nothing remotely.

``INV004`` — **monotonicity**: a lone application's predicted GFLOPS
never decreases when it is given one more thread on the same node (the
paper's curves are non-decreasing by construction).

A violated invariant means a preset (or a model change) broke the
paper's Section III-A contract; the finding is reported as an ordinary
:class:`~repro.lint.engine.Violation` anchored at the preset function's
definition so it shows up in ``python -m repro check`` next to the
syntactic findings.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.allocation import ThreadAllocation
from repro.core.model import NumaPerformanceModel, Prediction
from repro.core.spec import AppSpec, Placement
from repro.errors import LintError, ReproError
from repro.lint.engine import Severity, Violation
from repro.machine import presets as presets_module
from repro.machine.topology import MachineTopology

__all__ = [
    "INVARIANT_IDS",
    "iter_presets",
    "example_workloads",
    "check_preset",
    "check_all_presets",
]

#: Invariant ids and their one-line summaries (the ``--rules`` catalogue).
INVARIANT_IDS = {
    "INV001": "node bandwidth conservation (allocated <= capacity, "
    "grants balance consumption)",
    "INV002": "water-filling caps at demand and roofline "
    "(grant <= demand, gflops <= min(bw*AI, peak*t))",
    "INV003": "inter-node flows within link bandwidth; NUMA-perfect "
    "groups draw nothing remotely",
    "INV004": "predicted GFLOPS monotone non-decreasing in thread count",
}

#: Absolute slack for float comparisons against the conservation laws.
_TOL = 1e-6


def iter_presets() -> Iterator[tuple[str, Callable[[], MachineTopology]]]:
    """Yield ``(name, zero-arg constructor)`` for every exported preset."""
    for name in presets_module.__all__:
        yield name, getattr(presets_module, name)


def _preset_anchor(name: str) -> tuple[str, int]:
    """(file, line) of a preset function, for violation records."""
    func = getattr(presets_module, name, None)
    if func is None:
        raise LintError(f"unknown machine preset '{name}'")
    try:
        path = inspect.getsourcefile(func) or "machine/presets.py"
        line = inspect.getsourcelines(func)[1]
    except (OSError, TypeError):
        path, line = "machine/presets.py", 1
    resolved = Path(path).resolve()
    if resolved.is_relative_to(Path.cwd()):
        path = str(resolved.relative_to(Path.cwd()))
    return path, line


def example_workloads(
    machine: MachineTopology,
) -> Iterator[tuple[str, list[AppSpec], ThreadAllocation]]:
    """Fixed example workloads exercising every code path of the model.

    Three shapes per machine: an *even* spread of a memory-bound, a
    compute-bound and (on multi-node machines) a NUMA-bad application;
    a *skewed* pile-up on node 0; and a *saturating* run giving one
    memory-bound application every core of every node.
    """
    apps = [
        AppSpec.memory_bound("mem", 0.5),
        AppSpec.compute_bound("comp", 10.0),
    ]
    if machine.num_nodes > 1:
        apps.append(AppSpec.numa_bad("bad", 1.0, home_node=0))
    n = machine.num_nodes
    min_cores = min(node.num_cores for node in machine.nodes)

    if len(apps) <= min_cores:
        yield "even", apps, ThreadAllocation.from_mapping(
            {app.name: [1] * n for app in apps}
        )

    node0 = machine.node(0).num_cores
    per_app = node0 // len(apps)
    if per_app >= 1:
        yield "skewed", apps, ThreadAllocation.from_mapping(
            {
                app.name: [per_app] + [0] * (n - 1)
                for app in apps
            }
        )

    mem = [AppSpec.memory_bound("mem", 0.5)]
    yield "saturating", mem, ThreadAllocation.from_mapping(
        {"mem": [node.num_cores for node in machine.nodes]}
    )


def _check_conservation(
    label: str, prediction: Prediction
) -> Iterator[str]:
    """INV001 findings for one prediction, as message strings."""
    for node in prediction.nodes:
        if node.local_consumed > node.local_capacity + _TOL:
            yield (
                f"[{label}] node {node.node_id} grants "
                f"{node.local_consumed:.6f} GB/s locally but only "
                f"{node.local_capacity:.6f} remained after remote service"
            )
        if node.consumed > node.capacity + _TOL:
            yield (
                f"[{label}] node {node.node_id} serves "
                f"{node.consumed:.6f} GB/s over its "
                f"{node.capacity:.6f} GB/s capacity"
            )
    granted = sum(a.bandwidth for a in prediction.apps)
    consumed = prediction.total_bandwidth
    if abs(granted - consumed) > _TOL:
        yield (
            f"[{label}] apps were granted {granted:.6f} GB/s but nodes "
            f"recorded {consumed:.6f} GB/s consumed (leak)"
        )


def _check_demand_caps(
    label: str,
    machine: MachineTopology,
    apps: Sequence[AppSpec],
    prediction: Prediction,
) -> Iterator[str]:
    """INV002 findings for one prediction."""
    by_name = {app.name: app for app in apps}
    for app_result in prediction.apps:
        spec = by_name[app_result.name]
        for group in app_result.groups:
            want = group.demand_per_thread * group.threads
            if group.total_bw > want + _TOL:
                yield (
                    f"[{label}] app '{spec.name}' node "
                    f"{group.source_node}: granted {group.total_bw:.6f} "
                    f"GB/s above its demand {want:.6f}"
                )
            core_peak = machine.node(group.source_node).cores[0].peak_gflops
            roof = min(
                group.total_bw * spec.arithmetic_intensity,
                spec.peak_gflops(core_peak) * group.threads,
            )
            if group.gflops > roof + _TOL:
                yield (
                    f"[{label}] app '{spec.name}' node "
                    f"{group.source_node}: {group.gflops:.6f} GFLOPS "
                    f"exceeds its roofline {roof:.6f}"
                )


def _check_link_caps(
    label: str,
    machine: MachineTopology,
    apps: Sequence[AppSpec],
    prediction: Prediction,
) -> Iterator[str]:
    """INV003 findings for one prediction."""
    by_name = {app.name: app for app in apps}
    for app_result in prediction.apps:
        spec = by_name[app_result.name]
        for group in app_result.groups:
            if spec.placement is Placement.NUMA_PERFECT:
                if group.remote_bw > _TOL:
                    yield (
                        f"[{label}] NUMA-perfect app '{spec.name}' drew "
                        f"{group.remote_bw:.6f} GB/s remotely"
                    )
            elif spec.placement is Placement.SINGLE_NODE:
                home = spec.home_node
                if group.source_node == home:
                    continue
                link = machine.bandwidth(group.source_node, home)
                if group.remote_bw > link + _TOL:
                    yield (
                        f"[{label}] app '{spec.name}' pulls "
                        f"{group.remote_bw:.6f} GB/s over the "
                        f"{group.source_node}->{home} link rated "
                        f"{link:.6f} GB/s"
                    )


def _check_monotonicity(
    machine: MachineTopology, model: NumaPerformanceModel
) -> Iterator[str]:
    """INV004 findings: lone-app GFLOPS vs thread count on node 0."""
    n = machine.num_nodes
    cores0 = machine.node(0).num_cores
    for app in (
        AppSpec.memory_bound("mem", 0.5),
        AppSpec.compute_bound("comp", 10.0),
    ):
        previous = 0.0
        for threads in range(1, cores0 + 1):
            counts = np.zeros((1, n), dtype=np.int64)
            counts[0, 0] = threads
            allocation = ThreadAllocation(
                app_names=(app.name,), counts=counts
            )
            total = model.predict(machine, [app], allocation).total_gflops
            if total < previous - _TOL:
                yield (
                    f"[monotonicity] app '{app.name}': {threads} threads "
                    f"predict {total:.6f} GFLOPS, below {previous:.6f} "
                    f"at {threads - 1}"
                )
            previous = total


def check_preset(
    name: str, machine: MachineTopology | None = None
) -> list[Violation]:
    """Verify every invariant for one preset; empty list means clean."""
    file, line = _preset_anchor(name)
    if machine is None:
        machine = getattr(presets_module, name)()
    model = NumaPerformanceModel()
    findings: list[tuple[str, str]] = []
    try:
        for label, apps, allocation in example_workloads(machine):
            prediction = model.predict(machine, apps, allocation)
            findings += [
                ("INV001", m)
                for m in _check_conservation(label, prediction)
            ]
            findings += [
                ("INV002", m)
                for m in _check_demand_caps(label, machine, apps, prediction)
            ]
            findings += [
                ("INV003", m)
                for m in _check_link_caps(label, machine, apps, prediction)
            ]
        findings += [
            ("INV004", m) for m in _check_monotonicity(machine, model)
        ]
    except ReproError as exc:
        findings.append(
            ("INV001", f"model rejected preset '{name}': {exc}")
        )
    return [
        Violation(
            file=file,
            line=line,
            rule_id=rule_id,
            message=f"preset '{name}': {message}",
            severity=Severity.ERROR,
        )
        for rule_id, message in findings
    ]


def check_all_presets() -> list[Violation]:
    """Run :func:`check_preset` over every exported machine preset."""
    out: list[Violation] = []
    for name, _ in iter_presets():
        out.extend(check_preset(name))
    return out
