"""Task-graph workload generators for tests and benchmarks.

Shapes used throughout the suite: embarrassingly parallel fans, dependency
chains (zero parallelism), layered fork-join graphs (the iteration
structure of the producer-consumer scenario), 1-D stencil graphs (each
task depends on its neighbours one layer up — loose synchronisation), and
seeded random DAGs for property tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.task import Task
from repro.runtime.taskgraph import TaskGraph

__all__ = [
    "fan",
    "chain",
    "fork_join",
    "stencil_1d",
    "random_dag",
]


def _mk(name: str, flops: float, ai: float, **kw) -> Task:
    return Task(name=name, flops=flops, arithmetic_intensity=ai, **kw)


def fan(
    width: int, *, flops: float = 0.01, ai: float = 4.0
) -> TaskGraph:
    """``width`` independent tasks (maximum parallelism)."""
    if width <= 0:
        raise ConfigurationError("width must be positive")
    g = TaskGraph()
    for i in range(width):
        g.add(_mk(f"fan{i}", flops, ai))
    return g


def chain(
    length: int, *, flops: float = 0.01, ai: float = 4.0
) -> TaskGraph:
    """``length`` tasks in a straight dependence chain (parallelism 1)."""
    if length <= 0:
        raise ConfigurationError("length must be positive")
    g = TaskGraph()
    prev: Task | None = None
    for i in range(length):
        t = _mk(f"chain{i}", flops, ai)
        g.add(t)
        if prev is not None:
            g.add_edge(prev, t)
        prev = t
    return g


def fork_join(
    rounds: int,
    width: int,
    *,
    flops: float = 0.01,
    ai: float = 4.0,
    join_flops: float | None = None,
) -> TaskGraph:
    """``rounds`` of a ``width``-wide fan joined by a sink each round."""
    if rounds <= 0 or width <= 0:
        raise ConfigurationError("rounds and width must be positive")
    g = TaskGraph()
    prev_join: Task | None = None
    for r in range(rounds):
        fan_tasks = []
        for j in range(width):
            t = _mk(f"r{r}.t{j}", flops, ai)
            g.add(t)
            if prev_join is not None:
                g.add_edge(prev_join, t)
            fan_tasks.append(t)
        join = _mk(f"r{r}.join", join_flops or flops * 0.1, ai)
        g.add(join)
        for t in fan_tasks:
            g.add_edge(t, join)
        prev_join = join
    return g


def stencil_1d(
    layers: int,
    width: int,
    *,
    flops: float = 0.01,
    ai: float = 0.5,
    num_nodes: int | None = None,
) -> TaskGraph:
    """Layered 1-D stencil: task (l, i) depends on (l-1, i-1..i+1).

    With ``num_nodes`` given, tasks get NUMA affinity by block partition of
    the spatial axis — the canonical NUMA-perfect decomposition whose edge
    tasks still read a neighbour's node.
    """
    if layers <= 0 or width <= 0:
        raise ConfigurationError("layers and width must be positive")
    g = TaskGraph()
    prev: list[Task] = []
    for l in range(layers):
        cur: list[Task] = []
        for i in range(width):
            affinity = None
            if num_nodes is not None:
                affinity = min(i * num_nodes // width, num_nodes - 1)
            t = _mk(f"l{l}.x{i}", flops, ai, affinity_node=affinity)
            g.add(t)
            if prev:
                for di in (-1, 0, 1):
                    j = i + di
                    if 0 <= j < width:
                        g.add_edge(prev[j], t)
            cur.append(t)
        prev = cur
    return g


def random_dag(
    num_tasks: int,
    *,
    edge_probability: float = 0.1,
    flops: float = 0.01,
    ai: float = 4.0,
    seed: int = 0,
) -> TaskGraph:
    """Seeded random DAG: edges only from lower to higher task index."""
    if num_tasks <= 0:
        raise ConfigurationError("num_tasks must be positive")
    if not 0 <= edge_probability <= 1:
        raise ConfigurationError("edge_probability must be in [0,1]")
    rng = np.random.default_rng(seed)
    g = TaskGraph()
    tasks = [
        _mk(f"rnd{i}", flops * float(rng.uniform(0.5, 1.5)), ai)
        for i in range(num_tasks)
    ]
    for t in tasks:
        g.add(t)
    for i in range(num_tasks):
        for j in range(i + 1, num_tasks):
            if rng.random() < edge_probability:
                g.add_edge(tasks[i], tasks[j])
    return g
