"""The documentation is executable: the `pycon` blocks in the docs run
as doctests, the cross-links point at files that exist, and the new
example script completes with its oracle assertion intact."""

import doctest
import pathlib
import re
import runpy

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"

DOCTESTED = [
    DOCS / "MODEL.md",
    DOCS / "OPTIMIZER.md",
    DOCS / "TUTORIAL.md",
    DOCS / "STATIC_ANALYSIS.md",
    DOCS / "SERVICE.md",
    DOCS / "GATEWAY.md",
    DOCS / "BENCHMARKS.md",
]


class TestDoctests:
    @pytest.mark.parametrize(
        "path", DOCTESTED, ids=lambda p: p.name
    )
    def test_pycon_blocks_pass(self, path):
        results = doctest.testfile(
            str(path),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert results.attempted > 0, f"{path.name} has no doctests"
        assert results.failed == 0

    def test_tutorial_covers_the_service(self):
        text = (DOCS / "TUTORIAL.md").read_text()
        for needle in (
            "AllocationService",
            "ServiceClient",
            "reoptimizations",
            "deregister",
        ):
            assert needle in text


class TestCrossLinks:
    @pytest.mark.parametrize(
        "source",
        sorted(DOCS.glob("*.md")) + [ROOT / "README.md", ROOT / "DESIGN.md"],
        ids=lambda p: p.name,
    )
    def test_relative_markdown_links_resolve(self, source):
        text = source.read_text()
        for match in re.finditer(r"\]\(([^)#]+?\.md)(#[^)]*)?\)", text):
            target = (source.parent / match.group(1)).resolve()
            assert target.exists(), (
                f"{source.name} links to missing {match.group(1)}"
            )

    def test_readme_mentions_the_service_docs(self):
        text = (ROOT / "README.md").read_text()
        assert "docs/SERVICE.md" in text
        assert "docs/TUTORIAL.md" in text


class TestServiceChurnExample:
    def test_example_runs_and_oracle_holds(self, capsys):
        # The script asserts live == offline internally; a failure
        # raises out of runpy.
        runpy.run_path(
            str(ROOT / "examples" / "service_churn.py"),
            run_name="__main__",
        )
        out = capsys.readouterr().out
        assert "Allocation service under churn" in out
        assert "== offline exhaustive" in out
