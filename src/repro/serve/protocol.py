"""The allocation service's newline-delimited-JSON wire protocol.

One message per line, one JSON object per message, a ``type`` tag on
every object.  Four request types flow from a runtime to the service —
``register``, ``deregister``, ``progress-report``, ``query-allocation``
— and three reply/stream types flow back: ``ack``, ``allocation``
(both as the direct reply to a request, marked by ``in_reply_to``, and
as an unsolicited pushed update when a re-optimization changes the
session's thread counts), ``error``, plus a terminal ``shutdown``
notice sent to every connected session when the service drains.

The codec is strict both ways: :func:`decode_message` validates field
presence, types, and value ranges before anything reaches the service
core, so a malformed line is rejected at the socket with a
:class:`~repro.errors.ServiceError` instead of corrupting the registry;
:func:`encode_message` always emits a single ``\\n``-free line.  The
full message reference lives in ``docs/SERVICE.md``.
"""

from __future__ import annotations

import json
import numbers
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.spec import AppSpec, Placement
from repro.errors import ServiceError

__all__ = [
    "ERROR_CODES",
    "Register",
    "Deregister",
    "ProgressReport",
    "QueryAllocation",
    "Ack",
    "AllocationUpdate",
    "ErrorReply",
    "ShutdownNotice",
    "app_spec_to_dict",
    "app_spec_from_dict",
    "encode_message",
    "decode_message",
]

#: Every machine-readable rejection code an :class:`ErrorReply` may
#: carry, with what each one means.  This table is the single place a
#: code is minted: the codec rejects unknown codes, and
#: ``tests/test_serve_protocol.py`` asserts that every code here is
#: actually produced by some service path (and none is produced that
#: is not here), so the set cannot drift silently.
ERROR_CODES: dict[str, str] = {
    "malformed": "the wire line failed JSON or message validation",
    "unsupported": "a reply/stream type was sent as a request",
    "invalid-request": "the request violated a service invariant",
    "unknown-session": "no session is registered under that name",
    "duplicate-session": "a live session already holds that name",
    "closed-session": "the named session already deregistered/closed",
    "overloaded": "admission refused: the max_sessions cap is reached",
    "draining": "the service is shutting down; admission is closed",
    "backwards-report": "the report's timestamp went backwards",
    "no-allocation": "no allocation has been computed yet",
    "deadline-exceeded": "the command sat queued past its deadline",
    "frame-too-large": "the NDJSON line exceeded the frame cap",
}


def app_spec_to_dict(spec: AppSpec) -> dict:
    """JSON-safe form of an :class:`~repro.core.spec.AppSpec`."""
    return {
        "name": spec.name,
        "arithmetic_intensity": spec.arithmetic_intensity,
        "placement": spec.placement.value,
        "home_node": spec.home_node,
        "peak_gflops_per_thread": spec.peak_gflops_per_thread,
    }


def app_spec_from_dict(data: Mapping) -> AppSpec:
    """Inverse of :func:`app_spec_to_dict`; validates via ``AppSpec``."""
    if not isinstance(data, Mapping):
        raise ServiceError(f"'app' must be an object, got {data!r}")
    unknown = set(data) - {
        "name",
        "arithmetic_intensity",
        "placement",
        "home_node",
        "peak_gflops_per_thread",
    }
    if unknown:
        raise ServiceError(f"unknown app fields: {sorted(unknown)}")
    try:
        placement = Placement(data.get("placement", "numa-perfect"))
    except ValueError as exc:
        raise ServiceError(
            f"unknown placement {data.get('placement')!r} "
            f"(choose from {[p.value for p in Placement]})"
        ) from exc
    try:
        return AppSpec(
            name=data.get("name", ""),
            arithmetic_intensity=data.get("arithmetic_intensity", 0.0),
            placement=placement,
            home_node=data.get("home_node"),
            peak_gflops_per_thread=data.get("peak_gflops_per_thread"),
        )
    except Exception as exc:
        raise ServiceError(f"invalid app spec: {exc}") from exc


def _require_name(data: Mapping, msg_type: str) -> str:
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ServiceError(
            f"'{msg_type}' needs a non-empty string 'name', got {name!r}"
        )
    return name


def _require_number(value, what: str, *, minimum: float | None = None):
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise ServiceError(f"{what} must be a number, got {value!r}")
    if minimum is not None and value < minimum:
        raise ServiceError(f"{what} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True, slots=True)
class Register:
    """Admission request: a new application joins the live workload."""

    name: str
    app: AppSpec

    TYPE = "register"

    def to_dict(self) -> dict:
        """Wire form of the message."""
        return {
            "type": self.TYPE,
            "name": self.name,
            "app": app_spec_to_dict(self.app),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Register":
        """Parse and validate the wire form."""
        name = _require_name(data, cls.TYPE)
        app = app_spec_from_dict(data.get("app"))
        if app.name != name:
            raise ServiceError(
                f"register name {name!r} does not match app name "
                f"{app.name!r}"
            )
        return cls(name=name, app=app)


@dataclass(frozen=True, slots=True)
class Deregister:
    """Departure notice: the application leaves the live workload."""

    name: str

    TYPE = "deregister"

    def to_dict(self) -> dict:
        """Wire form of the message."""
        return {"type": self.TYPE, "name": self.name}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Deregister":
        """Parse and validate the wire form."""
        return cls(name=_require_name(data, cls.TYPE))


@dataclass(frozen=True, slots=True)
class ProgressReport:
    """Periodic heartbeat with application-defined progress counters.

    ``acked_epoch`` is the allocation epoch the runtime last *applied*;
    when it trails the service's current epoch the service re-pushes the
    session's allocation, giving command delivery at-least-once
    semantics over a lossy path (see ``docs/SERVICE.md``).
    """

    name: str
    time: float
    progress: Mapping[str, float] = field(default_factory=dict)
    cpu_load: float = 0.0
    acked_epoch: int | None = None

    TYPE = "progress-report"

    def to_dict(self) -> dict:
        """Wire form of the message."""
        return {
            "type": self.TYPE,
            "name": self.name,
            "time": self.time,
            "progress": dict(self.progress),
            "cpu_load": self.cpu_load,
            "acked_epoch": self.acked_epoch,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ProgressReport":
        """Parse and validate the wire form."""
        name = _require_name(data, cls.TYPE)
        time = _require_number(data.get("time"), "'time'", minimum=0.0)
        progress = data.get("progress", {})
        if not isinstance(progress, Mapping):
            raise ServiceError(
                f"'progress' must be an object, got {progress!r}"
            )
        for key, value in progress.items():
            if not isinstance(key, str):
                raise ServiceError(f"progress keys must be strings: {key!r}")
            _require_number(value, f"progress[{key!r}]")
        cpu_load = _require_number(
            data.get("cpu_load", 0.0), "'cpu_load'", minimum=0.0
        )
        acked = data.get("acked_epoch")
        if acked is not None:
            if isinstance(acked, bool) or not isinstance(
                acked, numbers.Integral
            ):
                raise ServiceError(
                    f"'acked_epoch' must be an integer, got {acked!r}"
                )
            acked = int(acked)
        return cls(
            name=name,
            time=float(time),
            progress=dict(progress),
            cpu_load=float(cpu_load),
            acked_epoch=acked,
        )


@dataclass(frozen=True, slots=True)
class QueryAllocation:
    """Pull request for the session's current per-node thread counts."""

    name: str

    TYPE = "query-allocation"

    def to_dict(self) -> dict:
        """Wire form of the message."""
        return {"type": self.TYPE, "name": self.name}

    @classmethod
    def from_dict(cls, data: Mapping) -> "QueryAllocation":
        """Parse and validate the wire form."""
        return cls(name=_require_name(data, cls.TYPE))


@dataclass(frozen=True, slots=True)
class Ack:
    """Positive reply to a request that returns no allocation."""

    name: str
    epoch: int
    in_reply_to: str

    TYPE = "ack"

    def to_dict(self) -> dict:
        """Wire form of the message."""
        return {
            "type": self.TYPE,
            "name": self.name,
            "epoch": self.epoch,
            "in_reply_to": self.in_reply_to,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Ack":
        """Parse the wire form."""
        return cls(
            name=_require_name(data, cls.TYPE),
            epoch=int(data.get("epoch", 0)),
            in_reply_to=str(data.get("in_reply_to", "")),
        )


@dataclass(frozen=True, slots=True)
class AllocationUpdate:
    """One session's thread counts: the service's downward command.

    Sent as the direct reply to ``query-allocation`` (``in_reply_to``
    set) and pushed unsolicited after every re-optimization that
    changes the session's counts (``in_reply_to`` is ``None``).
    ``per_node`` is exactly a ``SET_ALLOCATION``
    :class:`~repro.agent.protocol.ThreadCommand` payload.
    """

    name: str
    per_node: tuple[int, ...]
    epoch: int
    score: float
    degraded: bool = False
    in_reply_to: str | None = None

    TYPE = "allocation"

    def to_dict(self) -> dict:
        """Wire form of the message."""
        return {
            "type": self.TYPE,
            "name": self.name,
            "per_node": list(self.per_node),
            "epoch": self.epoch,
            "score": self.score,
            "degraded": self.degraded,
            "in_reply_to": self.in_reply_to,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AllocationUpdate":
        """Parse and validate the wire form."""
        name = _require_name(data, cls.TYPE)
        per_node = data.get("per_node")
        if not isinstance(per_node, (list, tuple)) or not per_node:
            raise ServiceError(
                f"'per_node' must be a non-empty array, got {per_node!r}"
            )
        for x in per_node:
            if isinstance(x, bool) or not isinstance(x, numbers.Integral):
                raise ServiceError(
                    f"per_node entries must be integers, got {x!r}"
                )
            if x < 0:
                raise ServiceError(
                    f"per_node entries must be >= 0, got {x}"
                )
        reply_to = data.get("in_reply_to")
        return cls(
            name=name,
            per_node=tuple(int(x) for x in per_node),
            epoch=int(data.get("epoch", 0)),
            score=float(
                _require_number(data.get("score", 0.0), "'score'")
            ),
            degraded=bool(data.get("degraded", False)),
            in_reply_to=None if reply_to is None else str(reply_to),
        )


@dataclass(frozen=True, slots=True)
class ErrorReply:
    """Negative reply: the request was rejected (session state intact).

    ``code`` is one of :data:`ERROR_CODES` (or ``None`` for a legacy
    peer) so clients can branch on the kind of rejection — retry later
    on ``overloaded``, re-register on ``unknown-session`` — without
    parsing the human-readable ``error`` text.
    """

    error: str
    in_reply_to: str | None = None
    code: str | None = None

    TYPE = "error"

    def to_dict(self) -> dict:
        """Wire form of the message."""
        return {
            "type": self.TYPE,
            "error": self.error,
            "in_reply_to": self.in_reply_to,
            "code": self.code,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ErrorReply":
        """Parse the wire form."""
        error = data.get("error")
        if not isinstance(error, str) or not error:
            raise ServiceError(
                f"'error' must be a non-empty string, got {error!r}"
            )
        code = data.get("code")
        if code is not None and code not in ERROR_CODES:
            raise ServiceError(
                f"unknown error code {code!r} "
                f"(known: {sorted(ERROR_CODES)})"
            )
        reply_to = data.get("in_reply_to")
        return cls(
            error=error,
            in_reply_to=None if reply_to is None else str(reply_to),
            code=code,
        )


@dataclass(frozen=True, slots=True)
class ShutdownNotice:
    """Terminal stream message: the service is draining; re-register
    against the replacement instance."""

    reason: str = "draining"

    TYPE = "shutdown"

    def to_dict(self) -> dict:
        """Wire form of the message."""
        return {"type": self.TYPE, "reason": self.reason}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ShutdownNotice":
        """Parse the wire form."""
        return cls(reason=str(data.get("reason", "draining")))


#: Wire tag -> message class, for :func:`decode_message`.
_MESSAGE_TYPES = {
    cls.TYPE: cls
    for cls in (
        Register,
        Deregister,
        ProgressReport,
        QueryAllocation,
        Ack,
        AllocationUpdate,
        ErrorReply,
        ShutdownNotice,
    )
}


def encode_message(message) -> str:
    """Render a message as one newline-free JSON line (no trailing ``\\n``)."""
    try:
        data = message.to_dict()
    except AttributeError as exc:
        raise ServiceError(
            f"not a protocol message: {message!r}"
        ) from exc
    return json.dumps(data, separators=(",", ":"), sort_keys=True)


def decode_message(line: str):
    """Parse one wire line into its message object.

    Raises
    ------
    ServiceError
        On malformed JSON, a missing/unknown ``type`` tag, or any field
        that fails the message's validation.
    """
    line = line.strip()
    if not line:
        raise ServiceError("empty protocol line")
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ServiceError(
            f"protocol line must be a JSON object, got {type(data).__name__}"
        )
    msg_type = data.get("type")
    cls = _MESSAGE_TYPES.get(msg_type)
    if cls is None:
        raise ServiceError(
            f"unknown message type {msg_type!r} "
            f"(known: {sorted(_MESSAGE_TYPES)})"
        )
    return cls.from_dict(data)
