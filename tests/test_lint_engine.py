"""Engine-level tests: registry, suppression, reporters, CLI wiring."""

import ast
import json

import pytest

from repro.errors import LintError
from repro.lint.engine import (
    FileContext,
    LintEngine,
    Rule,
    Severity,
    Violation,
    all_rules,
    format_text,
    get_rule,
    register,
    violations_from_json,
    violations_to_json,
)


class TestRegistry:
    def test_standard_pack_registered(self):
        rules = all_rules()
        expected = {
            "LOCK001",
            "OBS001",
            "OBS002",
            "DEF001",
            "EXC001",
            "EXC002",
            "TIME001",
            "FLT001",
            "UNIT001",
            "API001",
        }
        assert expected <= set(rules)

    def test_get_rule_known_and_unknown(self):
        assert get_rule("DEF001").rule_id == "DEF001"
        with pytest.raises(LintError):
            get_rule("NOPE999")

    def test_engine_rejects_unknown_rule_id(self):
        with pytest.raises(LintError):
            LintEngine(rules=["NOPE999"])

    def test_register_rejects_bad_id_and_missing_summary(self):
        with pytest.raises(LintError):

            @register
            class BadId(Rule):
                rule_id = "lowercase1"
                summary = "x"

        with pytest.raises(LintError):

            @register
            class NoSummary(Rule):
                rule_id = "TSU001"

    def test_custom_rule_roundtrip(self):
        @register
        class GlobalStatement(Rule):
            rule_id = "TST001"
            severity = Severity.WARNING
            summary = "global statement (test-only rule)"

            def check(self, ctx):
                for node in ctx.walk():
                    if isinstance(node, ast.Global):
                        yield self.violation(ctx, node, "global used")

        engine = LintEngine(rules=["TST001"])
        hits = engine.check_source("def f():\n    global x\n    x = 1\n")
        assert [v.rule_id for v in hits] == ["TST001"]
        assert hits[0].line == 2
        assert hits[0].severity is Severity.WARNING


class TestFileContext:
    def test_parent_links_and_enclosing_scopes(self):
        src = (
            "class C:\n"
            "    def m(self):\n"
            "        return 1 + 2\n"
        )
        ctx = FileContext("<t>", src)
        binop = next(
            n for n in ctx.walk() if isinstance(n, ast.BinOp)
        )
        func = ctx.enclosing_function(binop)
        assert func is not None and func.name == "m"
        cls = ctx.enclosing_class(binop)
        assert cls is not None and cls.name == "C"
        assert ctx.tree in list(ctx.parents(binop))

    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError):
            FileContext("<t>", "def broken(:\n")


class TestNoqa:
    SRC = "def f(x=[]):\n    return x\n"

    def test_violation_without_noqa(self):
        hits = LintEngine(rules=["DEF001"]).check_source(self.SRC)
        assert len(hits) == 1

    def test_targeted_noqa_suppresses(self):
        src = "def f(x=[]):  # repro: noqa[DEF001]\n    return x\n"
        assert LintEngine(rules=["DEF001"]).check_source(src) == []

    def test_bare_noqa_suppresses_everything(self):
        src = "def f(x=[], y={}):  # repro: noqa\n    return x, y\n"
        assert LintEngine(rules=["DEF001"]).check_source(src) == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        src = "def f(x=[]):  # repro: noqa[LOCK001]\n    return x\n"
        hits = LintEngine(rules=["DEF001"]).check_source(src)
        assert len(hits) == 1

    def test_noqa_list_with_spaces(self):
        src = (
            "def f(x=[]):  # repro: noqa[LOCK001, DEF001]\n"
            "    return x\n"
        )
        assert LintEngine(rules=["DEF001"]).check_source(src) == []


class TestReporters:
    VIOLATIONS = [
        Violation("a.py", 3, "DEF001", "mutable default", Severity.ERROR),
        Violation("b.py", 7, "TIME001", "wall clock", Severity.WARNING),
    ]

    def test_json_roundtrip(self):
        text = violations_to_json(self.VIOLATIONS)
        assert violations_from_json(text) == self.VIOLATIONS
        # And the payload is plain JSON with the documented fields.
        payload = json.loads(text)
        assert payload[0]["rule_id"] == "DEF001"
        assert payload[0]["severity"] == "error"
        assert payload[1]["severity"] == "warning"

    def test_format_text_lists_and_counts(self):
        out = format_text(self.VIOLATIONS)
        assert "a.py:3: DEF001 [error] mutable default" in out
        assert out.endswith("1 error(s), 1 warning(s)")

    def test_format_text_clean(self):
        assert format_text([]) == "ok: no violations"


class TestCheckPaths:
    def test_walks_directories_and_files(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text(
            "def f(x=[]):\n    return x\n"
        )
        (tmp_path / "ok.py").write_text("def g(x=None):\n    return x\n")
        engine = LintEngine(rules=["DEF001"])
        hits = engine.check_paths([tmp_path])
        assert [v.rule_id for v in hits] == ["DEF001"]
        assert hits[0].file.endswith("bad.py")
        assert engine.check_paths([tmp_path / "ok.py"]) == []

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError):
            LintEngine(rules=["DEF001"]).check_paths(
                [tmp_path / "missing.py"]
            )


class TestCli:
    def run(self, argv):
        from repro.__main__ import main

        return main(argv)

    def test_check_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("def g(x=None):\n    return x\n")
        code = self.run(["check", str(f), "--no-invariants"])
        assert code == 0
        assert "ok: no violations" in capsys.readouterr().out

    def test_check_bad_file_exits_one(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text("def f(x=[]):\n    return x\n")
        code = self.run(["check", str(f), "--no-invariants"])
        assert code == 1
        assert "DEF001" in capsys.readouterr().out

    def test_fail_on_warning_gates_warnings(self, tmp_path, capsys):
        f = tmp_path / "warn.py"
        f.write_text(
            "import time\n\n"
            "def f():\n"
            "    return time.time()\n"
        )
        assert self.run(["check", str(f), "--no-invariants"]) == 0
        capsys.readouterr()
        code = self.run(
            ["check", str(f), "--no-invariants", "--fail-on", "warning"]
        )
        assert code == 1
        assert "TIME001" in capsys.readouterr().out

    def test_rules_with_no_ids_prints_catalogue(self, capsys):
        assert self.run(["check", "--rules"]) == 0
        out = capsys.readouterr().out
        listed = {
            line.split()[0]
            for line in out.splitlines()
            if line.strip()
        }
        assert len(listed) >= 8
        assert {"LOCK001", "DEF001", "UNIT001", "INV001"} <= listed

    def test_rules_selection_restricts(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text("def f(x=[]):\n    x == 1.5\n    return x\n")
        code = self.run(
            ["check", str(f), "--no-invariants", "--rules", "FLT001"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FLT001" in out and "DEF001" not in out

    def test_json_output_parses(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text("def f(x=[]):\n    return x\n")
        code = self.run(["check", str(f), "--no-invariants", "--json"])
        assert code == 1
        parsed = violations_from_json(capsys.readouterr().out)
        assert parsed[0].rule_id == "DEF001"
