"""Unit tests for the tracer."""

from repro.sim.trace import TraceKind, Tracer


class TestTracer:
    def test_emit_and_iterate(self):
        t = Tracer()
        t.emit(0.0, TraceKind.TASK_STARTED, "w0", label="t0")
        t.emit(1.0, TraceKind.TASK_FINISHED, "w0", label="t0")
        assert len(t) == 2
        assert [e.kind for e in t] == [
            TraceKind.TASK_STARTED,
            TraceKind.TASK_FINISHED,
        ]

    def test_disabled_is_noop(self):
        t = Tracer(enabled=False)
        t.emit(0.0, TraceKind.COMMAND, "agent")
        assert len(t) == 0

    def test_filter_by_kind_and_subject(self):
        t = Tracer()
        t.emit(0.0, TraceKind.TASK_STARTED, "a")
        t.emit(0.0, TraceKind.TASK_STARTED, "b")
        t.emit(0.0, TraceKind.COMMAND, "a")
        assert len(t.filter(kind=TraceKind.TASK_STARTED)) == 2
        assert len(t.filter(subject="a")) == 2
        assert len(t.filter(kind=TraceKind.COMMAND, subject="a")) == 1

    def test_filter_predicate(self):
        t = Tracer()
        t.emit(0.0, TraceKind.CUSTOM, "x", value=1)
        t.emit(0.0, TraceKind.CUSTOM, "x", value=2)
        out = t.filter(predicate=lambda e: e.detail["value"] > 1)
        assert len(out) == 1

    def test_count(self):
        t = Tracer()
        for _ in range(3):
            t.emit(0.0, TraceKind.THREAD_BLOCKED, "w")
        assert t.count(TraceKind.THREAD_BLOCKED) == 3
        assert t.count(TraceKind.THREAD_UNBLOCKED) == 0

    def test_clear(self):
        t = Tracer()
        t.emit(0.0, TraceKind.CUSTOM, "x")
        t.clear()
        assert len(t) == 0

    def test_render_limit(self):
        t = Tracer()
        for i in range(5):
            t.emit(float(i), TraceKind.CUSTOM, f"s{i}")
        text = t.render(limit=2)
        assert "s0" in text and "s1" in text
        assert "3 more" in text
