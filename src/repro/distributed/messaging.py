"""An MPI-flavoured communication model for the Section V experiments.

Most large scientific applications are "usually ... MPI" (Section V), so
the distributed layer needs communication costs, not just compute rates.
:class:`NetworkModel` prices the three operations the experiments use —
point-to-point transfers, barriers, and allreduces — with the standard
latency/bandwidth (alpha-beta) model and logarithmic trees for the
collectives.

:class:`BspProgram` combines communication with the per-rank compute-rate
profiles of :mod:`repro.distributed.partition` into a bulk-synchronous
iteration model with three synchronisation disciplines:

* ``GLOBAL`` — a barrier/allreduce after every iteration (the paper's
  tightly synchronised case);
* ``NEIGHBOR`` — halo exchange with nearest neighbours only (the common
  stencil pattern: looser than a barrier, skew propagates at one rank
  per iteration);
* ``NONE`` — independent ranks (the fully loose limit).

:class:`LossyNetworkModel` and :class:`ReliableChannel` extend the model
to unreliable links: messages are lost or duplicated with seeded
probabilities, and delivery retries within a bounded *retransmit budget*
— the distributed-layer counterpart of the agent's bounded report
retries (an unbounded retry loop is exactly what ``RETRY001`` in
:mod:`repro.lint` flags).
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass

import numpy as np

from repro.distributed.rates import PeriodicRate
from repro.errors import DistributedError
from repro.obs import OBS

__all__ = [
    "NetworkModel",
    "LossyNetworkModel",
    "DeliveryResult",
    "ReliableChannel",
    "SyncKind",
    "BspResult",
    "BspProgram",
]


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta network cost model.

    Attributes
    ----------
    latency:
        Per-message latency (seconds) — the alpha term.
    bandwidth:
        Link bandwidth in GB/s — the beta term's inverse.
    """

    latency: float = 2e-6
    bandwidth: float = 10.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise DistributedError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise DistributedError("bandwidth must be positive")

    def transfer_time(self, size_bytes: float) -> float:
        """Point-to-point message time."""
        if size_bytes < 0:
            raise DistributedError("size must be non-negative")
        return self.latency + size_bytes / (self.bandwidth * 1e9)

    def barrier_time(self, num_ranks: int) -> float:
        """Dissemination barrier: ceil(log2(n)) rounds of tiny messages."""
        if num_ranks <= 0:
            raise DistributedError("num_ranks must be positive")
        if num_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(num_ranks))
        return rounds * self.transfer_time(8)

    def allreduce_time(self, size_bytes: float, num_ranks: int) -> float:
        """Recursive-doubling allreduce: log2(n) rounds of full payload."""
        if num_ranks <= 0:
            raise DistributedError("num_ranks must be positive")
        if num_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(num_ranks))
        return rounds * self.transfer_time(size_bytes)


@dataclass(frozen=True)
class LossyNetworkModel(NetworkModel):
    """An alpha-beta network whose links lose and duplicate messages.

    Attributes
    ----------
    loss_rate:
        Probability any single transmission attempt is lost.
    duplication_rate:
        Probability a delivered message arrives more than once (the
        receiver must deduplicate; :class:`ReliableChannel` counts them).
    ack_timeout:
        Seconds a sender waits before concluding an attempt was lost
        and retransmitting; defaults to four network latencies.
    """

    loss_rate: float = 0.0
    duplication_rate: float = 0.0
    ack_timeout: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.loss_rate < 1.0:
            raise DistributedError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if not 0.0 <= self.duplication_rate <= 1.0:
            raise DistributedError(
                f"duplication_rate must be in [0, 1], "
                f"got {self.duplication_rate}"
            )
        if self.ack_timeout is not None and self.ack_timeout <= 0:
            raise DistributedError("ack_timeout must be positive")

    @property
    def effective_ack_timeout(self) -> float:
        """The configured ack timeout, or the 4-latency default."""
        if self.ack_timeout is not None:
            return self.ack_timeout
        return 4.0 * self.latency


@dataclass(frozen=True, slots=True)
class DeliveryResult:
    """Outcome of one :meth:`ReliableChannel.send`.

    Attributes
    ----------
    delivered:
        Whether the message got through within the retransmit budget.
    attempts:
        Transmission attempts made (1 = first try succeeded).
    duplicates:
        Extra copies the receiver saw (deduplicated, but they cost
        bandwidth and show up in the counters).
    elapsed_seconds:
        Wire time consumed: every attempt pays the transfer, every
        *failed* attempt additionally pays the ack timeout.
    """

    delivered: bool
    attempts: int
    duplicates: int
    elapsed_seconds: float

    @property
    def retransmits(self) -> int:
        """Attempts beyond the first."""
        return max(0, self.attempts - 1)


class ReliableChannel:
    """Loss/duplication-aware delivery with a bounded retransmit budget.

    The channel retries a lost message at most ``max_retransmits`` times
    — never forever (the distributed mirror of the agent's bounded
    report retries).  When the budget runs out the send *fails
    visibly* (``delivered=False`` and, with ``strict=True``, a
    :class:`DistributedError`) instead of hanging the caller.

    Determinism: the loss/duplication stream comes from a
    :class:`random.Random` seeded with ``(seed, name)``, so a scenario
    replays the exact same deliveries run after run.
    """

    def __init__(
        self,
        network: LossyNetworkModel,
        *,
        max_retransmits: int = 4,
        strict: bool = False,
        name: str = "channel",
        seed: int = 0,
    ) -> None:
        if max_retransmits < 0:
            raise DistributedError(
                f"max_retransmits must be >= 0, got {max_retransmits}"
            )
        self.network = network
        self.max_retransmits = max_retransmits
        self.strict = strict
        self.name = name
        self._rng = random.Random(f"channel:{seed}:{name}")
        self.sent = 0
        self.delivered = 0
        self.retransmits = 0
        self.duplicates = 0
        self.undeliverable = 0

    def send(self, size_bytes: float) -> DeliveryResult:
        """Deliver one message of ``size_bytes``, retrying within budget."""
        self.sent += 1
        transfer = self.network.transfer_time(size_bytes)
        timeout = self.network.effective_ack_timeout
        elapsed = 0.0
        duplicates = 0
        attempts = 0
        delivered = False
        for attempt in range(self.max_retransmits + 1):
            attempts = attempt + 1
            elapsed += transfer
            if self._rng.random() >= self.network.loss_rate:
                delivered = True
                if self._rng.random() < self.network.duplication_rate:
                    duplicates += 1
                break
            elapsed += timeout
        result = DeliveryResult(
            delivered=delivered,
            attempts=attempts,
            duplicates=duplicates,
            elapsed_seconds=elapsed,
        )
        self.retransmits += result.retransmits
        self.duplicates += duplicates
        if delivered:
            self.delivered += 1
        else:
            self.undeliverable += 1
        if OBS.enabled:
            OBS.metrics.counter("net/messages").add()
            if result.retransmits:
                OBS.metrics.counter("net/retransmits").add(result.retransmits)
            if duplicates:
                OBS.metrics.counter("net/duplicates").add(duplicates)
            if not delivered:
                OBS.metrics.counter("net/undeliverable").add()
        if not delivered and self.strict:
            raise DistributedError(
                f"channel '{self.name}': message lost after "
                f"{attempts} attempts (budget {self.max_retransmits} "
                f"retransmits)"
            )
        return result

    @property
    def delivery_rate(self) -> float:
        """Fraction of sends that got through."""
        if self.sent == 0:
            return 1.0
        return self.delivered / self.sent


class SyncKind(enum.Enum):
    """How iterations are synchronised across ranks."""

    GLOBAL = "global"  #: barrier/allreduce each iteration
    NEIGHBOR = "neighbor"  #: halo exchange with rank +-1
    NONE = "none"  #: no cross-rank synchronisation


@dataclass(frozen=True)
class BspResult:
    """Outcome of a BSP run."""

    makespan: float
    compute_time: tuple[float, ...]
    wait_time: tuple[float, ...]
    comm_time: float

    @property
    def mean_wait_fraction(self) -> float:
        """Average fraction of the makespan ranks spend waiting."""
        if self.makespan <= 0:
            return 0.0
        return float(np.mean(self.wait_time)) / self.makespan


class BspProgram:
    """Iterative bulk-synchronous program over per-rank rate profiles.

    Parameters
    ----------
    iterations:
        Number of outer iterations.
    work_per_rank:
        GFLOP each rank computes per iteration.
    message_bytes:
        Halo / reduction payload per iteration.
    sync:
        Synchronisation discipline, see :class:`SyncKind`.
    network:
        Cost model for the communication.
    """

    def __init__(
        self,
        *,
        iterations: int,
        work_per_rank: float,
        message_bytes: float = 1e6,
        sync: SyncKind = SyncKind.GLOBAL,
        network: NetworkModel | None = None,
    ) -> None:
        if iterations <= 0:
            raise DistributedError("iterations must be positive")
        if work_per_rank <= 0:
            raise DistributedError("work_per_rank must be positive")
        if message_bytes < 0:
            raise DistributedError("message_bytes must be non-negative")
        self.iterations = iterations
        self.work_per_rank = work_per_rank
        self.message_bytes = message_bytes
        self.sync = sync
        self.network = network or NetworkModel()

    def run(self, profiles: list[PeriodicRate]) -> BspResult:
        """Simulate the program; returns per-rank time breakdowns."""
        if not profiles:
            raise DistributedError("need at least one rank")
        n = len(profiles)
        ready = np.zeros(n)  # when each rank may start the next compute
        compute = np.zeros(n)
        wait = np.zeros(n)
        comm_total = 0.0
        for _ in range(self.iterations):
            finish = np.array(
                [
                    p.finish_time(self.work_per_rank, t)
                    for p, t in zip(profiles, ready)
                ]
            )
            compute += finish - ready
            if self.sync is SyncKind.GLOBAL:
                sync_cost = self.network.allreduce_time(
                    self.message_bytes, n
                )
                t_next = finish.max() + sync_cost
                wait += t_next - finish
                comm_total += sync_cost
                ready = np.full(n, t_next)
            elif self.sync is SyncKind.NEIGHBOR:
                xfer = self.network.transfer_time(self.message_bytes)
                nxt = np.array(finish)
                for r in range(n):
                    neighbours = [finish[r]]
                    if r > 0:
                        neighbours.append(finish[r - 1])
                    if r < n - 1:
                        neighbours.append(finish[r + 1])
                    nxt[r] = max(neighbours) + xfer
                wait += nxt - finish - xfer
                comm_total += xfer
                ready = nxt
            else:  # NONE
                ready = finish
        makespan = float(ready.max())
        return BspResult(
            makespan=makespan,
            compute_time=tuple(float(c) for c in compute),
            wait_time=tuple(float(w) for w in wait),
            comm_time=comm_total,
        )
