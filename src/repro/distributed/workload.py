"""Distributed workload models: barrier-synchronised vs. loosely coupled.

Section V's claim: "If the code requires a barrier (or similar) after
every iteration, the benefit of speeding up the iteration body on some of
the nodes is rather limited.  If the synchronization is loose, like an
application that needs to perform a lot of independent tasks ..., most of
the local speedup should translate to overall speedup."

Both models consume one rate profile per rank (from
:mod:`repro.distributed.partition`) and return the completion time, so the
benchmark can compare the same partitioning strategies under the two
synchronisation disciplines.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.distributed.rates import PeriodicRate
from repro.errors import DistributedError

__all__ = [
    "WorkloadResult",
    "BarrierIterativeWorkload",
    "TaskBagWorkload",
]


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of a distributed run."""

    makespan: float
    per_rank_busy: tuple[float, ...]
    barrier_wait: float = 0.0

    @property
    def efficiency(self) -> float:
        """Mean busy fraction across ranks."""
        if self.makespan <= 0:
            return 0.0
        return float(
            sum(self.per_rank_busy) / (len(self.per_rank_busy) * self.makespan)
        )


class BarrierIterativeWorkload:
    """Tightly synchronised iterations: a barrier after each.

    ``work_per_rank`` GFLOP must complete on *every* rank each iteration;
    the next iteration starts when the slowest rank arrives.
    """

    def __init__(self, *, iterations: int, work_per_rank: float) -> None:
        if iterations <= 0:
            raise DistributedError("iterations must be positive")
        if work_per_rank <= 0:
            raise DistributedError("work_per_rank must be positive")
        self.iterations = iterations
        self.work_per_rank = work_per_rank

    def run(self, profiles: list[PeriodicRate]) -> WorkloadResult:
        """Simulate the barrier loop over the given rank profiles."""
        if not profiles:
            raise DistributedError("need at least one rank")
        t = 0.0
        busy = [0.0] * len(profiles)
        wait_total = 0.0
        for _ in range(self.iterations):
            finishes = [
                p.finish_time(self.work_per_rank, t) for p in profiles
            ]
            t_next = max(finishes)
            for r, f in enumerate(finishes):
                busy[r] += f - t
                wait_total += t_next - f
            t = t_next
        return WorkloadResult(
            makespan=t,
            per_rank_busy=tuple(busy),
            barrier_wait=wait_total,
        )


class TaskBagWorkload:
    """Loose synchronisation: a bag of independent equal tasks.

    Ranks pull the next task the moment they finish their current one
    (continuous-time greedy list scheduling); the makespan is when the
    last task completes.
    """

    def __init__(self, *, num_tasks: int, work_per_task: float) -> None:
        if num_tasks <= 0:
            raise DistributedError("num_tasks must be positive")
        if work_per_task <= 0:
            raise DistributedError("work_per_task must be positive")
        self.num_tasks = num_tasks
        self.work_per_task = work_per_task

    def run(self, profiles: list[PeriodicRate]) -> WorkloadResult:
        """Greedy pull-based execution over the rank profiles."""
        if not profiles:
            raise DistributedError("need at least one rank")
        remaining = self.num_tasks
        busy = [0.0] * len(profiles)
        # Priority queue of (next-free-time, rank).
        heap = [(0.0, r) for r in range(len(profiles))]
        heapq.heapify(heap)
        makespan = 0.0
        while remaining > 0:
            t_free, r = heapq.heappop(heap)
            done = profiles[r].finish_time(self.work_per_task, t_free)
            busy[r] += done - t_free
            makespan = max(makespan, done)
            remaining -= 1
            heapq.heappush(heap, (done, r))
        return WorkloadResult(makespan=makespan, per_rank_busy=tuple(busy))
