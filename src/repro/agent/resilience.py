"""Resilience primitives for the agent's coordination loop.

The paper's Figure 1 loop — collect reports, decide, command — implicitly
assumes every runtime answers instantly and every command applies
cleanly.  A production coordinator cannot: applications crash, stall,
and lose messages, and related work on adaptive pinning (Chasparis et
al.) stresses that such noise must not destabilise the controller.  This
module holds the pieces the hardened :class:`~repro.agent.agent.Agent`
uses to stay stable:

* :class:`ResiliencePolicy` — every knob in one validated, immutable
  place: in-round retry attempts, exponential backoff with deterministic
  jitter for between-round probes, report freshness windows, the
  circuit-breaker threshold, and the response quorum.
* :class:`EndpointHealth` — the per-endpoint circuit-breaker state the
  agent mutates round by round (consecutive failures, retries, the
  quarantine flag).
* :class:`HeartbeatTracker` — a :class:`~repro.agent.monitor.LoadMonitor`-
  style freshness tracker: each *fresh* report is a heartbeat; an
  endpoint whose last heartbeat is older than the freshness window is
  stale even if it technically returned something (e.g. a replayed
  cached report injected by :mod:`repro.faults`).

Everything is deterministic: backoff jitter comes from a seeded
:class:`random.Random`, so two runs with the same seed make identical
decisions at identical simulation times.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import AgentError

__all__ = [
    "ResiliencePolicy",
    "EndpointHealth",
    "HeartbeatTracker",
]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Parameters of the hardened agent loop.

    Attributes
    ----------
    max_attempts:
        Report attempts per endpoint per round (the first attempt plus
        up to ``max_attempts - 1`` immediate retransmits).
    backoff_base / backoff_factor / backoff_cap:
        Between-round probe schedule for a failing endpoint: after its
        k-th consecutive failed round a single probe is scheduled
        ``min(cap, base * factor**(k-1))`` seconds later (simulation
        time), so a recovering runtime is noticed before the next round
        without hammering a dead one.
    jitter:
        Relative jitter on the backoff delay (a factor drawn uniformly
        from ``[1 - jitter, 1 + jitter]`` with the policy's seeded RNG),
        decorrelating probes of simultaneously failing endpoints.
    freshness_window:
        Reports older than ``freshness_window`` agent periods are stale:
        they do not count as heartbeats and do not feed the strategy.
    quarantine_after:
        Circuit breaker: consecutive failed rounds before an endpoint is
        quarantined and its cores are redistributed.
    quorum:
        Minimum fraction of non-quarantined endpoints that must respond
        in a round for the strategy to run; below it the agent degrades
        to a static equal per-node allocation.
    seed:
        Seed of the jitter RNG.
    """

    max_attempts: int = 3
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    backoff_cap: float = 0.02
    jitter: float = 0.25
    freshness_window: float = 1.5
    quarantine_after: int = 3
    quorum: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise AgentError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base <= 0:
            raise AgentError("backoff_base must be positive")
        if self.backoff_factor < 1.0:
            raise AgentError("backoff_factor must be >= 1")
        if self.backoff_cap < self.backoff_base:
            raise AgentError(
                "backoff_cap must be >= backoff_base "
                f"({self.backoff_cap} < {self.backoff_base})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise AgentError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.freshness_window <= 0:
            raise AgentError("freshness_window must be positive")
        if self.quarantine_after < 1:
            raise AgentError("quarantine_after must be >= 1")
        if not 0.0 < self.quorum <= 1.0:
            raise AgentError(f"quorum must be in (0, 1], got {self.quorum}")

    def backoff_delay(self, streak: int, rng: random.Random) -> float:
        """Probe delay after ``streak`` consecutive failed rounds.

        Exponential in the streak, capped, with deterministic jitter
        from ``rng`` (the agent owns one seeded instance).
        """
        if streak < 1:
            raise AgentError(f"streak must be >= 1, got {streak}")
        raw = self.backoff_base * self.backoff_factor ** (streak - 1)
        delay = min(self.backoff_cap, raw)
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass
class EndpointHealth:
    """Circuit-breaker state of one registered endpoint.

    Attributes
    ----------
    consecutive_failures:
        Failed rounds in a row; reset by any fresh report.
    total_failures / retries / command_failures:
        Lifetime tallies (rounds failed, report retransmits sent,
        commands whose ``apply`` raised).
    quarantined / quarantined_at:
        The breaker: once open the endpoint is no longer polled or
        commanded, and its cores have been redistributed.
    last_report_time:
        Simulation time of the last *fresh* report (the heartbeat).
    """

    consecutive_failures: int = 0
    total_failures: int = 0
    retries: int = 0
    command_failures: int = 0
    quarantined: bool = False
    quarantined_at: float | None = None
    last_report_time: float | None = None

    @property
    def responsive(self) -> bool:
        """True while the breaker is closed and no failure streak runs."""
        return not self.quarantined and self.consecutive_failures == 0


class HeartbeatTracker:
    """Freshness bookkeeping over endpoint reports.

    Mirrors :class:`~repro.agent.monitor.LoadMonitor`'s differencing
    style: state is only what the last heartbeat was, queries are pure.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise AgentError("heartbeat window must be positive")
        self.window = window
        self._last: dict[str, float] = {}

    def beat(self, name: str, time: float) -> None:
        """Record a fresh report from ``name`` at simulation ``time``."""
        previous = self._last.get(name)
        if previous is not None and time < previous:
            raise AgentError(
                f"heartbeat of '{name}' went backwards "
                f"({time} < {previous})"
            )
        self._last[name] = time

    def last(self, name: str) -> float | None:
        """Time of the last heartbeat, or None if never seen."""
        return self._last.get(name)

    def stale(self, name: str, now: float) -> bool:
        """True when ``name``'s last heartbeat is outside the window."""
        last = self._last.get(name)
        if last is None:
            return True
        return now - last > self.window

    def age(self, name: str, now: float) -> float:
        """Seconds since the last heartbeat (``inf`` if never seen)."""
        last = self._last.get(name)
        if last is None:
            return math.inf
        return now - last

    def fresh(self, report_time: float, now: float) -> bool:
        """Whether a report stamped ``report_time`` is inside the window."""
        return now - report_time <= self.window
