"""Simulated threads and their CPU bindings.

The paper's runtime binds worker threads in one of three ways (Section
II): to an individual core, to all cores of a NUMA node, or not at all.
:class:`Binding` captures the three; :class:`SimThread` is the unit the
OS scheduler places and the execution simulator advances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError
from repro.machine.topology import MachineTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.executor import WorkProvider

__all__ = ["BindingKind", "Binding", "ThreadState", "SimThread"]


class BindingKind(enum.Enum):
    """CPU affinity granularity of a thread."""

    CORE = "core"  #: pinned to one core
    NODE = "node"  #: may use any core of one NUMA node
    UNBOUND = "unbound"  #: may use any core of the machine


@dataclass(frozen=True, slots=True)
class Binding:
    """A thread's CPU affinity."""

    kind: BindingKind
    node: int | None = None
    core: int | None = None

    def __post_init__(self) -> None:
        if self.kind is BindingKind.CORE:
            if self.core is None:
                raise SimulationError("CORE binding needs a core id")
        elif self.kind is BindingKind.NODE:
            if self.node is None:
                raise SimulationError("NODE binding needs a node id")
            if self.core is not None:
                raise SimulationError("NODE binding must not name a core")
        else:
            if self.node is not None or self.core is not None:
                raise SimulationError("UNBOUND binding must not name cpus")

    @classmethod
    def to_core(cls, core: int) -> "Binding":
        """Pin to one core (paper's thread-control option 2 granularity)."""
        return cls(kind=BindingKind.CORE, core=core)

    @classmethod
    def to_node(cls, node: int) -> "Binding":
        """Bind to a NUMA node (paper's option 3 granularity)."""
        return cls(kind=BindingKind.NODE, node=node)

    @classmethod
    def unbound(cls) -> "Binding":
        """No affinity (paper's option 1 with unbound threads)."""
        return cls(kind=BindingKind.UNBOUND)

    def node_of(self, machine: MachineTopology) -> int | None:
        """The node this binding confines the thread to, if any."""
        if self.kind is BindingKind.CORE:
            return machine.core(self.core).node_id
        if self.kind is BindingKind.NODE:
            return self.node
        return None

    def validate(self, machine: MachineTopology) -> None:
        """Check the binding refers to CPUs the machine actually has."""
        if self.kind is BindingKind.CORE:
            machine.core(self.core)  # raises if out of range
        elif self.kind is BindingKind.NODE:
            machine.node(self.node)


class ThreadState(enum.Enum):
    """Lifecycle state of a simulated thread."""

    RUNNABLE = "runnable"  #: may be placed on a core this slice
    BLOCKED = "blocked"  #: suspended by its runtime (paper's blocking)
    FINISHED = "finished"  #: will never run again


@dataclass
class SimThread:
    """One simulated OS thread.

    Execution state (the current work segment and its remaining FLOPs)
    is managed by :class:`~repro.sim.executor.ExecutionSimulator`; this
    object carries identity, affinity and lifecycle.
    """

    tid: int
    name: str
    binding: Binding
    provider: "WorkProvider"
    app_name: str = ""
    state: ThreadState = ThreadState.RUNNABLE
    #: CFS weight (the nice-value lever of Section IV: "Using priorities
    #: may also help in controlling how much compute time these threads
    #: actually get").  Relative: a weight-2 thread gets twice the CPU
    #: share of a weight-1 thread under contention.
    weight: float = 1.0

    # Execution-simulator internals (read-only for other layers):
    current_segment: Any = field(default=None, repr=False)
    remaining_flops: float = field(default=0.0, repr=False)
    assigned_node: int | None = field(default=None, repr=False)
    #: cached LLC demand factor of the current segment (None = not yet
    #: evaluated; the executor resolves it once the node is known)
    cache_factor: float | None = field(default=None, repr=False)

    @property
    def busy(self) -> bool:
        """True while a work segment is in progress."""
        return self.current_segment is not None

    def __hash__(self) -> int:
        return self.tid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimThread) and other.tid == self.tid
