"""Worker threads: the runtime's view of the threads it owns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.cpu import Binding, BindingKind, SimThread, ThreadState
from repro.runtime.task import Task

__all__ = ["Worker"]


@dataclass
class Worker:
    """One worker thread of a task-based runtime.

    Attributes
    ----------
    index:
        Dense index within the runtime.
    name:
        Globally unique name (``<runtime>/w<index>``).
    binding:
        The CPU affinity this worker's thread was created with.
    node:
        NUMA node the worker is associated with (None when unbound).
    thread:
        The simulator thread carrying this worker.
    """

    index: int
    name: str
    binding: Binding
    node: int | None
    thread: SimThread | None = None
    current_task: Task | None = None
    tasks_executed: int = 0
    #: set by the runtime when this worker must block at the next task
    #: boundary (paper: "a thread blocks as soon as it finishes running a
    #: task or almost immediately if it is idle")
    block_requested: bool = False

    @property
    def blocked(self) -> bool:
        """True while the underlying thread is suspended."""
        return (
            self.thread is not None
            and self.thread.state is ThreadState.BLOCKED
        )

    @property
    def active(self) -> bool:
        """True when the worker can run tasks (not blocked/finished)."""
        return (
            self.thread is not None
            and self.thread.state is ThreadState.RUNNABLE
        )

    @property
    def busy(self) -> bool:
        """True while a task is executing on this worker."""
        return self.current_task is not None
