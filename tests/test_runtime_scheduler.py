"""Unit tests for the task schedulers."""

import pytest

from repro.errors import SchedulerError
from repro.runtime.scheduler import (
    FifoScheduler,
    LocalityScheduler,
    WorkStealingScheduler,
)
from repro.runtime.task import Task
from repro.runtime.worker import Worker
from repro.sim.cpu import Binding


def mk(name, affinity=None, tied=None):
    return Task(
        name=name,
        flops=1.0,
        arithmetic_intensity=1.0,
        affinity_node=affinity,
        tied_to=tied,
    )


def worker(name="w0", node=0):
    return Worker(
        index=0,
        name=name,
        binding=Binding.to_node(node) if node is not None else Binding.unbound(),
        node=node,
    )


class TestFifo:
    def test_order(self):
        s = FifoScheduler()
        a, b = mk("a"), mk("b")
        s.push(a)
        s.push(b)
        w = worker()
        assert s.pop(w) is a
        assert s.pop(w) is b
        assert s.pop(w) is None

    def test_rejects_unready(self):
        s = FifoScheduler()
        a, b = mk("a"), mk("b")
        b.depends_on(a)
        with pytest.raises(SchedulerError):
            s.push(b)

    def test_tied_task_skipped_for_other_workers(self):
        s = FifoScheduler()
        t = mk("t", tied="w9")
        s.push(t)
        assert s.pop(worker("w0")) is None
        assert len(s) == 1
        assert s.pop(worker("w9")) is t


class TestLocality:
    def test_prefers_own_node(self):
        s = LocalityScheduler(2)
        t0, t1 = mk("t0", affinity=0), mk("t1", affinity=1)
        s.push(t0)
        s.push(t1)
        assert s.pop(worker(node=1)) is t1
        assert s.queued_on(0) == 1

    def test_overflow_queue_for_unpinned(self):
        s = LocalityScheduler(2)
        t = mk("t")
        s.push(t)
        assert s.pop(worker(node=1)) is t

    def test_steals_when_allowed(self):
        s = LocalityScheduler(2, allow_steal=True)
        t = mk("t", affinity=0)
        s.push(t)
        assert s.pop(worker(node=1)) is t

    def test_no_steal_when_disabled(self):
        s = LocalityScheduler(2, allow_steal=False)
        t = mk("t", affinity=0)
        s.push(t)
        assert s.pop(worker(node=1)) is None
        assert s.pop(worker(node=0)) is t

    def test_steals_from_fullest_node(self):
        s = LocalityScheduler(3)
        for i in range(3):
            s.push(mk(f"n2-{i}", affinity=2))
        s.push(mk("n1-0", affinity=1))
        got = s.pop(worker(node=0))
        assert got.name.startswith("n2")

    def test_out_of_range_affinity_rejected(self):
        s = LocalityScheduler(2)
        with pytest.raises(SchedulerError):
            s.push(mk("t", affinity=7))

    def test_len(self):
        s = LocalityScheduler(2)
        s.push(mk("a", affinity=0))
        s.push(mk("b"))
        assert len(s) == 2


class TestWorkStealing:
    def test_shared_queue_roundtrip(self):
        s = WorkStealingScheduler(seed=1)
        t = mk("t")
        s.push(t)
        assert s.pop(worker("w0")) is t

    def test_steal_from_victim(self):
        s = WorkStealingScheduler(seed=1)
        s.register_worker("w0")
        s.register_worker("w1")
        # put a task straight into w0's deque
        t = mk("t")
        s._deques["w0"].append(t)
        assert s.pop(worker("w1")) is t

    def test_local_lifo(self):
        s = WorkStealingScheduler(seed=1)
        s.register_worker("w0")
        a, b = mk("a"), mk("b")
        s._deques["w0"].extend([a, b])
        assert s.pop(worker("w0")) is b

    def test_tied_tasks_stay_for_owner(self):
        s = WorkStealingScheduler(seed=1)
        s.register_worker("w0")
        t = mk("t", tied="w0")
        s._deques["w0"].append(t)
        assert s.pop(worker("w1")) is None
        assert s.pop(worker("w0")) is t

    def test_empty_pop(self):
        s = WorkStealingScheduler()
        assert s.pop(worker("w5")) is None
