"""Whole-program analysis: symbol table, import graph, call graph.

The per-file rules in :mod:`repro.lint.rules` see one AST at a time;
properties the paper's results actually depend on — no blocking call
reachable from the service's asyncio handlers, no unseeded randomness
reachable from a DES replay entry point, one project-wide metric
namespace — span module boundaries.  This package is the second layer
of the lint engine:

* :mod:`repro.lint.project.summary` — :class:`ModuleSummary`, the
  JSON-serialisable per-module digest (imports, functions, call sites,
  blocking/nondeterministic calls, metric name literals, state
  mutations, ``noqa`` maps) extracted from one AST pass;
* :mod:`repro.lint.project.graph` — :class:`ProjectContext`, the
  project-wide view rules consume: symbol table, import graph, call
  graph (aliased imports, ``self`` methods, constructors, attribute
  types inferred from ``__init__``), and reachability queries;
* :mod:`repro.lint.project.cache` — :class:`LintCache`, the
  content-hash-keyed incremental cache that lets a warm ``python -m
  repro check`` re-parse only changed files.

Cross-module rules subclass :class:`repro.lint.engine.ProjectRule` and
receive a :class:`ProjectContext` instead of a ``FileContext``; see
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.lint.project.cache import CACHE_FILENAME, CACHE_VERSION, LintCache
from repro.lint.project.graph import CallEdge, ProjectContext
from repro.lint.project.summary import (
    CallSite,
    FunctionInfo,
    MetricUse,
    ModuleSummary,
    MutationSite,
    summarize_module,
)

__all__ = [
    "ModuleSummary",
    "FunctionInfo",
    "CallSite",
    "MetricUse",
    "MutationSite",
    "summarize_module",
    "ProjectContext",
    "CallEdge",
    "LintCache",
    "CACHE_FILENAME",
    "CACHE_VERSION",
]
