"""Synthetic roofline applications (the paper's Section III-B benchmark).

"We have implemented a simple synthetic benchmark that can behave like the
applications used to evaluate the model" — an application here is a stream
of identical tasks with a chosen arithmetic intensity and NUMA placement,
hosted by an :class:`~repro.runtime.runtime.OCRVxRuntime`.  Throughput of
the stream under a given thread allocation is the "real GFLOPS" column of
Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import AppSpec, Placement
from repro.errors import ConfigurationError
from repro.machine.topology import MachineTopology
from repro.runtime.datablock import Datablock
from repro.runtime.runtime import OCRVxRuntime
from repro.runtime.task import Task

__all__ = ["SyntheticApp"]


class SyntheticApp:
    """A stream of identical roofline tasks on one runtime.

    Parameters
    ----------
    runtime:
        Hosting runtime (one synthetic app per runtime).
    spec:
        Arithmetic intensity and NUMA placement of the kernel.
    task_flops:
        Work per task in GFLOP.  Must be large relative to the executor's
        slice for low quantisation error; the default (0.01 GFLOP, about
        1 ms on a 10 GFLOPS core) is a good compromise.
    item_bytes:
        Size of the datablock(s) backing SINGLE_NODE and INTERLEAVED
        placements.
    """

    def __init__(
        self,
        runtime: OCRVxRuntime,
        spec: AppSpec,
        *,
        task_flops: float = 0.01,
        item_bytes: float = 64 * 2**20,
    ) -> None:
        self.runtime = runtime
        self.spec = spec
        self.task_flops = task_flops
        self.machine: MachineTopology = runtime.machine
        self._tasks_created = 0
        self._tasks_target = 0
        self._round_robin = 0
        self._datablocks: list[Datablock] = []
        if spec.placement is Placement.SINGLE_NODE:
            if spec.home_node is None or spec.home_node >= self.machine.num_nodes:
                raise ConfigurationError(
                    f"app '{spec.name}': invalid home node {spec.home_node}"
                )
            self._datablocks = [
                runtime.create_datablock(
                    item_bytes, spec.home_node, name=f"{spec.name}-data"
                )
            ]
        elif spec.placement is Placement.INTERLEAVED:
            self._datablocks = [
                runtime.create_datablock(
                    item_bytes / self.machine.num_nodes,
                    n,
                    name=f"{spec.name}-data-n{n}",
                )
                for n in range(self.machine.num_nodes)
            ]

    # ------------------------------------------------------------------
    @property
    def tasks_created(self) -> int:
        """Tasks created so far."""
        return self._tasks_created

    def _next_affinity(self) -> int | None:
        """Round-robin tasks over nodes that have active workers.

        NUMA-perfect apps place each task on a node and touch only that
        node's memory; NUMA-bad apps don't care where they run (their
        traffic goes to the home node regardless).
        """
        if self.spec.placement is not Placement.NUMA_PERFECT:
            return None
        active = self.runtime.active_per_node()
        nodes = [n for n, a in enumerate(active) if a > 0]
        if not nodes:
            nodes = list(range(self.machine.num_nodes))
        node = nodes[self._round_robin % len(nodes)]
        self._round_robin += 1
        return node

    def _spawn_one(self) -> Task:
        i = self._tasks_created
        self._tasks_created += 1

        def replenish(_task: Task) -> None:
            if self._tasks_created < self._tasks_target:
                self._spawn_one()

        return self.runtime.create_task(
            f"k{i}",
            flops=self.task_flops,
            arithmetic_intensity=self.spec.arithmetic_intensity,
            datablocks=self._datablocks,
            affinity_node=self._next_affinity(),
            on_finish=replenish,
        )

    def submit_stream(self, total_tasks: int, *, window: int | None = None) -> None:
        """Create a self-replenishing stream of ``total_tasks`` tasks.

        ``window`` tasks are materialised immediately (default: twice the
        worker count) and each completion spawns a replacement until the
        total is reached, keeping every worker busy without building a
        huge queue up front.
        """
        if total_tasks <= 0:
            raise ConfigurationError("total_tasks must be positive")
        self._tasks_target += total_tasks
        if window is None:
            window = max(2 * len(self.runtime.workers), 2)
        for _ in range(min(window, total_tasks)):
            if self._tasks_created < self._tasks_target:
                self._spawn_one()

    def submit_batch(self, num_tasks: int) -> list[Task]:
        """Create ``num_tasks`` independent tasks immediately."""
        if num_tasks <= 0:
            raise ConfigurationError("num_tasks must be positive")
        self._tasks_target += num_tasks
        return [self._spawn_one() for _ in range(num_tasks)]

    def migrate_data(self, node: int) -> None:
        """Move all the app's datablocks to ``node``.

        The remedy the paper proposes for NUMA-bad applications under OCR
        ("the application should be able to move the data to a different
        NUMA node").  Only legal between tasks (no block acquired).
        """
        for db in self._datablocks:
            db.migrate(node)
