"""A last-level-cache warmth model for the execution simulator.

Section II's tightest integration level: "with even tighter integration,
we might be able to not just move the threads, but also make sure that
the core that wrote the data (that should be processed by the 'library')
also starts processing the data inside the other application, enabling
cache reuse."

Modelling individual cache lines is far below this library's abstraction
level; what matters for the paper's argument is *whether a task's input
is still resident in the LLC of the node it runs on*.  :class:`CacheModel`
tracks, per NUMA node, when each cache key (a datablock id) was last
touched; a task whose keys are all warm on its node fetches that fraction
of its traffic from cache instead of memory, cutting its bandwidth demand
by ``reuse_fraction``.

Keys expire after ``retention_seconds`` (the time it takes co-running
traffic to evict a working set from a ~30 MB LLC) and are touched both
when a task starts (read) and finishes (write).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.errors import ConfigurationError

__all__ = ["CacheModel"]


@dataclass
class CacheModel:
    """Per-NUMA-node LLC warmth tracking.

    Attributes
    ----------
    retention_seconds:
        How long after its last touch a key counts as warm.
    reuse_fraction:
        Fraction of a warm task's memory traffic served from cache
        (its bandwidth demand is multiplied by ``1 - reuse_fraction``).
    """

    retention_seconds: float = 0.01
    reuse_fraction: float = 0.6
    _last_touch: dict[tuple[int, Hashable], float] = field(
        default_factory=dict, repr=False
    )
    hits: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        if self.retention_seconds <= 0:
            raise ConfigurationError(
                "retention_seconds must be positive"
            )
        if not 0 <= self.reuse_fraction < 1:
            raise ConfigurationError(
                "reuse_fraction must be in [0, 1)"
            )

    def touch(
        self, node: int, keys: tuple[Hashable, ...], now: float
    ) -> None:
        """Mark ``keys`` resident on ``node`` at time ``now``."""
        for key in keys:
            self._last_touch[(node, key)] = now

    def is_warm(
        self, node: int, keys: tuple[Hashable, ...], now: float
    ) -> bool:
        """True when every key was touched on ``node`` recently."""
        if not keys:
            return False
        for key in keys:
            t = self._last_touch.get((node, key))
            if t is None or now - t > self.retention_seconds:
                return False
        return True

    def demand_factor(
        self, node: int, keys: tuple[Hashable, ...], now: float
    ) -> float:
        """Bandwidth-demand multiplier for a task starting now.

        Also updates the hit/miss counters (one decision per task).
        """
        if self.is_warm(node, keys, now):
            self.hits += 1
            return 1.0 - self.reuse_fraction
        if keys:
            self.misses += 1
        return 1.0

    @property
    def hit_rate(self) -> float:
        """Fraction of keyed tasks that found their data warm."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
