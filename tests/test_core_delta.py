"""The incremental re-optimizer (:mod:`repro.core.delta`).

The correctness anchor: on small instances (space within the audit
limit) the delta path returns *byte-identical* answers to
:class:`~repro.core.optimizer.ExhaustiveSearch` — same score, same
allocation, ties included — or falls back to the full search and says
why.  The hypothesis suite drives that claim over random machines and
single-app churn events.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import ThreadAllocation
from repro.core.delta import (
    DeltaResult,
    DeltaSearch,
    WorkloadDelta,
    diff_workloads,
)
from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import ExhaustiveSearch, HillClimbSearch
from repro.core.spec import AppSpec
from repro.errors import AllocationError, ModelError
from repro.machine import MachineTopology
from repro.machine.topology import Core, NumaNode
from repro.obs import capture


def _mem(name, ai=0.5):
    return AppSpec.memory_bound(name, ai)


def _cpu(name, ai=10.0):
    return AppSpec.compute_bound(name, ai)


@pytest.fixture
def asymmetric_machine():
    nodes = (
        NumaNode(
            node_id=0,
            cores=(Core(0, 0, 0, 1.0), Core(1, 0, 1, 1.0)),
            local_bandwidth=10.0,
        ),
        NumaNode(
            node_id=1,
            cores=(Core(2, 1, 0, 1.0),),
            local_bandwidth=10.0,
        ),
    )
    return MachineTopology(nodes=nodes, link_bandwidth=np.full((2, 2), 10.0))


class TestDiffWorkloads:
    def test_join_depart_change(self):
        previous = (_mem("a"), _mem("b"), _cpu("c", 10.0))
        current = (_mem("a"), _cpu("c", 20.0), _mem("d"))
        delta = diff_workloads(previous, current)
        assert delta.joined == ("d",)
        assert delta.departed == ("b",)
        assert delta.changed == ("c",)
        # Touched = current apps whose row the churn invalidated;
        # departed apps have no row left to move.
        assert set(delta.touched) == {"c", "d"}
        assert not delta.empty
        assert delta.fraction(3) == pytest.approx(1.0)

    def test_no_churn_is_empty(self):
        apps = (_mem("a"), _cpu("b"))
        delta = diff_workloads(apps, apps)
        assert delta.empty
        assert delta.fraction(2) == 0.0

    def test_fraction_of_zero_apps(self):
        assert WorkloadDelta((), (), ()).fraction(0) == 0.0


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            DeltaSearch(max_changed_fraction=1.5)
        with pytest.raises(ModelError):
            DeltaSearch(regression_tolerance=-1e-9)
        with pytest.raises(ModelError):
            DeltaSearch(audit_limit=-1)

    def test_fallback_must_share_the_model(self):
        with pytest.raises(ModelError):
            DeltaSearch(
                NumaPerformanceModel(),
                fallback=ExhaustiveSearch(NumaPerformanceModel()),
            )

    def test_default_fallback_shares_the_model(self):
        search = DeltaSearch()
        assert search.fallback.model is search.model

    def test_empty_workload_raises(self, paper_machine):
        with pytest.raises(AllocationError):
            DeltaSearch().search(paper_machine, [])


class TestFallbacks:
    def test_cold_start(self, paper_machine, paper_apps):
        search = DeltaSearch()
        out = search.search(paper_machine, paper_apps)
        assert out.mode == "full"
        assert out.fallback_reason == "cold-start"
        assert search.fallbacks == 1

    def test_asymmetric_machine(self, asymmetric_machine):
        apps = (_mem("a"), _mem("b"))
        previous = ThreadAllocation(
            app_names=("a", "b"),
            counts=np.array([[1, 0], [1, 1]]),
        )
        model = NumaPerformanceModel()
        search = DeltaSearch(model, fallback=HillClimbSearch(model))
        out = search.search(
            asymmetric_machine, apps, previous=previous, previous_specs=apps
        )
        assert out.mode == "full"
        assert out.fallback_reason == "asymmetric-machine"

    def test_churn_fraction(self, paper_machine):
        previous = (_mem("a"),)
        search = DeltaSearch()
        warm = search.fallback.search(paper_machine, previous)
        current = (_mem("a"), _mem("b"), _mem("c"), _cpu("d"))
        out = search.search(
            paper_machine,
            current,
            previous=warm.allocation,
            previous_specs=previous,
            previous_score=warm.score,
        )
        assert out.mode == "full"
        assert out.fallback_reason == "churn-fraction"

    def test_asymmetric_previous(self, paper_machine):
        apps = (_mem("a"), _mem("b"))
        previous = ThreadAllocation(
            app_names=("a", "b"),
            counts=np.array([[8, 0, 0, 0], [0, 8, 8, 8]]),
        )
        out = DeltaSearch().search(
            paper_machine, apps, previous=previous, previous_specs=apps
        )
        assert out.mode == "full"
        assert out.fallback_reason == "asymmetric-previous"

    def test_oversubscribed_previous(self, paper_machine):
        # A symmetric answer computed for a machine with more cores.
        apps = (_mem("a"), _mem("b"))
        previous = ThreadAllocation(
            app_names=("a", "b"),
            counts=np.full((2, 4), 6, dtype=np.int64),
        )
        out = DeltaSearch().search(
            paper_machine, apps, previous=previous, previous_specs=apps
        )
        assert out.mode == "full"
        assert out.fallback_reason == "oversubscribed-previous"

    def test_regression_guard(self, paper_machine, monkeypatch):
        # Sabotage the climb so the pure-join answer gets worse than the
        # previous score; the guard must reject it and re-search.
        previous = (_cpu("a"), _cpu("b"))
        search = DeltaSearch(audit_limit=0)
        warm = search.fallback.search(paper_machine, previous)
        current = previous + (_mem("c", 0.1),)

        def sabotage(
            self, machine, apps, space, evaluator, comp, score, movable,
            trajectory,
        ):
            comp[:] = 0
            comp[2] = space.cores_per_node
            return score

        monkeypatch.setattr(DeltaSearch, "_climb", sabotage)
        out = search.search(
            paper_machine,
            current,
            previous=warm.allocation,
            previous_specs=previous,
            previous_score=warm.score,
        )
        assert out.mode == "full"
        assert out.fallback_reason == "regression"

    def test_fallback_counter_increments(self, paper_machine, paper_apps):
        with capture() as cap:
            DeltaSearch().search(paper_machine, paper_apps)
        assert cap.metrics.snapshot()["counter/delta/fallbacks"] == 1


class TestDeltaPath:
    def _churn(self, machine, previous_apps, current_apps, **kwargs):
        search = DeltaSearch(**kwargs)
        warm = search.fallback.search(machine, previous_apps)
        out = search.search(
            machine,
            current_apps,
            previous=warm.allocation,
            previous_specs=previous_apps,
            previous_score=warm.score,
        )
        return search, out

    def test_leave_matches_oracle_exactly(self, paper_machine, paper_apps):
        survivors = tuple(paper_apps[:-1])
        search, out = self._churn(
            paper_machine, tuple(paper_apps), survivors
        )
        oracle = ExhaustiveSearch(NumaPerformanceModel()).search(
            paper_machine, survivors
        )
        assert out.mode == "delta"
        assert search.fallbacks == 0
        assert out.score == oracle.score
        assert (
            out.allocation.as_mapping() == oracle.allocation.as_mapping()
        )

    def test_join_matches_oracle_exactly(self, paper_machine, paper_apps):
        previous = tuple(paper_apps[:-1])
        search, out = self._churn(
            paper_machine, previous, tuple(paper_apps)
        )
        oracle = ExhaustiveSearch(NumaPerformanceModel()).search(
            paper_machine, paper_apps
        )
        assert out.mode == "delta"
        assert out.delta.joined == (paper_apps[-1].name,)
        assert out.score == oracle.score
        assert (
            out.allocation.as_mapping() == oracle.allocation.as_mapping()
        )

    def test_phase_change_matches_oracle_exactly(self, paper_machine):
        previous = (_mem("a"), _mem("b"), _cpu("c"))
        current = (_mem("a"), _mem("b", 2.0), _cpu("c"))
        search, out = self._churn(paper_machine, previous, current)
        oracle = ExhaustiveSearch(NumaPerformanceModel()).search(
            paper_machine, current
        )
        assert out.mode == "delta"
        assert out.delta.changed == ("b",)
        assert out.score == oracle.score
        assert (
            out.allocation.as_mapping() == oracle.allocation.as_mapping()
        )

    def test_small_instance_is_audited(self, paper_machine, paper_apps):
        _, out = self._churn(
            paper_machine, tuple(paper_apps), tuple(paper_apps[:-1])
        )
        assert out.audited

    def test_audit_limit_zero_disables_audit(
        self, paper_machine, paper_apps
    ):
        _, out = self._churn(
            paper_machine,
            tuple(paper_apps),
            tuple(paper_apps[:-1]),
            audit_limit=0,
        )
        assert out.mode == "delta"
        assert not out.audited

    def test_large_space_skips_the_audit(self, paper_machine):
        apps = tuple(_mem(f"m{i}", 0.2 + 0.1 * i) for i in range(6)) + (
            _cpu("c0"),
            _cpu("c1", 12.0),
            _cpu("c2", 14.0),
            _cpu("c3", 16.0),
        )
        search, out = self._churn(paper_machine, apps[:-1], apps)
        assert out.mode == "delta"
        assert not out.audited
        # O(delta): far fewer evaluations than the 24,310-row space.
        assert out.result.evaluations < 500

    def test_result_shortcuts(self, paper_machine, paper_apps):
        _, out = self._churn(
            paper_machine, tuple(paper_apps), tuple(paper_apps[:-1])
        )
        assert isinstance(out, DeltaResult)
        assert out.allocation is out.result.allocation
        assert out.score == out.result.score

    def test_span_records_mode_and_evaluations(
        self, paper_machine, paper_apps
    ):
        search = DeltaSearch()
        warm = search.fallback.search(paper_machine, paper_apps)
        with capture() as cap:
            search.search(
                paper_machine,
                tuple(paper_apps[:-1]),
                previous=warm.allocation,
                previous_specs=tuple(paper_apps),
                previous_score=warm.score,
            )
        spans = [s for s in cap.tracer.spans if s.name == "delta/search"]
        assert len(spans) == 1
        assert spans[0].attrs["mode"] == "delta"
        assert spans[0].attrs["evaluations"] > 0


# ----------------------------------------------------------------------
# Property: delta == oracle exactly, or a counted fall-back
# ----------------------------------------------------------------------
@st.composite
def churn_cases(draw):
    nodes = draw(st.integers(min_value=1, max_value=3))
    cores = draw(st.integers(min_value=2, max_value=6))
    machine = MachineTopology.homogeneous(
        num_nodes=nodes,
        cores_per_node=cores,
        peak_gflops_per_core=draw(st.floats(min_value=0.5, max_value=50.0)),
        local_bandwidth=draw(st.floats(min_value=5.0, max_value=200.0)),
        remote_bandwidth=draw(st.floats(min_value=1.0, max_value=5.0)),
    )
    n_apps = draw(st.integers(min_value=2, max_value=4))
    apps = []
    for a in range(n_apps):
        ai = draw(st.floats(min_value=0.05, max_value=50.0))
        apps.append(AppSpec(f"a{a}", ai))
    event = draw(st.sampled_from(["leave", "join", "change"]))
    if event == "leave":
        previous, current = tuple(apps), tuple(apps[:-1])
    elif event == "join":
        previous, current = tuple(apps[:-1]), tuple(apps)
    else:
        changed = AppSpec(
            apps[-1].name,
            draw(st.floats(min_value=0.05, max_value=50.0)),
        )
        previous, current = tuple(apps), tuple(apps[:-1] + [changed])
    return machine, previous, current


class TestDeltaOracleProperty:
    @given(churn_cases())
    @settings(max_examples=50, deadline=None)
    def test_matches_oracle_or_falls_back(self, case):
        machine, previous_apps, current_apps = case
        search = DeltaSearch()
        warm = search.fallback.search(machine, previous_apps)
        out = search.search(
            machine,
            current_apps,
            previous=warm.allocation,
            previous_specs=previous_apps,
            previous_score=warm.score,
        )
        if out.mode == "full":
            # Every decline is counted and explained.
            assert search.fallbacks == 1
            assert out.fallback_reason is not None
            return
        oracle = ExhaustiveSearch(NumaPerformanceModel()).search(
            machine, current_apps
        )
        assert out.score == oracle.score
        assert (
            out.allocation.as_mapping() == oracle.allocation.as_mapping()
        )
