"""Tests for weighted (priority-based) CPU sharing (Section IV)."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.machine import MachineTopology, uma_machine
from repro.sim import Binding, ExecutionSimulator, WorkSegment
from repro.sim.cpu import SimThread
from repro.sim.os_scheduler import CfsScheduler


class _NullProvider:
    def next_segment(self, thread):
        return None

    def segment_finished(self, thread, segment):
        pass


def thread(tid, binding, weight=1.0):
    return SimThread(
        tid=tid,
        name=f"t{tid}",
        binding=binding,
        provider=_NullProvider(),
        weight=weight,
    )


def machine(cores=2):
    return MachineTopology.homogeneous(
        num_nodes=1,
        cores_per_node=cores,
        peak_gflops_per_core=10.0,
        local_bandwidth=100.0,
    )


class TestWeightedShares:
    def test_proportional_split(self):
        shares = CfsScheduler._weighted_shares(
            1.0, np.array([1.0, 3.0])
        )
        assert shares == pytest.approx([0.25, 0.75])

    def test_cap_at_one_core_with_redistribution(self):
        # weight 10 vs 1 on 2 cores: the heavy thread caps at 1.0 and
        # the light one takes the remaining full core.
        shares = CfsScheduler._weighted_shares(
            2.0, np.array([10.0, 1.0])
        )
        assert shares == pytest.approx([1.0, 1.0])

    def test_capacity_conserved(self):
        shares = CfsScheduler._weighted_shares(
            1.5, np.array([5.0, 1.0, 1.0])
        )
        assert shares.sum() == pytest.approx(1.5)
        assert np.all(shares <= 1.0 + 1e-12)

    def test_invalid_weights(self):
        with pytest.raises(SchedulerError):
            CfsScheduler._weighted_shares(1.0, np.array([0.0, 1.0]))


class TestSchedulerIntegration:
    def test_weighted_node_threads(self):
        s = CfsScheduler(context_switch_penalty=0.0)
        m = machine(cores=1)
        threads = [
            thread(0, Binding.to_node(0), weight=3.0),
            thread(1, Binding.to_node(0), weight=1.0),
        ]
        out = s.assign(m, threads)
        assert out[0].share == pytest.approx(0.75)
        assert out[1].share == pytest.approx(0.25)

    def test_weighted_core_bound(self):
        s = CfsScheduler(context_switch_penalty=0.0)
        m = machine(cores=2)
        threads = [
            thread(0, Binding.to_core(0), weight=4.0),
            thread(1, Binding.to_core(0), weight=1.0),
        ]
        out = s.assign(m, threads)
        assert out[0].share == pytest.approx(0.8)
        assert out[1].share == pytest.approx(0.2)

    def test_equal_weights_unchanged(self):
        s = CfsScheduler(context_switch_penalty=0.0)
        m = machine(cores=2)
        threads = [thread(i, Binding.to_node(0)) for i in range(4)]
        out = s.assign(m, threads)
        for t in threads:
            assert out[t.tid].share == pytest.approx(0.5)


class TestEndToEnd:
    def test_deprioritised_nonworker(self):
        """Section IV: a non-worker compute thread can be deprioritised
        so the runtime's workers keep most of the CPU."""

        class Work:
            def next_segment(self, thread):
                return WorkSegment(flops=1.0, arithmetic_intensity=1e6)

            def segment_finished(self, thread, segment):
                pass

        ex = ExecutionSimulator(
            uma_machine(cores=1),
            scheduler=CfsScheduler(context_switch_penalty=0.0),
        )
        worker = ex.add_thread(
            "worker", Binding.to_node(0), Work(), app_name="worker"
        )
        intruder = ex.add_thread(
            "intruder", Binding.to_node(0), Work(), app_name="intruder"
        )
        intruder.weight = 0.1
        ex.run(0.3)
        w = ex.achieved_gflops("worker", 0.3)
        i = ex.achieved_gflops("intruder", 0.3)
        assert w / i == pytest.approx(10.0, rel=0.05)
