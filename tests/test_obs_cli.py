"""Smoke tests for ``python -m repro trace`` (in-process via main())."""

import json

import pytest

from repro.__main__ import main
from repro.obs import OBS, Span


@pytest.fixture(autouse=True)
def _obs_stays_off():
    """The CLI captures locally; global state must be untouched after."""
    yield
    assert OBS.enabled is False


class TestTraceCommand:
    def test_quickstart_summary(self, capsys):
        assert main(["trace", "quickstart"]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "counter/model/predictions" in out
        assert "counter/optimizer/evaluations" in out
        assert "gauge/optimizer/best_score" in out

    def test_chrome_export(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(
            ["trace", "quickstart", "--export", "chrome", "--out", str(path)]
        ) == 0
        assert "chrome://tracing" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events
        assert {e["ph"] for e in events} <= {"X", "i", "C", "M"}
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "C" for e in events)  # metrics snapshot

    def test_jsonl_export(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert main(
            ["trace", "quickstart", "--export", "jsonl", "--out", str(path)]
        ) == 0
        lines = path.read_text().splitlines()
        assert lines
        spans = [Span.from_dict(json.loads(line)) for line in lines]
        assert all(s.finished for s in spans)
        assert any(s.name.startswith("optimizer/") for s in spans)

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "nonsense"])
