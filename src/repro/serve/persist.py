"""Crash-safe persistence for the allocation service: a write-ahead
journal with snapshot compaction.

The service's whole state — who is admitted, every epoch bump, the last
pushed allocation — lives in memory; :class:`Journal` makes it survive
a process death.  The design is the classic WAL shape, kept deliberately
small:

* **Append-only NDJSON segments** (``journal-NNNNNN.ndjson``): one JSON
  record per line, written with an ``O_APPEND`` file descriptor and
  ``fsync``'d per record (configurable), so a crash can only ever tear
  the *last* record.
* **CRC per record**: every line carries a CRC32 over the canonical
  serialization of its payload, and a monotonically increasing global
  ``seq``.  :func:`load_journal` truncates a torn tail at the last
  valid record instead of loading corrupt state, and skips duplicated
  records (``seq`` already applied) instead of double-applying them.
* **Generation-numbered snapshots** (``snapshot-NNNNNN.json``): a
  compaction writes the full state via :func:`atomic_write` (temp file
  in the same directory, ``fsync``, ``os.replace``, directory
  ``fsync``) and rolls the journal to a fresh segment.  Recovery loads
  the newest snapshot whose CRC validates and replays every later
  journal segment after it; a corrupt snapshot falls back to the
  previous generation, which compaction keeps around exactly for this.

The records themselves are opaque event dicts; their vocabulary and the
deterministic replay that rebuilds a byte-identical
:class:`~repro.serve.registry.WorkloadRegistry` live in
:meth:`~repro.serve.service.AllocationService.recover`.  File I/O is
done through ``os``-level descriptors on purpose: appends must control
``fsync`` explicitly, and the journal is written from the unix-socket
server's event loop where a record append is a bounded few-microsecond
write, not unbounded blocking I/O.

Everything else in the tree that writes durable state should go through
:func:`atomic_write` — the IO001 lint rule points here.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field

from repro.errors import ServiceError

__all__ = [
    "atomic_write",
    "encode_record",
    "decode_record",
    "RecoveryLoad",
    "load_journal",
    "latest_journal_segment",
    "Journal",
]

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{6})\.json$")
_JOURNAL_RE = re.compile(r"^journal-(\d{6})\.ndjson$")


def _snapshot_name(generation: int) -> str:
    return f"snapshot-{generation:06d}.json"


def _journal_name(generation: int) -> str:
    return f"journal-{generation:06d}.ndjson"


def _canonical(obj) -> str:
    """The one serialization CRCs are computed over (sorted, compact)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True)


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_file(path: str) -> bytes:
    fd = os.open(path, os.O_RDONLY)
    try:
        chunks = []
        while True:
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    """Persist a directory entry (rename/create); best-effort off POSIX."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # repro: noqa[EXC002]
        # Directory fsync is unsupported on some filesystems; the
        # rename itself is still atomic, only its durability ordering
        # is weakened — best effort is the intended contract here.
        pass
    finally:
        os.close(fd)


def atomic_write(path: str, data: bytes, *, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` so readers see old bytes or new bytes.

    Temp file in the same directory, ``fsync``, ``os.replace``, then a
    directory ``fsync`` — the temp+rename idiom every durable-state
    write in this tree must use (lint rule IO001 flags bypasses).
    """
    directory = os.path.dirname(path) or "."
    tmp = path + ".tmp"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        _write_all(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(directory)


# ----------------------------------------------------------------------
# Record / snapshot codecs
# ----------------------------------------------------------------------
def encode_record(seq: int, event: dict) -> str:
    """One journal line (no trailing newline): CRC'd, seq-stamped."""
    payload = _canonical({"event": event, "seq": seq})
    crc = zlib.crc32(payload.encode("utf-8"))
    return _canonical({"crc": crc, "event": event, "seq": seq})


def decode_record(line: str) -> tuple[int, dict]:
    """Parse and CRC-check one journal line; ``(seq, event)``.

    Raises :class:`~repro.errors.ServiceError` on malformed JSON, a
    missing field, or a CRC mismatch — the caller decides whether that
    means a torn tail (truncate) or corruption (stop).
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed journal record: {exc}") from exc
    if not isinstance(data, dict):
        raise ServiceError(
            f"journal record must be an object, got {type(data).__name__}"
        )
    seq = data.get("seq")
    event = data.get("event")
    crc = data.get("crc")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        raise ServiceError(f"journal record needs a positive 'seq': {seq!r}")
    if not isinstance(event, dict):
        raise ServiceError(f"journal record needs an 'event' object: {event!r}")
    if not isinstance(crc, int) or isinstance(crc, bool):
        raise ServiceError(f"journal record needs an integer 'crc': {crc!r}")
    payload = _canonical({"event": event, "seq": seq})
    expected = zlib.crc32(payload.encode("utf-8"))
    if crc != expected:
        raise ServiceError(
            f"journal record seq={seq} failed its CRC check "
            f"({crc} != {expected})"
        )
    return seq, event


def _encode_snapshot(generation: int, seq: int, state: dict) -> bytes:
    payload = _canonical({"seq": seq, "state": state})
    crc = zlib.crc32(payload.encode("utf-8"))
    return (
        _canonical(
            {"crc": crc, "generation": generation, "seq": seq, "state": state}
        )
        + "\n"
    ).encode("utf-8")


def _decode_snapshot(data: bytes) -> tuple[int, dict]:
    """``(seq, state)`` of a snapshot file; raises on any corruption."""
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"malformed snapshot: {exc}") from exc
    if not isinstance(obj, dict):
        raise ServiceError("snapshot must be a JSON object")
    seq = obj.get("seq")
    state = obj.get("state")
    crc = obj.get("crc")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ServiceError(f"snapshot needs a non-negative 'seq': {seq!r}")
    if not isinstance(state, dict):
        raise ServiceError("snapshot needs a 'state' object")
    payload = _canonical({"seq": seq, "state": state})
    expected = zlib.crc32(payload.encode("utf-8"))
    if crc != expected:
        raise ServiceError(
            f"snapshot failed its CRC check ({crc!r} != {expected})"
        )
    return seq, state


# ----------------------------------------------------------------------
# Directory layout
# ----------------------------------------------------------------------
def _scan(path: str) -> tuple[dict[int, str], dict[int, str]]:
    """``(snapshots, journals)``: generation -> absolute file path."""
    snapshots: dict[int, str] = {}
    journals: dict[int, str] = {}
    try:
        names = os.listdir(path)
    except FileNotFoundError:
        return snapshots, journals
    for name in names:
        match = _SNAPSHOT_RE.match(name)
        if match:
            snapshots[int(match.group(1))] = os.path.join(path, name)
            continue
        match = _JOURNAL_RE.match(name)
        if match:
            journals[int(match.group(1))] = os.path.join(path, name)
    return snapshots, journals


def latest_journal_segment(path: str) -> str:
    """Path of the newest journal segment (chaos helpers corrupt it)."""
    _, journals = _scan(path)
    if not journals:
        raise ServiceError(f"no journal segments under {path!r}")
    return journals[max(journals)]


# ----------------------------------------------------------------------
# Recovery load
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryLoad:
    """Everything :func:`load_journal` reconstructed from disk.

    ``state`` is the newest valid snapshot's state (``None`` when no
    snapshot validated — recovery then starts from an empty service),
    ``events`` the journal records after it, in append order.  The
    diagnostic fields record what the loader had to tolerate: a torn
    tail truncated at the last valid record, snapshot generations that
    failed their CRC, duplicated records skipped by ``seq``.
    """

    state: dict | None
    events: tuple[dict, ...]
    last_seq: int
    generation: int
    records: int
    truncated_tail: bool = False
    snapshot_fallbacks: int = 0
    duplicates_skipped: int = 0
    notes: tuple[str, ...] = field(default_factory=tuple)


def load_journal(path: str) -> RecoveryLoad:
    """Read a journal directory back into snapshot state plus events.

    The loader picks the newest snapshot whose CRC validates (falling
    back generation by generation), then replays every journal segment
    from that generation on, in order, skipping records whose ``seq``
    was already applied (duplicated segments) and truncating at the
    first invalid record — which, on the newest segment's last line, is
    the torn tail of a crashed append.  A corrupt record anywhere else
    stops the replay at the last consistent prefix rather than applying
    events on a broken base.
    """
    snapshots, journals = _scan(path)
    notes: list[str] = []
    state: dict | None = None
    base_gen = 0
    last_seq = 0
    fallbacks = 0
    for gen in sorted(snapshots, reverse=True):
        try:
            seq, snap_state = _decode_snapshot(_read_file(snapshots[gen]))
        except (ServiceError, OSError) as exc:
            fallbacks += 1
            notes.append(
                f"snapshot generation {gen} rejected ({exc}); "
                f"falling back"
            )
            continue
        state, base_gen, last_seq = snap_state, gen, seq
        break
    if state is None and snapshots:
        notes.append("no snapshot validated; replaying from the beginning")

    events: list[dict] = []
    records = 0
    truncated = False
    duplicates = 0
    newest_gen = max(journals, default=0)
    replay_gens = sorted(g for g in journals if g >= base_gen)
    stop = False
    for gen in replay_gens:
        if stop:
            break
        raw = _read_file(journals[gen])
        lines = raw.split(b"\n")
        # A well-formed segment ends with a newline, leaving one empty
        # trailing chunk; anything after the last newline is tail bytes.
        non_empty = [
            (i, line) for i, line in enumerate(lines) if line.strip()
        ]
        for position, (i, line) in enumerate(non_empty):
            try:
                seq, event = decode_record(line.decode("utf-8"))
            except (ServiceError, UnicodeDecodeError) as exc:
                last_line = position == len(non_empty) - 1
                if gen == newest_gen and last_line:
                    truncated = True
                    notes.append(
                        f"torn tail in generation {gen} truncated at "
                        f"seq {last_seq} ({exc})"
                    )
                else:
                    notes.append(
                        f"corrupt record in generation {gen} line {i + 1}; "
                        f"stopping replay at seq {last_seq} ({exc})"
                    )
                stop = True
                break
            if seq <= last_seq:
                duplicates += 1
                continue
            if seq != last_seq + 1:
                notes.append(
                    f"sequence gap in generation {gen} "
                    f"({last_seq} -> {seq}); stopping replay"
                )
                stop = True
                break
            last_seq = seq
            records += 1
            events.append(event)
    return RecoveryLoad(
        state=state,
        events=tuple(events),
        last_seq=last_seq,
        generation=max([base_gen, newest_gen]),
        records=records,
        truncated_tail=truncated,
        snapshot_fallbacks=fallbacks,
        duplicates_skipped=duplicates,
        notes=tuple(notes),
    )


# ----------------------------------------------------------------------
# The writer
# ----------------------------------------------------------------------
class Journal:
    """Append side of the write-ahead log; one writer per directory.

    Use :meth:`open` (never the constructor): it creates the directory,
    picks the next generation number after whatever already exists, and
    continues the global ``seq`` where the previous life left off.
    """

    def __init__(
        self,
        path: str,
        generation: int,
        fd: int,
        seq: int,
        *,
        fsync: bool,
        compact_every: int | None,
    ) -> None:
        self.path = path
        self.generation = generation
        self._fd: int | None = fd
        self._seq = seq
        self._fsync = fsync
        self.compact_every = compact_every
        self._since_compact = 0
        #: records appended by this writer (not counting earlier lives).
        self.records = 0

    @classmethod
    def open(
        cls,
        path: str,
        *,
        fsync: bool = True,
        compact_every: int | None = 1024,
        start_seq: int | None = None,
    ) -> "Journal":
        """Start (or continue) the journal under directory ``path``."""
        if compact_every is not None and compact_every < 1:
            raise ServiceError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        os.makedirs(path, exist_ok=True)
        snapshots, journals = _scan(path)
        generation = max([0, *snapshots, *journals]) + 1
        if start_seq is None:
            start_seq = (
                load_journal(path).last_seq if (snapshots or journals) else 0
            )
        segment = os.path.join(path, _journal_name(generation))
        fd = os.open(segment, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        _fsync_dir(path)
        return cls(
            path,
            generation,
            fd,
            start_seq,
            fsync=fsync,
            compact_every=compact_every,
        )

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._seq

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; appends then raise."""
        return self._fd is None

    def append(self, event: dict) -> int:
        """Durably append one event record; returns its ``seq``."""
        if self._fd is None:
            raise ServiceError("journal is closed")
        self._seq += 1
        line = (encode_record(self._seq, event) + "\n").encode("utf-8")
        _write_all(self._fd, line)
        if self._fsync:
            os.fsync(self._fd)
        self.records += 1
        self._since_compact += 1
        return self._seq

    def should_compact(self) -> bool:
        """True when ``compact_every`` appends accumulated."""
        return (
            self.compact_every is not None
            and self._since_compact >= self.compact_every
        )

    def compact(self, state: dict) -> int:
        """Snapshot ``state`` and roll to a fresh segment; new generation.

        The snapshot is stamped with the current ``seq`` so replay knows
        exactly where the journal takes over.  Old generations are
        pruned only once *two* valid snapshots exist — the previous
        snapshot generation (and every journal segment from it on) stays
        around so a corrupt newest snapshot can still recover
        losslessly.
        """
        if self._fd is None:
            raise ServiceError("journal is closed")
        new_gen = self.generation + 1
        atomic_write(
            os.path.join(self.path, _snapshot_name(new_gen)),
            _encode_snapshot(new_gen, self._seq, state),
            fsync=self._fsync,
        )
        new_fd = os.open(
            os.path.join(self.path, _journal_name(new_gen)),
            os.O_WRONLY | os.O_CREAT | os.O_APPEND,
            0o644,
        )
        os.close(self._fd)
        self._fd = new_fd
        self.generation = new_gen
        self._since_compact = 0
        _fsync_dir(self.path)
        self._prune()
        return new_gen

    def _prune(self) -> None:
        snapshots, journals = _scan(self.path)
        if len(snapshots) < 2:
            return
        keep_from = sorted(snapshots)[-2]
        removed = False
        for gen, file_path in list(snapshots.items()) + list(
            journals.items()
        ):
            if gen < keep_from:
                os.remove(file_path)
                removed = True
        if removed:
            _fsync_dir(self.path)

    def close(self) -> None:
        """Release the segment descriptor (idempotent; no compaction)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
