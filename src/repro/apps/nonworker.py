"""Non-worker threads (Section IV).

Threads that do work but are outside any runtime's control:

* :class:`IoThread` — mostly blocked in I/O, briefly computing between
  waits ("if such a thread ... is mostly blocked in I/O function calls,
  it is not a big issue from the load balancing point of view");
* :class:`ComputeThread` — a main thread or hand-rolled pthread doing
  steady computation the arbiter cannot block, only re-bind via OS
  affinity ("We might still be able to use thread affinities provided by
  the operating system to move such threads").

Both are plain :class:`~repro.sim.executor.WorkProvider`s; experiments add
them next to runtime-managed workers to measure the interference.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.cpu import Binding, SimThread
from repro.sim.executor import ExecutionSimulator, WorkSegment

__all__ = ["IoThread", "ComputeThread"]


class IoThread:
    """Alternates short compute bursts with I/O waits.

    Parameters
    ----------
    burst_flops:
        Work per burst (GFLOP) — e.g. preparing/parsing a buffer.
    wait_seconds:
        I/O wait between bursts (the thread yields its core).
    arithmetic_intensity:
        Intensity of the burst; I/O preparation is typically streaming,
        so the default is memory-heavy.
    data_home:
        Node whose memory the I/O buffers live on; the paper notes I/O
        threads "will most likely be reading and writing data that is
        also used for computation", so placing this on a busy node is the
        interesting case.
    total_bursts:
        Stop after this many bursts (None = forever).
    initial_delay:
        Offset before the first burst; staggering a group of I/O threads
        de-synchronises their wait windows, which is what lets extra
        threads fill the gaps (the Section II benefit).
    """

    def __init__(
        self,
        executor: ExecutionSimulator,
        *,
        burst_flops: float = 0.001,
        wait_seconds: float = 0.01,
        arithmetic_intensity: float = 0.25,
        data_home: int | None = None,
        total_bursts: int | None = None,
        initial_delay: float = 0.0,
    ) -> None:
        if burst_flops <= 0 or wait_seconds < 0 or initial_delay < 0:
            raise ConfigurationError("invalid IoThread parameters")
        self.executor = executor
        self.burst_flops = burst_flops
        self.wait_seconds = wait_seconds
        self.ai = arithmetic_intensity
        self.data_home = data_home
        self.total_bursts = total_bursts
        self.bursts_done = 0
        self._next_ready = initial_delay

    def next_segment(self, thread: SimThread) -> WorkSegment | None:
        """Next compute burst, or None while "blocked in I/O"."""
        if (
            self.total_bursts is not None
            and self.bursts_done >= self.total_bursts
        ):
            return None
        if self.executor.sim.now < self._next_ready:
            return None  # "blocked in I/O"
        return WorkSegment(
            flops=self.burst_flops,
            arithmetic_intensity=self.ai,
            data_home=self.data_home,
            label="io-burst",
        )

    def segment_finished(self, thread: SimThread, segment: WorkSegment) -> None:
        """Account the burst and enter the next I/O wait."""
        self.bursts_done += 1
        self._next_ready = self.executor.sim.now + self.wait_seconds


class ComputeThread:
    """A steady computing thread outside runtime control.

    The arbiter cannot block it; it can only be re-bound (the executor's
    :meth:`~repro.sim.executor.ExecutionSimulator.rebind`) or deprioritised.
    """

    def __init__(
        self,
        *,
        task_flops: float = 0.01,
        arithmetic_intensity: float = 4.0,
        data_home: int | None = None,
        total_tasks: int | None = None,
    ) -> None:
        if task_flops <= 0:
            raise ConfigurationError("task_flops must be positive")
        self.task_flops = task_flops
        self.ai = arithmetic_intensity
        self.data_home = data_home
        self.total_tasks = total_tasks
        self.tasks_done = 0

    def next_segment(self, thread: SimThread) -> WorkSegment | None:
        """Next compute task (never blocks, never yields)."""
        if self.total_tasks is not None and self.tasks_done >= self.total_tasks:
            return None
        return WorkSegment(
            flops=self.task_flops,
            arithmetic_intensity=self.ai,
            data_home=self.data_home,
            label="nonworker-compute",
        )

    def segment_finished(self, thread: SimThread, segment: WorkSegment) -> None:
        """Count the finished task."""
        self.tasks_done += 1
