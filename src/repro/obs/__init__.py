"""Unified observability layer: spans, metrics, and exporters.

The paper's Figure 1 architecture stands on *monitoring* — the agent can
only steer per-NUMA-node thread counts because it observes application
progress.  This package gives the whole reproduction the same
measurement substrate:

* :mod:`repro.obs.tracer` — nested, timestamped :class:`Span` records
  with a thread-safe buffer (:class:`Tracer`, no-op :class:`NullTracer`);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, histograms, time series and rate integrators (generalising the
  old :mod:`repro.sim.metrics`, which remains as a shim);
* :mod:`repro.obs.export` — JSON-lines and Chrome ``chrome://tracing``
  trace-event exporters.

Instrumentation is wired into the hot paths (model prediction, the four
allocation searches, simulator ticks, runtime task execution, agent
decision rounds) through the process-wide :data:`OBS` facade and is
**zero-cost when disabled**: the default tracer is :data:`NULL_TRACER`
and every metric update is guarded by one ``OBS.enabled`` check.

Opt in for a scope::

    from repro import obs

    with obs.capture() as cap:
        ExhaustiveSearch().search(machine, apps)
    obs.write_chrome_trace("trace.json", cap.tracer, cap.metrics)

or process-wide with :func:`enable` / :func:`disable`, or from the CLI:
``python -m repro trace quickstart --export chrome --out trace.json``.
See ``docs/OBSERVABILITY.md`` for naming conventions and formats.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.export import (
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSet,
    MetricsRegistry,
    RateIntegrator,
    TimeSeries,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "RateIntegrator",
    "MetricSet",
    "MetricsRegistry",
    "Observability",
    "OBS",
    "CounterHandle",
    "GaugeHandle",
    "HistogramHandle",
    "Capture",
    "enable",
    "disable",
    "capture",
    "get_tracer",
    "get_metrics",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]


class Observability:
    """The process-wide observability switchboard.

    Instrumented call sites read three attributes: ``enabled`` (the
    single boolean hot paths branch on), ``tracer`` and ``metrics``.
    Mutate only through :func:`enable` / :func:`disable` /
    :func:`capture` so the flag and the tracer stay consistent.
    """

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.tracer: Tracer = NULL_TRACER
        self.metrics: MetricsRegistry = MetricsRegistry()


#: The one switchboard instance every instrumented hot path consults.
OBS = Observability()


class _MetricHandle:
    """A call-site cache for one named metric.

    ``OBS.metrics.counter("x").add()`` performs a dict lookup (and a
    string hash) on every call — measurable when it sits inside a search
    inner loop scoring tens of thousands of candidates.  A handle is
    created once, where the instrumented object is constructed, and
    resolves the metric object a single time per registry: the fast path
    is one identity comparison.  Handles rebind automatically when the
    registry is swapped (:func:`enable` / :func:`capture`), so a handle
    created before a capture still records into that capture.
    """

    __slots__ = ("name", "_registry", "_metric")

    #: Which :class:`MetricsRegistry` accessor resolves this handle.
    _kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._registry: MetricsRegistry | None = None
        self._metric = None

    def _resolve(self):
        registry = OBS.metrics
        if registry is not self._registry:
            self._metric = getattr(registry, self._kind)(self.name)
            self._registry = registry
        return self._metric


class CounterHandle(_MetricHandle):
    """Hoisted :class:`Counter` accessor (see :class:`_MetricHandle`)."""

    __slots__ = ()
    _kind = "counter"

    def add(self, amount: float = 1.0) -> None:
        """Increment the counter by ``amount``."""
        self._resolve().add(amount)


class GaugeHandle(_MetricHandle):
    """Hoisted :class:`Gauge` accessor (see :class:`_MetricHandle`)."""

    __slots__ = ()
    _kind = "gauge"

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._resolve().set(value)


class HistogramHandle(_MetricHandle):
    """Hoisted :class:`Histogram` accessor (see :class:`_MetricHandle`)."""

    __slots__ = ()
    _kind = "histogram"

    def record(self, value: float) -> None:
        """Add one observation."""
        self._resolve().record(value)


@dataclass(frozen=True)
class Capture:
    """What :func:`capture` yields: the active tracer and registry."""

    tracer: Tracer
    metrics: MetricsRegistry


def enable(
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> Tracer:
    """Turn instrumentation on process-wide; returns the active tracer.

    A fresh :class:`Tracer` is installed unless one is supplied; the
    existing metrics registry is kept unless replaced.
    """
    OBS.tracer = tracer if tracer is not None else Tracer()
    if metrics is not None:
        OBS.metrics = metrics
    OBS.enabled = True
    return OBS.tracer


def disable() -> None:
    """Turn instrumentation off (restores the no-op tracer)."""
    OBS.enabled = False
    OBS.tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The currently installed tracer (:data:`NULL_TRACER` when off)."""
    return OBS.tracer


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return OBS.metrics


@contextmanager
def capture(
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> Iterator[Capture]:
    """Enable instrumentation for a scope, restoring prior state after.

    Installs a fresh tracer *and* a fresh metrics registry (unless
    given), so a capture never mixes with ambient measurements::

        with capture() as cap:
            run_workload()
        write_chrome_trace("trace.json", cap.tracer, cap.metrics)
    """
    new_tracer = tracer if tracer is not None else Tracer()
    new_metrics = metrics if metrics is not None else MetricsRegistry()
    previous = (OBS.enabled, OBS.tracer, OBS.metrics)
    OBS.tracer = new_tracer
    OBS.metrics = new_metrics
    OBS.enabled = True
    try:
        yield Capture(tracer=new_tracer, metrics=new_metrics)
    finally:
        OBS.enabled, OBS.tracer, OBS.metrics = previous
