"""Ablations of the model's design choices (DESIGN.md Section 6)."""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.core import (
    AppSpec,
    NumaPerformanceModel,
    RemainderRule,
    ThreadAllocation,
)
from repro.core.bwshare import share_node_bandwidth
from repro.machine import model_machine, skylake_4s


def test_bench_remainder_rule(benchmark):
    """Proportional vs even remainder split across the paper scenarios.

    On every published scenario the two rules coincide (all unsatisfied
    threads share one unmet demand); they only diverge on heterogeneous
    mixes, where the divergence stays small.
    """

    def run():
        out = []
        machine = model_machine()
        apps = [
            AppSpec.memory_bound("mem0", 0.5),
            AppSpec.memory_bound("mem1", 0.5),
            AppSpec.memory_bound("mem2", 0.5),
            AppSpec.compute_bound("comp", 10.0),
        ]
        names = [a.name for a in apps]
        for label, tpn in [
            ("uneven (1,1,1,5)", [1, 1, 1, 5]),
            ("even (2,2,2,2)", [2, 2, 2, 2]),
        ]:
            alloc = ThreadAllocation.uniform(names, 4, tpn)
            prop = NumaPerformanceModel(
                RemainderRule.PROPORTIONAL
            ).predict(machine, apps, alloc).total_gflops
            even = NumaPerformanceModel(RemainderRule.EVEN).predict(
                machine, apps, alloc
            ).total_gflops
            out.append((label, prop, even))
        # A heterogeneous mix where the rules genuinely diverge.
        hetero = [
            AppSpec.memory_bound("hungry", 0.25),
            AppSpec.memory_bound("modest", 1.0),
        ]
        alloc = ThreadAllocation.uniform(["hungry", "modest"], 4, [1, 1])
        prop = NumaPerformanceModel(RemainderRule.PROPORTIONAL).predict(
            machine, hetero, alloc
        ).total_gflops
        even = NumaPerformanceModel(RemainderRule.EVEN).predict(
            machine, hetero, alloc
        ).total_gflops
        out.append(("heterogeneous (AI 0.25 vs 1.0)", prop, even))
        return out

    rows = benchmark(run)
    emit(
        "Ablation: remainder split rule",
        render_table(
            ["scenario", "proportional", "even"],
            [[l, p, e] for l, p, e in rows],
        ),
    )
    # Paper scenarios identical under both rules.
    for label, prop, even in rows[:2]:
        assert prop == pytest.approx(even)
    # The heterogeneous case diverges (that's the point of the knob).
    label, prop, even = rows[-1]
    assert prop != pytest.approx(even, rel=1e-6)


def test_bench_link_bandwidth_sensitivity(benchmark):
    """How the Table III cross-node scenario depends on link bandwidth.

    The 10 GB/s link value was recovered from the published 13.98 GFLOPS;
    this sweep shows the sensitivity of that identification.
    """

    def run():
        from repro.machine import MachineTopology

        out = []
        apps = [
            AppSpec.memory_bound("mem0", 1 / 32),
            AppSpec.memory_bound("mem1", 1 / 32),
            AppSpec.memory_bound("mem2", 1 / 32),
            AppSpec.numa_bad("bad", 1 / 16, home_node=0),
        ]
        names = [a.name for a in apps]
        alloc = ThreadAllocation.uniform(names, 4, 5)
        for link in (2.0, 5.0, 10.0, 20.0, 33.0):
            machine = MachineTopology.homogeneous(
                num_nodes=4,
                cores_per_node=20,
                peak_gflops_per_core=0.29,
                local_bandwidth=100.0,
                remote_bandwidth=link,
            )
            g = NumaPerformanceModel().predict(
                machine, apps, alloc
            ).total_gflops
            out.append((link, g))
        return out

    rows = benchmark(run)
    emit(
        "Ablation: cross-node GFLOPS vs link bandwidth (paper: 13.98)",
        render_table(["link GB/s", "total GFLOPS"], rows),
    )
    by_link = dict(rows)
    assert by_link[10.0] == pytest.approx(13.98, abs=0.005)
    gflops = [g for _, g in rows]
    assert gflops == sorted(gflops)  # faster links help monotonically


def test_bench_baseline_rule(benchmark):
    """The baseline guarantee vs plain proportional sharing.

    Assumption 5's floor protects low-demand threads; dropping it gives
    heavier flows more.  This quantifies what the guarantee costs the
    heavy threads on the Table I node.
    """

    def run():
        demands = np.array([20.0] * 3 + [1.0] * 5)
        with_floor = share_node_bandwidth(32.0, 8, demands).allocated
        # plain proportional: capped water-fill with no baseline floor
        alloc = np.zeros_like(demands)
        rem = 32.0
        for _ in range(10):
            unmet = demands - alloc
            mask = unmet > 1e-12
            if rem <= 1e-12 or not mask.any():
                break
            w = np.where(mask, unmet, 0.0)
            give = np.minimum(rem * w / w.sum(), unmet)
            alloc += give
            rem -= give.sum()
        return with_floor, alloc

    with_floor, without = benchmark(run)
    emit(
        "Ablation: baseline guarantee (Table I node)",
        render_table(
            ["thread", "with floor", "proportional only"],
            [
                [f"mem{i}" if i < 3 else f"comp{i - 3}", a, b]
                for i, (a, b) in enumerate(zip(with_floor, without))
            ],
        ),
    )
    # The floor guarantees the compute threads their 1 GB/s in both
    # cases here, but gives memory threads a different split.
    assert with_floor.sum() == pytest.approx(32.0)
    assert without.sum() == pytest.approx(32.0)
    # Without the floor, heavy demands grab more.
    assert without[0] > with_floor[0]
