"""Shared fixtures: paper machines and application sets."""

from __future__ import annotations

import pytest

from repro.core.spec import AppSpec
from repro.machine import (
    model_machine,
    numa_bad_example_machine,
    skylake_4s,
    uma_machine,
)


@pytest.fixture
def paper_machine():
    """The Tables I/II machine: 4 nodes x 8 cores, 10 GFLOPS, 32 GB/s."""
    return model_machine()


@pytest.fixture
def numa_bad_machine():
    """The Figure 3 machine: 60 GB/s local, 10 GB/s links."""
    return numa_bad_example_machine()


@pytest.fixture
def skylake():
    """The Table III machine: 4 x 20 cores, 0.29 GFLOPS, 100+10 GB/s."""
    return skylake_4s()


@pytest.fixture
def uma():
    """A single-node machine for isolation tests."""
    return uma_machine()


@pytest.fixture
def paper_apps():
    """The Tables I/II application set: 3 memory-bound + 1 compute-bound."""
    return [
        AppSpec.memory_bound("mem0", 0.5),
        AppSpec.memory_bound("mem1", 0.5),
        AppSpec.memory_bound("mem2", 0.5),
        AppSpec.compute_bound("comp", 10.0),
    ]


@pytest.fixture
def numa_bad_apps():
    """The Figure 3 application set: 3 NUMA-perfect + 1 NUMA-bad."""
    return [
        AppSpec.memory_bound("mem0", 0.5),
        AppSpec.memory_bound("mem1", 0.5),
        AppSpec.memory_bound("mem2", 0.5),
        AppSpec.numa_bad("bad", 1.0, home_node=3),
    ]
