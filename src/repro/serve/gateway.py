"""Network-facing TCP/HTTP gateway with admission control.

:class:`GatewayServer` puts one
:class:`~repro.serve.service.AllocationService` behind real network
listeners: a TCP endpoint speaking the same newline-delimited-JSON
protocol as the unix-socket :class:`~repro.serve.server.ServiceServer`,
plus a minimal HTTP/1.1 adapter exposing the identical command set to
clients that cannot hold a stream open.  Where the unix-socket server
trusts its handful of local peers, the gateway assumes *traffic*:

* **Connection limits** — at most ``max_connections`` concurrent
  sockets (TCP and HTTP combined); the next accept is answered with an
  ``overloaded`` :class:`~repro.serve.protocol.ErrorReply` (HTTP 503)
  and closed, so a connection flood cannot exhaust file descriptors.
* **Token-bucket rate limiting** — commands across *all* connections
  drain one :class:`TokenBucket`; when it runs dry the command is shed
  with ``overloaded`` instead of being queued behind a burst.
* **Bounded admission queue** — accepted commands wait in one bounded
  queue consumed by a single dispatcher task; overflow sheds with
  ``overloaded``.  The queue depth is the gateway's only buffering, so
  queueing delay — and therefore command latency — stays bounded too
  (pair the depth with ``ServiceConfig.command_deadline`` to turn the
  bound into an explicit SLO).
* **Per-connection deadlines** — a peer that keeps a socket open
  without completing a line (slow-loris) is disconnected after
  ``idle_deadline`` seconds; oversized frames are rejected with
  ``frame-too-large`` exactly like the unix-socket transport.
* **Graceful drain** — :meth:`GatewayServer.stop` closes the
  listeners, *finishes every already-admitted command*, then drains
  the service core (shutdown notices, journal compaction) and flushes
  each outbox, wired into the same write-ahead-journal/recovery
  lifecycle as :class:`~repro.serve.server.ServiceServer`.

Shedding reuses the PR-8 :data:`~repro.serve.protocol.ERROR_CODES`
table — no new codes are minted: every gateway rejection is
``overloaded``, ``draining``, ``frame-too-large``, or ``malformed``,
so existing clients' retry logic keeps working unchanged.

The wire protocol, every knob, and the SLO definitions are documented
in ``docs/GATEWAY.md``; drive the gateway under load with
``python -m repro load`` (:mod:`repro.serve.load`).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from dataclasses import dataclass
from typing import Callable

from repro.errors import ServiceError
from repro.obs import OBS, CounterHandle, GaugeHandle, HistogramHandle
from repro.serve.protocol import (
    Ack,
    Deregister,
    ErrorReply,
    QueryAllocation,
    Register,
    decode_message,
    encode_message,
)
from repro.serve.server import _Connection
from repro.serve.service import AllocationService, ServiceConfig

__all__ = [
    "TokenBucket",
    "GatewayConfig",
    "GatewayServer",
    "HTTP_STATUS",
]

# Hot-path metric handles (PERF001: resolved once, not per command).
_CONNECTIONS = GaugeHandle("gateway/connections")
_COMMANDS = CounterHandle("gateway/commands")
_SHED = CounterHandle("gateway/shed")
_RATE_LIMITED = CounterHandle("gateway/rate_limited")
_REJECTED = CounterHandle("gateway/rejected_connections")
_IDLE_TIMEOUTS = CounterHandle("gateway/idle_timeouts")
_HTTP_REQUESTS = CounterHandle("gateway/http_requests")
_COMMAND_LATENCY = HistogramHandle("gateway/command_latency")

#: Protocol :data:`~repro.serve.protocol.ERROR_CODES` -> HTTP status
#: used by the HTTP/1.1 adapter.  Retryable overload conditions map to
#: 503 so off-the-shelf HTTP clients back off; everything else maps to
#: the closest standard 4xx/5xx.
HTTP_STATUS: dict[str, int] = {
    "malformed": 400,
    "unsupported": 400,
    "invalid-request": 422,
    "unknown-session": 404,
    "duplicate-session": 409,
    "closed-session": 410,
    "overloaded": 503,
    "draining": 503,
    "backwards-report": 409,
    "no-allocation": 404,
    "deadline-exceeded": 504,
    "frame-too-large": 413,
}

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Content Too Large",
    422: "Unprocessable Content",
    431: "Request Header Fields Too Large",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Header count cap for the HTTP adapter (a header flood is just a
#: slow-loris variant with extra lines).
_MAX_HEADERS = 64


class TokenBucket:
    """Deterministic token-bucket rate limiter on an injected clock.

    The bucket holds at most ``burst`` tokens and refills continuously
    at ``rate`` tokens per second of the injected ``clock``.  Each
    admitted command takes one token; an empty bucket means the caller
    should shed.  Because the clock is injected (loop time in the
    gateway, simulation time in DES tests, a hand-cranked counter in
    doctests) the refill arithmetic is exact and replayable — no
    wall-clock reads (TIME001).

    >>> t = [0.0]
    >>> bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: t[0])
    >>> [bucket.try_acquire() for _ in range(3)]
    [True, True, False]
    >>> t[0] = 0.5  # half a second refills rate*0.5 = 1 token
    >>> bucket.try_acquire(), bucket.try_acquire()
    (True, False)
    """

    def __init__(
        self, rate: float, burst: int, clock: Callable[[], float]
    ) -> None:
        if rate <= 0:
            raise ServiceError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ServiceError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self.clock()
        if now > self._last:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
        self._last = now

    def available(self) -> float:
        """Tokens currently in the bucket (after refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if the bucket holds them; never blocks."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


@dataclass(frozen=True)
class GatewayConfig:
    """Immutable knobs of one :class:`GatewayServer`.

    Attributes
    ----------
    host:
        Interface the listeners bind (default loopback).
    port:
        TCP port for the NDJSON listener; ``0`` picks an ephemeral
        port (read it back from :attr:`GatewayServer.tcp_address`).
    http_port:
        Port for the HTTP/1.1 adapter; ``None`` (default) disables
        HTTP entirely, ``0`` picks an ephemeral port.
    max_connections:
        Concurrent sockets (TCP + HTTP combined) before new accepts
        are answered ``overloaded`` and closed.
    rate:
        Token-bucket refill in commands per second across all
        connections; ``None`` disables rate limiting.
    burst:
        Token-bucket capacity: commands absorbed instantly before the
        sustained ``rate`` applies.
    admission_limit:
        Commands queued for the dispatcher before further commands are
        shed ``overloaded``; the gateway's only buffering, hence its
        queueing-delay bound.
    idle_deadline:
        Seconds a connection may sit without completing a request
        line (or an HTTP request) before it is disconnected —
        the slow-loris bound.  ``None`` disables the deadline.
    max_line_bytes:
        Frame cap shared by the NDJSON listener (one request line) and
        the HTTP adapter (one header line / request body).
    outbox_limit:
        Pushed messages buffered per TCP connection before it is
        judged dead (same backpressure bound as the unix-socket
        server).
    """

    host: str = "127.0.0.1"
    port: int = 0
    http_port: int | None = None
    max_connections: int = 256
    rate: float | None = None
    burst: int = 64
    admission_limit: int = 1024
    idle_deadline: float | None = 30.0
    max_line_bytes: int = 64 * 1024
    outbox_limit: int = 64

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ServiceError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ServiceError(
                f"rate must be positive or None, got {self.rate}"
            )
        if self.burst < 1:
            raise ServiceError(f"burst must be >= 1, got {self.burst}")
        if self.admission_limit < 1:
            raise ServiceError(
                f"admission_limit must be >= 1, got {self.admission_limit}"
            )
        if self.idle_deadline is not None and self.idle_deadline <= 0:
            raise ServiceError(
                f"idle_deadline must be positive or None, "
                f"got {self.idle_deadline}"
            )
        if self.max_line_bytes < 1024:
            raise ServiceError(
                f"max_line_bytes must be >= 1024, got {self.max_line_bytes}"
            )
        if self.outbox_limit < 1:
            raise ServiceError(
                f"outbox_limit must be >= 1, got {self.outbox_limit}"
            )


class _Admitted:
    """One command that passed admission, waiting for the dispatcher."""

    __slots__ = ("message", "received_at", "conn", "future")

    def __init__(
        self,
        message,
        received_at: float,
        conn: _Connection | None,
        future: asyncio.Future | None,
    ) -> None:
        self.message = message
        self.received_at = received_at
        self.conn = conn
        self.future = future


class _HttpError(Exception):
    """An HTTP request that failed before reaching the protocol."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class GatewayServer:
    """TCP/HTTP front end of one allocation service under admission
    control (connection caps, rate limiting, bounded queueing, idle
    deadlines, graceful drain).

    Parameters
    ----------
    config:
        Service configuration (machine, debounce, overload knobs).
    gateway:
        Gateway configuration; default :class:`GatewayConfig` binds an
        ephemeral loopback TCP port with no HTTP adapter.
    journal_path:
        Optional write-ahead-journal directory.  Exactly as with the
        unix-socket server: a non-empty directory makes :meth:`start`
        *recover* the service before serving, and every state change
        is journaled so the next start survives a crash.
    """

    def __init__(
        self,
        config: ServiceConfig,
        gateway: GatewayConfig | None = None,
        *,
        journal_path: str | None = None,
    ) -> None:
        self.config = config
        self.gateway = gateway or GatewayConfig()
        self.journal_path = journal_path
        self.service: AllocationService | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._http_count = 0
        self._admission: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self._bucket: TokenBucket | None = None
        self._draining = False
        #: commands the dispatcher handed to the service core.
        self.commands = 0
        #: commands refused ``overloaded``/``draining`` at the gateway
        #: (rate limit, full admission queue, or drain in progress).
        self.shed = 0
        #: subset of :attr:`shed` refused by the token bucket.
        self.rate_limited = 0
        #: connects refused at the ``max_connections`` cap.
        self.rejected_connections = 0
        #: connections dropped at the ``idle_deadline`` (slow-loris).
        self.idle_timeouts = 0
        #: HTTP requests parsed (whatever their outcome).
        self.http_requests = 0

    @property
    def tcp_address(self) -> tuple[str, int]:
        """``(host, port)`` the TCP listener actually bound."""
        if self._tcp_server is None or not self._tcp_server.sockets:
            raise ServiceError("gateway is not started")
        return self._tcp_server.sockets[0].getsockname()[:2]

    @property
    def http_address(self) -> tuple[str, int]:
        """``(host, port)`` the HTTP listener actually bound."""
        if self._http_server is None or not self._http_server.sockets:
            raise ServiceError("gateway has no HTTP listener")
        return self._http_server.sockets[0].getsockname()[:2]

    @property
    def connection_count(self) -> int:
        """Currently open sockets (TCP + HTTP)."""
        return len(self._connections) + self._http_count

    async def start(self) -> AllocationService:
        """Bind the listeners and start dispatching; returns the core."""
        if self._tcp_server is not None:
            raise ServiceError("gateway already started")
        loop = asyncio.get_running_loop()
        if self.journal_path is not None:
            self.service = AllocationService.recover(
                self.journal_path,
                self.config,
                clock=loop.time,
                call_later=loop.call_later,
            )
        else:
            self.service = AllocationService(
                self.config,
                clock=loop.time,
                call_later=loop.call_later,
            )
        gw = self.gateway
        if gw.rate is not None:
            self._bucket = TokenBucket(gw.rate, gw.burst, loop.time)
        self._admission = asyncio.Queue(maxsize=gw.admission_limit)
        self._dispatcher = asyncio.ensure_future(self._dispatch())
        self._tcp_server = await asyncio.start_server(
            self._serve_tcp,
            host=gw.host,
            port=gw.port,
            limit=gw.max_line_bytes,
        )
        if gw.http_port is not None:
            self._http_server = await asyncio.start_server(
                self._serve_http,
                host=gw.host,
                port=gw.http_port,
                limit=gw.max_line_bytes,
            )
        return self.service

    async def stop(self, reason: str = "draining") -> None:
        """Graceful drain: finish admitted commands, then shut down.

        Ordering is the whole point: the listeners close first (no new
        connections), then every command already in the admission
        queue is dispatched and answered, and only then does the
        service core drain — shutdown notices to every subscribed
        session, journal compaction — and the per-connection outboxes
        flush.  A command accepted before :meth:`stop` therefore
        always gets its real reply, never a silent drop.
        """
        if self._tcp_server is None:
            return
        assert self.service is not None
        assert self._admission is not None
        self._draining = True
        self._tcp_server.close()
        await self._tcp_server.wait_closed()
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
        await self._admission.join()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        self.service.drain(reason)
        writers = []
        for conn in list(self._connections):
            conn.close_outbox()
            if conn.writer_task is not None:
                writers.append(conn.writer_task)
        if writers:
            await asyncio.gather(*writers, return_exceptions=True)
        for conn in list(self._connections):
            conn.writer.close()
            with contextlib.suppress(ConnectionError):
                await conn.writer.wait_closed()
        self._connections.clear()
        self._tcp_server = None
        self._http_server = None

    # -- admission ------------------------------------------------------

    def _shed_reply(self, message, error: str, code: str) -> ErrorReply:
        self.shed += 1
        if OBS.enabled:
            _SHED.add()
        return ErrorReply(
            error=error,
            in_reply_to=getattr(message, "TYPE", None),
            code=code,
        )

    def _admit(
        self,
        message,
        received_at: float,
        conn: _Connection | None = None,
        future: asyncio.Future | None = None,
    ) -> ErrorReply | None:
        """Run one decoded command through admission control.

        Returns ``None`` when the command was queued for the
        dispatcher, or the :class:`~repro.serve.protocol.ErrorReply`
        it was shed with (already counted) for the caller to deliver.
        """
        assert self._admission is not None
        if self._draining:
            return self._shed_reply(
                message,
                "gateway is draining; admission is closed",
                "draining",
            )
        if self._bucket is not None and not self._bucket.try_acquire():
            self.rate_limited += 1
            if OBS.enabled:
                _RATE_LIMITED.add()
            return self._shed_reply(
                message,
                f"rate limit exceeded "
                f"({self.gateway.rate:g} commands/s, "
                f"burst {self.gateway.burst}); retry later",
                "overloaded",
            )
        item = _Admitted(message, received_at, conn, future)
        try:
            self._admission.put_nowait(item)
        except asyncio.QueueFull:
            return self._shed_reply(
                message,
                f"admission queue full "
                f"({self.gateway.admission_limit} commands queued); "
                f"retry later",
                "overloaded",
            )
        return None

    async def _dispatch(self) -> None:
        """Dispatcher task: serialize admitted commands into the core."""
        assert self._admission is not None
        # Not a retry loop: one iteration per admitted command, ended
        # by stop() cancelling the task once the queue is drained.
        while True:  # repro: noqa[RETRY001]
            item = await self._admission.get()
            try:
                self._handle_admitted(item)
            finally:
                self._admission.task_done()

    def _handle_admitted(self, item: _Admitted) -> None:
        service = self.service
        assert service is not None
        message = item.message
        reply = service.handle(message, received_at=item.received_at)
        self.commands += 1
        if OBS.enabled:
            _COMMANDS.add()
            _COMMAND_LATENCY.record(
                service.clock() - item.received_at
            )
        conn = item.conn
        if conn is not None:
            if isinstance(message, Register) and isinstance(reply, Ack):
                conn.session_name = message.name
                service.subscribe(message.name, conn.push)
            conn.push(reply)
            if (
                isinstance(message, Deregister)
                and isinstance(reply, Ack)
                and conn.session_name == message.name
            ):
                conn.session_name = None
        if item.future is not None and not item.future.done():
            item.future.set_result(reply)

    # -- TCP listener ---------------------------------------------------

    async def _reject_connection(
        self, writer: asyncio.StreamWriter, line: bytes
    ) -> None:
        """Refuse a socket at the connection cap: one reply, then close."""
        self.rejected_connections += 1
        if OBS.enabled:
            _REJECTED.add()
        writer.write(line)
        with contextlib.suppress(ConnectionError):
            await writer.drain()
        writer.close()
        with contextlib.suppress(ConnectionError):
            await writer.wait_closed()

    async def _serve_tcp(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        gw = self.gateway
        if self._draining or self.connection_count >= gw.max_connections:
            notice = ErrorReply(
                error=(
                    f"connection limit reached "
                    f"({gw.max_connections} sockets); retry later"
                ),
                code="overloaded",
            )
            await self._reject_connection(
                writer, (encode_message(notice) + "\n").encode("utf-8")
            )
            return
        conn = _Connection(reader, writer, gw.outbox_limit)
        self._connections.add(conn)
        if OBS.enabled:
            _CONNECTIONS.set(self.connection_count)
        conn.writer_task = asyncio.ensure_future(conn.drain_outbox())
        service = self.service
        assert service is not None
        loop = asyncio.get_running_loop()
        try:
            # Not a retry loop: one iteration per request line, bounded
            # by EOF, the idle deadline, or a torn frame.
            while True:  # repro: noqa[RETRY001]
                try:
                    line = await self._read_line(reader)
                except asyncio.TimeoutError:
                    # Slow-loris: the peer held the socket open without
                    # completing a line within the idle deadline.  No
                    # reply — a stalled writer is not reading either.
                    self.idle_timeouts += 1
                    if OBS.enabled:
                        _IDLE_TIMEOUTS.add()
                    break
                except ValueError:
                    # Oversized frame: past a torn frame there is no
                    # trustworthy record boundary left.
                    conn.push(
                        ErrorReply(
                            error=(
                                f"request line exceeded the "
                                f"{gw.max_line_bytes}-byte frame cap"
                            ),
                            code="frame-too-large",
                        )
                    )
                    break
                if not line:
                    break
                received_at = loop.time()
                try:
                    message = decode_message(line.decode("utf-8"))
                except UnicodeDecodeError as exc:
                    conn.push(
                        ErrorReply(
                            error=f"request line is not UTF-8: {exc}",
                            code="malformed",
                        )
                    )
                    continue
                except ServiceError as exc:
                    conn.push(
                        ErrorReply(
                            error=str(exc),
                            code=getattr(exc, "code", None) or "malformed",
                        )
                    )
                    continue
                shed = self._admit(message, received_at, conn=conn)
                if shed is not None:
                    conn.push(shed)
        except ConnectionError:  # repro: noqa[EXC002]
            # Mid-read disconnect: nothing to reply to — fall through
            # to the teardown below.
            pass
        finally:
            if conn.session_name is not None:
                service.unsubscribe(conn.session_name)
            conn.close_outbox()
            if conn.writer_task is not None:
                with contextlib.suppress(asyncio.CancelledError):
                    await conn.writer_task
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()
            self._connections.discard(conn)
            if OBS.enabled:
                _CONNECTIONS.set(self.connection_count)

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes:
        """One line, bounded by the idle deadline when configured."""
        deadline = self.gateway.idle_deadline
        if deadline is None:
            return await reader.readline()
        return await asyncio.wait_for(reader.readline(), timeout=deadline)

    # -- HTTP adapter ---------------------------------------------------

    async def _serve_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        gw = self.gateway
        if self._draining or self.connection_count >= gw.max_connections:
            await self._reject_connection(
                writer,
                _http_frame(
                    503,
                    {
                        "error": (
                            f"connection limit reached "
                            f"({gw.max_connections} sockets); retry later"
                        ),
                        "code": "overloaded",
                    },
                ),
            )
            return
        self._http_count += 1
        if OBS.enabled:
            _CONNECTIONS.set(self.connection_count)
        try:
            try:
                method, path, body = await self._read_http_request(reader)
            except asyncio.TimeoutError:
                self.idle_timeouts += 1
                if OBS.enabled:
                    _IDLE_TIMEOUTS.add()
                return
            except _HttpError as exc:
                self.http_requests += 1
                if OBS.enabled:
                    _HTTP_REQUESTS.add()
                writer.write(
                    _http_frame(exc.status, {"error": exc.detail})
                )
                with contextlib.suppress(ConnectionError):
                    await writer.drain()
                return
            self.http_requests += 1
            if OBS.enabled:
                _HTTP_REQUESTS.add()
            status, payload = await self._route_http(method, path, body)
            writer.write(_http_frame(status, payload))
            with contextlib.suppress(ConnectionError):
                await writer.drain()
        except ConnectionError:  # repro: noqa[EXC002]
            # The peer vanished mid-request; nothing left to answer.
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()
            self._http_count -= 1
            if OBS.enabled:
                _CONNECTIONS.set(self.connection_count)

    async def _read_http_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        """Parse one HTTP/1.1 request head + body off the stream."""
        try:
            request_line = await self._read_line(reader)
        except ValueError as exc:
            raise _HttpError(431, "request line too long") from exc
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed request line")
        method, path = parts[0], parts[1]
        headers: dict[str, str] = {}
        # Not a retry loop: one iteration per header line, bounded by
        # the blank line, EOF, and the _MAX_HEADERS cap.
        while True:  # repro: noqa[RETRY001]
            try:
                line = await self._read_line(reader)
            except ValueError as exc:
                raise _HttpError(431, "header line too long") from exc
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= _MAX_HEADERS:
                raise _HttpError(
                    431, f"more than {_MAX_HEADERS} headers"
                )
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header {name.strip()!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError as exc:
                raise _HttpError(
                    400, "content-length is not an integer"
                ) from exc
            if length < 0:
                raise _HttpError(400, "negative content-length")
            if length > self.gateway.max_line_bytes:
                raise _HttpError(
                    413,
                    f"body exceeds the "
                    f"{self.gateway.max_line_bytes}-byte frame cap",
                )
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise _HttpError(400, "body shorter than content-length") from exc
        return method, path, body

    async def _route_http(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        """Map one parsed HTTP request onto the protocol command set."""
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            service = self.service
            assert service is not None
            return 200, {
                "status": "draining" if self._draining else "ok",
                "sessions": len(service.registry),
                "connections": self.connection_count,
            }
        if path == "/v1/command":
            if method != "POST":
                return 405, {"error": "command endpoint is POST-only"}
            try:
                message = decode_message(body.decode("utf-8"))
            except (UnicodeDecodeError, ServiceError) as exc:
                reply = ErrorReply(
                    error=f"malformed command body: {exc}",
                    code="malformed",
                )
                return HTTP_STATUS["malformed"], reply.to_dict()
            return await self._http_command(message)
        if path.startswith("/v1/allocation/"):
            if method != "GET":
                return 405, {"error": "allocation endpoint is GET-only"}
            name = path[len("/v1/allocation/") :]
            if not name:
                return 404, {"error": "allocation of which session?"}
            return await self._http_command(QueryAllocation(name=name))
        return 404, {"error": f"no route {method} {path}"}

    async def _http_command(self, message) -> tuple[int, dict]:
        """Admit one protocol message on behalf of an HTTP client."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        shed = self._admit(message, loop.time(), future=future)
        if shed is not None:
            return HTTP_STATUS.get(shed.code or "overloaded", 503), (
                shed.to_dict()
            )
        reply = await future
        if isinstance(reply, ErrorReply):
            status = HTTP_STATUS.get(reply.code or "malformed", 400)
        else:
            status = 200
        return status, reply.to_dict()


def _http_frame(status: int, payload: dict) -> bytes:
    """One complete ``Connection: close`` HTTP/1.1 response."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    encoded = body.encode("utf-8")
    reason = _HTTP_REASONS.get(status, "Error")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"content-type: application/json\r\n"
        f"content-length: {len(encoded)}\r\n"
        f"connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + encoded
