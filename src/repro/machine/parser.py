"""Parse textual machine descriptions into topologies.

A downstream user's first question is "how do I describe *my* machine?".
This module accepts a small, human-writable format (inspired by hwloc's
summary output) so topologies can live in config files next to job
scripts:

.. code-block:: text

    machine skylake-2s
    node 0: cores=20 gflops=0.29 bandwidth=100
    node 1: cores=20 gflops=0.29 bandwidth=100
    link 0 1: 10
    link 1 0: 10

Rules: one ``machine`` line (optional, names the topology), one ``node``
line per NUMA node (ids dense from 0), and ``link`` lines for
off-diagonal bandwidths — omitted links default to the *minimum* of the
two nodes' local bandwidths (a conservative guess).  Blank lines and
``#`` comments are ignored.
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import TopologyError
from repro.machine.topology import Core, MachineTopology, NumaNode

__all__ = ["parse_topology", "format_topology"]

_NODE_RE = re.compile(
    r"^node\s+(\d+)\s*:\s*cores\s*=\s*(\d+)\s+gflops\s*=\s*([\d.eE+-]+)"
    r"\s+bandwidth\s*=\s*([\d.eE+-]+)\s*$"
)
_LINK_RE = re.compile(
    r"^link\s+(\d+)\s+(\d+)\s*:\s*([\d.eE+-]+)\s*$"
)
_MACHINE_RE = re.compile(r"^machine\s+(\S+)\s*$")


def parse_topology(text: str) -> MachineTopology:
    """Parse the description format above into a topology.

    Raises
    ------
    TopologyError
        On syntax errors, duplicate/missing node ids, or links referring
        to unknown nodes.
    """
    name = "parsed-machine"
    nodes: dict[int, tuple[int, float, float]] = {}
    links: dict[tuple[int, int], float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if m := _MACHINE_RE.match(line):
            name = m.group(1)
            continue
        if m := _NODE_RE.match(line):
            node_id = int(m.group(1))
            if node_id in nodes:
                raise TopologyError(
                    f"line {lineno}: duplicate node {node_id}"
                )
            nodes[node_id] = (
                int(m.group(2)),
                float(m.group(3)),
                float(m.group(4)),
            )
            continue
        if m := _LINK_RE.match(line):
            links[(int(m.group(1)), int(m.group(2)))] = float(m.group(3))
            continue
        raise TopologyError(f"line {lineno}: cannot parse: {raw!r}")

    if not nodes:
        raise TopologyError("description contains no nodes")
    n = len(nodes)
    if sorted(nodes) != list(range(n)):
        raise TopologyError(
            f"node ids must be dense from 0, got {sorted(nodes)}"
        )
    for (s, m_), _ in links.items():
        if s not in nodes or m_ not in nodes:
            raise TopologyError(f"link {s}->{m_} names an unknown node")
        if s == m_:
            raise TopologyError(
                f"link {s}->{m_}: local bandwidth belongs on the node line"
            )

    built: list[NumaNode] = []
    gid = 0
    for node_id in range(n):
        cores, gflops, bw = nodes[node_id]
        node_cores = []
        for local in range(cores):
            node_cores.append(
                Core(
                    global_id=gid,
                    node_id=node_id,
                    local_id=local,
                    peak_gflops=gflops,
                )
            )
            gid += 1
        built.append(
            NumaNode(
                node_id=node_id,
                cores=tuple(node_cores),
                local_bandwidth=bw,
            )
        )
    matrix = np.zeros((n, n))
    for i in range(n):
        matrix[i, i] = nodes[i][2]
        for j in range(n):
            if i == j:
                continue
            matrix[i, j] = links.get(
                (i, j), min(nodes[i][2], nodes[j][2])
            )
    return MachineTopology(
        nodes=tuple(built), link_bandwidth=matrix, name=name
    )


def format_topology(machine: MachineTopology) -> str:
    """Inverse of :func:`parse_topology` (round-trips exactly)."""
    lines = [f"machine {machine.name}"]
    for node in machine.nodes:
        lines.append(
            f"node {node.node_id}: cores={node.num_cores} "
            f"gflops={node.cores[0].peak_gflops:g} "
            f"bandwidth={node.local_bandwidth:g}"
        )
    for s in range(machine.num_nodes):
        for m in range(machine.num_nodes):
            if s != m:
                lines.append(
                    f"link {s} {m}: {machine.bandwidth(s, m):g}"
                )
    return "\n".join(lines) + "\n"
