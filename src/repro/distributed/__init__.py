"""Distributed execution layer (Section V): partitions x synchronisation."""

from repro.distributed.cluster import ClusterExperiment, ClusterRun
from repro.distributed.messaging import (
    BspProgram,
    BspResult,
    DeliveryResult,
    LossyNetworkModel,
    NetworkModel,
    ReliableChannel,
    SyncKind,
)
from repro.distributed.partition import (
    DynamicSharingPartition,
    NodePerformance,
    Partition,
    StaticExclusivePartition,
    StaticSplitPartition,
)
from repro.distributed.rates import PeriodicRate, RatePhase
from repro.distributed.workload import (
    BarrierIterativeWorkload,
    TaskBagWorkload,
    WorkloadResult,
)

__all__ = [
    "NetworkModel",
    "LossyNetworkModel",
    "DeliveryResult",
    "ReliableChannel",
    "SyncKind",
    "BspResult",
    "BspProgram",
    "PeriodicRate",
    "RatePhase",
    "NodePerformance",
    "Partition",
    "StaticExclusivePartition",
    "StaticSplitPartition",
    "DynamicSharingPartition",
    "BarrierIterativeWorkload",
    "TaskBagWorkload",
    "WorkloadResult",
    "ClusterExperiment",
    "ClusterRun",
]
