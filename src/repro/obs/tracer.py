"""Nested, timestamped spans with a thread-safe in-memory buffer.

A :class:`Span` is one timed operation with free-form attributes; spans
nest per thread (the innermost open span on the calling thread becomes
the parent of the next one started there).  The :class:`Tracer` collects
finished spans in a lock-protected buffer that exporters
(:mod:`repro.obs.export`) drain into JSON-lines or Chrome trace files.

Tracing must cost nothing when off: the process-wide default is
:data:`NULL_TRACER`, whose :meth:`Tracer.span` hands back one shared
no-op context manager, and instrumented hot paths additionally guard
metric updates with ``if OBS.enabled:`` (see :mod:`repro.obs`).

This tracer is distinct from :class:`repro.sim.trace.Tracer`, which
records the *simulated machine's* typed event log on the simulated
clock; this one measures the *reproduction code itself* on the wall
clock (or any injected ``clock``).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ObservabilityError

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(slots=True)
class Span:
    """One timed operation.

    Attributes
    ----------
    name:
        Slash-separated span name (``"optimizer/exhaustive"``).
    span_id / parent_id:
        Unique id and the id of the enclosing span on the same thread
        (``None`` for a root span).
    thread_id:
        :func:`threading.get_ident` of the thread that opened the span.
    start / end:
        Clock readings (seconds); ``end`` is ``None`` while the span is
        open.  Equal start and end mark an instant event.
    attrs:
        Free-form key/value annotations.
    """

    name: str
    span_id: int
    parent_id: int | None
    thread_id: int
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        """Seconds between start and end, or ``None`` while open."""
        return None if self.end is None else self.end - self.start

    @property
    def finished(self) -> bool:
        """True once the span has ended."""
        return self.end is not None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (the JSON-lines record)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            thread_id=data["thread_id"],
            start=data["start"],
            end=data["end"],
            attrs=dict(data.get("attrs", {})),
        )


class _DiscardAttrs(dict):
    """Attribute sink of the shared no-op span: writes vanish."""

    def __setitem__(self, key: Any, value: Any) -> None:
        pass

    def setdefault(self, key: Any, default: Any = None) -> Any:
        return default

    def update(self, *args: Any, **kwargs: Any) -> None:
        pass


#: The one span every disabled tracer hands out; annotating it is a no-op.
_NULL_SPAN = Span(
    name="",
    span_id=0,
    parent_id=None,
    thread_id=0,
    start=0.0,
    end=0.0,
    attrs=_DiscardAttrs(),
)


class _NullContext:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    """Context manager opening/closing one span (what ``span()`` returns)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start(self._name, **self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.finish(self._span)
        return False


class Tracer:
    """Collects nested :class:`Span` records across threads.

    Parameters
    ----------
    clock:
        Timestamp source; defaults to :func:`time.perf_counter`.  Inject
        a simulated clock to trace in simulation time instead.
    enabled:
        When False the tracer records nothing and ``span()`` returns a
        shared no-op context manager (one attribute check per call).
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.clock = clock or time.perf_counter
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any):
        """Context manager: open a span now, close it on exit.

        ``with tracer.span("agent/round", sim_time=t) as sp:`` — the
        yielded :class:`Span` accepts further ``sp.attrs[...]``
        annotations, including after the block exits.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, attrs)

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span manually; pair with :meth:`finish` (LIFO order)."""
        if not self.enabled:
            return _NULL_SPAN
        stack = self._stack()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=stack[-1].span_id if stack else None,
            thread_id=threading.get_ident(),
            start=self.clock(),
            attrs=attrs,
        )
        stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close a span opened with :meth:`start` on this thread."""
        if span is _NULL_SPAN:
            return
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise ObservabilityError(
                f"span '{span.name}' is not the innermost open span on "
                f"this thread (spans close in LIFO order)"
            )
        stack.pop()
        span.end = self.clock()
        with self._lock:
            self._spans.append(span)

    def instant(self, name: str, **attrs: Any) -> Span:
        """Record a zero-duration marker under the current span."""
        if not self.enabled:
            return _NULL_SPAN
        now = self.clock()
        stack = self._stack()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=stack[-1].span_id if stack else None,
            thread_id=threading.get_ident(),
            start=now,
            end=now,
            attrs=attrs,
        )
        with self._lock:
            self._spans.append(span)
        return span

    def record(
        self, name: str, start: float, end: float, **attrs: Any
    ) -> Span:
        """Record an explicitly timed span (e.g. on the simulated clock)."""
        if not self.enabled:
            return _NULL_SPAN
        if end < start:
            raise ObservabilityError(
                f"span '{name}': end {end} before start {start}"
            )
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=None,
            thread_id=threading.get_ident(),
            start=start,
            end=end,
            attrs=attrs,
        )
        with self._lock:
            self._spans.append(span)
        return span

    # ------------------------------------------------------------------
    def current(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def spans(self) -> tuple[Span, ...]:
        """All finished spans, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def filter(
        self,
        name: str | None = None,
        predicate: Callable[[Span], bool] | None = None,
    ) -> list[Span]:
        """Finished spans matching all the given criteria."""
        out = []
        for s in self.spans:
            if name is not None and s.name != name:
                continue
            if predicate is not None and not predicate(s):
                continue
            out.append(s)
        return out

    def clear(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        with self._lock:
            self._spans.clear()


class NullTracer(Tracer):
    """The always-off tracer: every operation is a no-op.

    Installed process-wide by default (:data:`NULL_TRACER`) so
    instrumentation costs one attribute check until someone opts in via
    :func:`repro.obs.enable` or :func:`repro.obs.capture`.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)


#: Shared no-op tracer instance — the process-wide default.
NULL_TRACER = NullTracer()
