"""A lightweight units/dimension pass over suffix-annotated names.

The model layer passes physical quantities as bare floats; the project
convention (docs/STATIC_ANALYSIS.md) is to carry the unit in the
variable name's suffix — ``demand_gbps``, ``peak_gflops``,
``size_bytes``, ``elapsed_seconds``.  This pass tracks those suffixes
through additive arithmetic and ordering comparisons and flags any
expression that mixes two different units: ``peak_gflops +
link_gbps`` is *always* wrong no matter what the numbers say.

Multiplication and division are exempt — they legitimately *change*
units (``gflops / gbps`` is arithmetic intensity), and a full
dimensional algebra is out of scope for a name-based pass.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register,
)

__all__ = ["CrossUnitArithmetic", "unit_of_name"]

#: Recognised unit suffixes, longest first so ``_gbps`` wins over ``_bps``.
_UNIT_SUFFIXES = (
    "gflops",
    "gbps",
    "gbs",
    "bps",
    "bytes",
    "gb",
    "seconds",
    "secs",
    "ms",
    "us",
    "ns",
    "threads",
    "cores",
    "flops",
    "ai",
)

#: Suffixes that are aliases of one another (same physical dimension).
_CANONICAL = {
    "gbs": "gbps",
    "bps": "gbps",
    "secs": "seconds",
    "ms": "seconds",
    "us": "seconds",
    "ns": "seconds",
    "flops": "gflops",
    "cores": "threads",
}


def unit_of_name(name: str) -> str | None:
    """The canonical unit a variable name carries, or ``None``.

    The unit is the name's final ``_``-separated component when it is a
    recognised suffix: ``local_bw_gbps`` -> ``gbps``, ``n_threads`` ->
    ``threads``, ``baseline`` -> ``None``.
    """
    leaf = name.rsplit(".", 1)[-1].lower()
    parts = leaf.split("_")
    if len(parts) < 2:  # a bare ``gbps`` names a unit, not a quantity
        return None
    suffix = parts[-1]
    if suffix in _UNIT_SUFFIXES:
        return _CANONICAL.get(suffix, suffix)
    return None


def _unit_of_expr(node: ast.expr) -> str | None:
    """Unit of an expression, derived from names only (no inference)."""
    if isinstance(node, ast.Name):
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_name(node.attr)
    if isinstance(node, ast.UnaryOp):
        return _unit_of_expr(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub)
    ):
        # An additive expression keeps its operands' (shared) unit.
        return _unit_of_expr(node.left) or _unit_of_expr(node.right)
    return None


@register
class CrossUnitArithmetic(Rule):
    """``peak_gflops + link_gbps`` — adding different dimensions."""

    rule_id = "UNIT001"
    severity = Severity.ERROR
    summary = (
        "addition/subtraction/comparison mixes unit-suffixed names of "
        "different dimensions (gbps vs gflops vs bytes ...)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                pairs = [(node.left, node.right)]
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                pairs = list(zip(operands, operands[1:]))
            else:
                continue
            for left, right in pairs:
                lu = _unit_of_expr(left)
                ru = _unit_of_expr(right)
                if lu is not None and ru is not None and lu != ru:
                    yield self.violation(
                        ctx,
                        node,
                        f"mixes units '{lu}' and '{ru}' in one "
                        f"additive expression or comparison",
                    )
