#!/usr/bin/env python3
"""Section V: does the on-node gain survive in a distributed run?

A main MPI-style component shares every node of an 8-node cluster with a
bursty co-located component.  Three partitioning strategies are compared
under two synchronisation disciplines.

Run:  python examples/cluster_colocation.py
"""

from repro.analysis import render_table
from repro.core import AppSpec
from repro.distributed import (
    ClusterExperiment,
    DynamicSharingPartition,
    NodePerformance,
    StaticExclusivePartition,
    StaticSplitPartition,
)
from repro.machine import model_machine


def main() -> None:
    machine = model_machine()
    main_app = AppSpec("main-solver", 2.0)
    colocated = AppSpec("in-situ-analytics", 2.0)
    perf = NodePerformance(machine, main_app, colocated)

    partitions = {
        "static node-exclusive": StaticExclusivePartition(
            perf, main_fraction=0.5
        ),
        "static per-node split": StaticSplitPartition(
            perf, main_share=0.5, colocated_duty_cycle=0.5
        ),
        "dynamic core shifting": DynamicSharingPartition(
            perf,
            main_share_busy=0.5,
            main_share_quiet=1.0,
            colocated_duty_cycle=0.5,
            reallocation_penalty=0.02,
        ),
    }
    experiment = ClusterExperiment(
        num_ranks=8, iterations=40, work_per_iteration=20.0
    )

    rows = []
    for name, partition in partitions.items():
        barrier = experiment.run_barrier(name, partition)
        taskbag = experiment.run_taskbag(name, partition)
        rows.append(
            [
                name,
                barrier.makespan,
                barrier.result.efficiency,
                taskbag.makespan,
            ]
        )
    print(
        render_table(
            [
                "partition",
                "barrier makespan [s]",
                "barrier efficiency",
                "task-bag makespan [s]",
            ],
            rows,
            title="8-rank cluster, main component co-located with "
            "bursty analytics:",
        )
    )
    print(
        "\nAs the paper predicts: with loose synchronisation (task bag) "
        "dynamic core\nshifting converts on-node gains into overall "
        "speedup, while a per-iteration\nbarrier lets the slowest rank "
        "eat most of the benefit."
    )


if __name__ == "__main__":
    main()
