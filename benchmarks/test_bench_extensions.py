"""Benchmarks for the paper's implied-but-not-run experiments.

Three extensions the text motivates without evaluating:

* beneficial over-subscription (Section II's I/O argument),
* the cost of the no-DVFS assumption (model assumption 2),
* large-scale model-vs-simulator cross-validation (Table III at scale).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import (
    render_table,
    run_dvfs_ablation,
    run_model_validation,
    run_oversub_benefit,
)


def test_bench_oversub_benefit(benchmark):
    res = benchmark.pedantic(
        run_oversub_benefit, kwargs={"duration": 0.25}, rounds=1,
        iterations=1,
    )
    emit(
        "Beneficial over-subscription: I/O-heavy app on an 8-core node",
        render_table(
            ["threads", "GFLOPS"],
            [[t, g] for t, g in sorted(res.gflops_by_threads.items())],
        ),
    )
    gflops = [g for _, g in sorted(res.gflops_by_threads.items())]
    # More threads than cores fill the I/O gaps: monotone improvement.
    assert gflops == sorted(gflops)
    assert res.best_thread_count > 8


def test_bench_dvfs_ablation(benchmark):
    res = benchmark.pedantic(run_dvfs_ablation, rounds=1, iterations=1)
    emit(
        "DVFS ablation: packed vs spread placement of 8 compute threads",
        render_table(
            ["placement", "no DVFS", "with DVFS"],
            [
                ["packed (8 on node 0)", res.packed_no_dvfs, res.packed_dvfs],
                ["spread (2 per node)", res.spread_no_dvfs, res.spread_dvfs],
            ],
        ),
    )
    # Without DVFS placement is irrelevant for a compute-bound app
    # (the paper's assumption 2 makes this exact).
    assert res.spread_no_dvfs == pytest.approx(
        res.packed_no_dvfs, rel=0.02
    )
    # With DVFS, spreading wins (fewer active cores per node -> boost).
    assert res.spread_dvfs > res.packed_dvfs * 1.15


def test_bench_model_validation(benchmark):
    res = benchmark.pedantic(
        run_model_validation,
        kwargs={"scenarios": 12, "seed": 42, "duration": 0.2},
        rounds=1,
        iterations=1,
    )
    emit(
        "Model vs simulator cross-validation on random workloads",
        render_table(
            ["metric", "value [%]"],
            [
                ["max |relative error|", res.max_error * 100],
                ["mean |relative error|", res.mean_error * 100],
            ],
        )
        + f"\nscenarios evaluated: {len(res.relative_errors)}",
    )
    assert len(res.relative_errors) >= 8
    # The paper's hardware matched within ~5%; the simulator realises
    # the model's assumptions, so agreement must be tighter still.
    assert res.max_error < 0.05
