"""The hardened agent loop against unresponsive and raising endpoints:
policy primitives, in-round retries, heartbeats, circuit breaker, quorum
fallback — and the guarantee that one bad endpoint never deadlocks the
loop or starves the healthy ones."""

import random

import pytest

from repro.agent import Agent, FairShareStrategy, OcrVxEndpoint
from repro.agent.protocol import (
    CommandKind,
    RuntimeEndpoint,
    StatusReport,
    ThreadCommand,
)
from repro.agent.resilience import (
    EndpointHealth,
    HeartbeatTracker,
    ResiliencePolicy,
)
from repro.errors import AgentError
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


class TestResiliencePolicy:
    def test_defaults_valid(self):
        ResiliencePolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": 0.0},
            {"backoff_factor": 0.5},
            {"backoff_cap": 0.0001},  # below base
            {"jitter": 1.0},
            {"freshness_window": 0.0},
            {"quarantine_after": 0},
            {"quorum": 0.0},
            {"quorum": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(AgentError):
            ResiliencePolicy(**kwargs)

    def test_backoff_exponential_and_capped(self):
        policy = ResiliencePolicy(
            backoff_base=0.001,
            backoff_factor=2.0,
            backoff_cap=0.004,
            jitter=0.0,
        )
        rng = random.Random(0)
        assert policy.backoff_delay(1, rng) == pytest.approx(0.001)
        assert policy.backoff_delay(2, rng) == pytest.approx(0.002)
        assert policy.backoff_delay(3, rng) == pytest.approx(0.004)
        assert policy.backoff_delay(10, rng) == pytest.approx(0.004)  # capped
        with pytest.raises(AgentError):
            policy.backoff_delay(0, rng)

    def test_backoff_jitter_stays_in_band_and_is_seeded(self):
        policy = ResiliencePolicy(
            backoff_base=0.01, backoff_cap=0.01, jitter=0.25
        )
        delays = [
            policy.backoff_delay(1, random.Random(42)) for _ in range(5)
        ]
        assert len(set(delays)) == 1  # same seed, same jitter
        for d in delays:
            assert 0.0075 <= d <= 0.0125


class TestHeartbeatTracker:
    def test_staleness_window(self):
        hb = HeartbeatTracker(0.015)
        assert hb.stale("a", now=0.0)  # never seen
        hb.beat("a", 0.01)
        assert not hb.stale("a", now=0.02)
        assert hb.stale("a", now=0.03)
        assert hb.age("a", now=0.02) == pytest.approx(0.01)
        assert hb.last("missing") is None

    def test_backwards_beat_rejected(self):
        hb = HeartbeatTracker(1.0)
        hb.beat("a", 2.0)
        with pytest.raises(AgentError):
            hb.beat("a", 1.0)

    def test_fresh_report_predicate(self):
        hb = HeartbeatTracker(0.015)
        assert hb.fresh(0.09, now=0.1)
        assert not hb.fresh(0.05, now=0.1)


class TestEndpointHealth:
    def test_responsive_tracks_breaker(self):
        h = EndpointHealth()
        assert h.responsive
        h.consecutive_failures = 1
        assert not h.responsive
        h.consecutive_failures = 0
        h.quarantined = True
        assert not h.responsive


class _FlakyEndpoint(RuntimeEndpoint):
    """Raises on every report/apply — the pathological neighbour."""

    def __init__(self, name="flaky", nodes=4):
        self.name = name
        self.nodes = nodes
        self.report_calls = 0
        self.apply_calls = 0

    def report(self, time):
        self.report_calls += 1
        raise RuntimeError("no answer")

    def apply(self, command):
        self.apply_calls += 1
        raise RuntimeError("connection reset")


class TestAgentWithRaisingEndpoint:
    """Satellite: the loop neither deadlocks nor starves healthy peers."""

    def _run(self, *, resilience=None, horizon=0.1):
        ex = ExecutionSimulator(model_machine())
        healthy = OCRVxRuntime("healthy", ex)
        healthy.start()
        for i in range(600):
            healthy.create_task(f"t{i}", 0.01, 8.0)
        agent = Agent(
            ex, FairShareStrategy(), period=0.01, resilience=resilience
        )
        flaky = _FlakyEndpoint()
        agent.register(OcrVxEndpoint(healthy))
        agent.register(flaky)
        agent.start()
        ex.run(horizon)
        return agent, healthy, flaky

    def test_loop_keeps_running(self):
        agent, _, flaky = self._run()
        # Rounds kept firing every period despite the raising endpoint.
        assert agent.rounds == 10
        assert flaky.report_calls > 0

    def test_healthy_endpoint_still_commanded(self):
        agent, healthy, _ = self._run()
        commanded = [
            d for d in agent.decisions if "healthy" in d.commands
        ]
        assert commanded  # fair share reached the healthy runtime
        # ... and the command actually applied: the healthy runtime got
        # its fair share (half the machine while the flaky peer was
        # still considered present).
        first = commanded[0]
        cmd = first.commands["healthy"][0]
        assert cmd.kind is CommandKind.SET_ALLOCATION

    def test_flaky_endpoint_quarantined_and_retried(self):
        agent, _, flaky = self._run()
        assert agent.quarantined_endpoints == ["flaky"]
        health = agent.health["flaky"]
        assert health.retries > 0  # in-round retransmits + probes
        assert health.total_failures >= agent.resilience.quarantine_after
        # Quarantine stops the polling: no report calls in later rounds.
        quarantined_at = next(
            d.time for d in agent.decisions if "flaky" in d.quarantined
        )
        calls_at_quarantine = flaky.report_calls
        assert agent.decisions[-1].time > quarantined_at
        assert flaky.report_calls == calls_at_quarantine

    def test_all_endpoints_dead_degrades_not_crashes(self):
        ex = ExecutionSimulator(model_machine())
        agent = Agent(ex, FairShareStrategy(), period=0.01)
        agent.register(_FlakyEndpoint(name="f1"))
        agent.register(_FlakyEndpoint(name="f2"))
        agent.start()
        ex.sim.run_until(0.05)
        assert agent.rounds == 5
        assert all(d.degraded for d in agent.decisions)
        assert all(d.commands == {} for d in agent.decisions)

    def test_raising_apply_recorded_not_fatal(self):
        ex = ExecutionSimulator(model_machine())
        healthy = OCRVxRuntime("healthy", ex)
        healthy.start()
        agent = Agent(ex, FairShareStrategy(), period=0.01)
        agent.register(OcrVxEndpoint(healthy))
        agent.register(_ReportOkApplyRaises())
        agent.start()
        ex.sim.run_until(0.02)
        assert agent.rounds == 2
        assert agent.health["halfdead"].command_failures > 0
        # The healthy endpoint's command was not dropped.
        assert any(
            "healthy" in d.commands for d in agent.decisions
        )


class _ReportOkApplyRaises(RuntimeEndpoint):
    """Answers reports but rejects every command."""

    def __init__(self, name="halfdead", nodes=4):
        self.name = name
        self.nodes = nodes

    def report(self, time):
        return StatusReport(
            runtime_name=self.name,
            time=time,
            tasks_executed=0,
            active_threads=4,
            blocked_threads=0,
            active_per_node=(1,) * self.nodes,
            workers_per_node=(8,) * self.nodes,
            queue_length=0,
            cpu_load=0.5,
        )

    def apply(self, command):
        raise RuntimeError("command rejected")


class _DiesAfter(RuntimeEndpoint):
    """Reports healthy activity until ``dies_at``, then never answers."""

    def __init__(self, name="victim", nodes=4, dies_at=0.025):
        self.name = name
        self.nodes = nodes
        self.dies_at = dies_at

    def report(self, time):
        if time >= self.dies_at:
            raise RuntimeError("crashed")
        return StatusReport(
            runtime_name=self.name,
            time=time,
            tasks_executed=1,
            active_threads=2 * self.nodes,
            blocked_threads=0,
            active_per_node=(2,) * self.nodes,
            workers_per_node=(8,) * self.nodes,
            queue_length=0,
            cpu_load=0.5,
        )

    def apply(self, command):
        pass


class TestQuarantineRoundExcludesDeadReport:
    """Regression: the round that quarantines an endpoint must not keep
    feeding its cached (still-fresh) report downstream.

    With a long freshness window the victim's last good report survives
    ``_collect_reports`` via the cache fallback even in the round that
    quarantines it; before the fix that stale entry counted toward
    quorum, was handed to the strategy, and made the dead runtime a
    "survivor" of its own core redistribution.
    """

    def _run(self):
        ex = ExecutionSimulator(model_machine())
        healthy = OCRVxRuntime("healthy", ex)
        healthy.start()
        for i in range(600):
            healthy.create_task(f"t{i}", 0.01, 8.0)
        agent = Agent(
            ex,
            FairShareStrategy(),
            period=0.01,
            # Freshness of 10 periods: the victim's cached report is
            # still "fresh" when the breaker opens after 3 failures.
            resilience=ResiliencePolicy(
                freshness_window=10.0, quarantine_after=3
            ),
        )
        agent.register(OcrVxEndpoint(healthy))
        agent.register(_DiesAfter(dies_at=0.025))
        agent.start()
        ex.run(0.1)
        return agent

    def test_dead_endpoint_dropped_from_quarantine_round(self):
        agent = self._run()
        decision = next(
            d for d in agent.decisions if "victim" in d.quarantined
        )
        # The cached report was inside the freshness window, but the
        # endpoint was quarantined this round: it must be gone from the
        # round's reports and receive no commands.
        assert "victim" not in decision.reports
        assert "victim" not in decision.commands
        assert "healthy" in decision.reports
        # Quorum is judged among the living only — not degraded.
        assert not decision.degraded

    def test_redistribution_survivors_exclude_the_dead(self):
        agent = self._run()
        decision = next(
            d for d in agent.decisions if "victim" in d.quarantined
        )
        # The victim's freed cores went to the healthy survivor, never
        # back to the victim itself.
        assert any(
            cmd.kind is CommandKind.SET_ALLOCATION
            for cmd in decision.commands["healthy"]
        )

    def test_no_probe_scheduled_for_quarantined_endpoint(self):
        agent = self._run()
        assert agent.quarantined_endpoints == ["victim"]
        agent._schedule_probe("victim")
        assert "victim" not in agent._probe_pending


class TestQuorumFallback:
    def test_below_quorum_uses_equal_share(self):
        ex = ExecutionSimulator(model_machine())
        healthy = OCRVxRuntime("healthy", ex)
        healthy.start()
        agent = Agent(
            ex,
            FairShareStrategy(),
            period=0.01,
            # Require everyone to answer; one flaky endpoint breaks quorum.
            resilience=ResiliencePolicy(quorum=1.0, quarantine_after=100),
        )
        agent.register(OcrVxEndpoint(healthy))
        agent.register(_FlakyEndpoint())
        agent.start()
        ex.sim.run_until(0.03)
        assert agent.rounds == 3
        assert all(d.degraded for d in agent.decisions)
        # Degraded rounds still serve the responder: static equal share.
        cmd = agent.decisions[0].commands["healthy"][0]
        assert cmd.kind is CommandKind.SET_ALLOCATION
        machine = model_machine()
        assert cmd.per_node == tuple(
            min(node.num_cores, w)
            for node, w in zip(
                machine.nodes,
                agent.decisions[0].reports["healthy"].workers_per_node,
            )
        )
