"""The paper's NUMA performance model (Section III-A), end to end.

Given a :class:`~repro.machine.topology.MachineTopology`, a set of
:class:`~repro.core.spec.AppSpec` applications and a
:class:`~repro.core.allocation.ThreadAllocation`, the model predicts the
GFLOPS each application achieves.  The computation follows the paper's
assumptions:

1. every thread attempts to draw ``peak_gflops / AI`` GB/s;
2. per NUMA node, **remote** requests (threads of a "NUMA-bad" application
   reading their single home node from elsewhere) are served first, capped
   per source node by the inter-node link bandwidth;
3. the remaining bandwidth is shared among the node's **local** threads:
   every core is entitled to a baseline of ``capacity / cores``, and the
   remainder water-fills the unsatisfied threads
   (:mod:`repro.core.bwshare`);
4. a thread's achieved GFLOPS is its granted bandwidth times its
   arithmetic intensity, capped at the core's peak.

The model is deterministic and cheap (microseconds per prediction), which
is what makes the allocation-search optimizers in
:mod:`repro.core.optimizer` practical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.allocation import ThreadAllocation
from repro.core.bwshare import RemainderRule, share_node_bandwidth
from repro.core.fasteval import (
    ModelTables,
    ScoreCache,
    as_counts_batch,
    batched_app_gflops,
    workload_fingerprint,
)
from repro.core.spec import AppSpec, Placement
from repro.errors import ModelError
from repro.machine.topology import MachineTopology
from repro.obs import OBS, CounterHandle, HistogramHandle

__all__ = [
    "GroupResult",
    "AppResult",
    "NodeResult",
    "Prediction",
    "NumaPerformanceModel",
]


@dataclass(frozen=True, slots=True)
class GroupResult:
    """Outcome for one (application, source node) thread group.

    All threads of one application bound to the same NUMA node are
    symmetric under the model, so results are reported per group.
    """

    app_name: str
    source_node: int
    threads: int
    demand_per_thread: float
    local_bw: float
    remote_bw: float
    gflops: float

    @property
    def total_bw(self) -> float:
        """Granted bandwidth of the whole group (GB/s)."""
        return self.local_bw + self.remote_bw

    @property
    def bw_per_thread(self) -> float:
        """Granted bandwidth per thread (GB/s)."""
        return self.total_bw / self.threads if self.threads else 0.0

    @property
    def gflops_per_thread(self) -> float:
        """Achieved GFLOPS per thread."""
        return self.gflops / self.threads if self.threads else 0.0

    @property
    def satisfied(self) -> bool:
        """True when the group received its full demand."""
        want = self.demand_per_thread * self.threads
        return self.total_bw >= want - 1e-9


@dataclass(frozen=True, slots=True)
class AppResult:
    """Aggregate outcome for one application."""

    name: str
    gflops: float
    bandwidth: float
    threads: int
    groups: tuple[GroupResult, ...]

    @property
    def gflops_per_thread(self) -> float:
        """Average achieved GFLOPS per thread."""
        return self.gflops / self.threads if self.threads else 0.0


@dataclass(frozen=True, slots=True)
class NodeResult:
    """Memory-side outcome for one NUMA node."""

    node_id: int
    capacity: float
    remote_served: float
    local_capacity: float
    local_consumed: float
    baseline: float

    @property
    def consumed(self) -> float:
        """Total bandwidth drawn from this node's memory (GB/s)."""
        return self.remote_served + self.local_consumed

    @property
    def utilization(self) -> float:
        """Fraction of the node's bandwidth in use."""
        return self.consumed / self.capacity if self.capacity else 0.0


@dataclass(frozen=True)
class Prediction:
    """Full model output for one (machine, apps, allocation) triple."""

    machine_name: str
    allocation: ThreadAllocation
    apps: tuple[AppResult, ...]
    nodes: tuple[NodeResult, ...]

    @property
    def total_gflops(self) -> float:
        """Machine-wide achieved GFLOPS."""
        return float(sum(a.gflops for a in self.apps))

    @property
    def total_bandwidth(self) -> float:
        """Machine-wide consumed bandwidth (GB/s)."""
        return float(sum(n.consumed for n in self.nodes))

    def app(self, name: str) -> AppResult:
        """Result of application ``name``."""
        for a in self.apps:
            if a.name == name:
                return a
        raise ModelError(f"no app '{name}' in prediction")

    def gflops_by_source_node(self) -> np.ndarray:
        """GFLOPS attributed to the node where compute runs."""
        out = np.zeros(len(self.nodes))
        for a in self.apps:
            for g in a.groups:
                out[g.source_node] += g.gflops
        return out

    def summary(self) -> str:
        """One-line-per-app human-readable summary."""
        lines = [
            f"prediction on '{self.machine_name}': "
            f"{self.total_gflops:.2f} GFLOPS total"
        ]
        for a in self.apps:
            lines.append(
                f"  {a.name}: {a.gflops:.2f} GFLOPS on {a.threads} threads "
                f"({a.bandwidth:.2f} GB/s)"
            )
        return "\n".join(lines)


class NumaPerformanceModel:
    """Evaluator for the paper's NUMA bandwidth-sharing model.

    Parameters
    ----------
    remainder_rule:
        How leftover node bandwidth is split among unsatisfied threads;
        see :class:`~repro.core.bwshare.RemainderRule`.  The paper's
        published numbers are identical under both rules.
    cache_size:
        Capacity of the score memo cache backing
        :meth:`predict_scores` (entries, LRU-evicted).  Local-search
        optimizers revisit allocations constantly, so the cache is on by
        default; pass ``0`` to disable memoisation entirely.
    workers:
        Process count for big score batches (:mod:`repro.core.
        parallel`).  ``None`` reads the ``REPRO_WORKERS`` environment
        variable (unset means serial); ``0`` forces serial scoring.
        Results are byte-identical for every worker count.
    parallel_min_batch:
        Smallest batch routed through the pool (default
        :data:`repro.core.parallel.DEFAULT_MIN_BATCH`); smaller batches
        — hill-climb neighbourhood rounds, single predictions — stay
        serial because the pool round trip would cost more than it
        saves.
    """

    #: How many (machine, apps) workloads keep precomputed tables alive.
    _TABLES_KEPT = 8

    def __init__(
        self,
        remainder_rule: RemainderRule = RemainderRule.PROPORTIONAL,
        *,
        cache_size: int = 65536,
        workers: int | None = None,
        parallel_min_batch: int | None = None,
    ) -> None:
        from repro.core import parallel as _parallel

        self.remainder_rule = remainder_rule
        self.cache = ScoreCache(cache_size) if cache_size > 0 else None
        self.workers = (
            _parallel.default_workers() if workers is None else max(workers, 0)
        )
        self.parallel_min_batch = (
            _parallel.DEFAULT_MIN_BATCH
            if parallel_min_batch is None
            else max(parallel_min_batch, 1)
        )
        self._tables: dict[tuple, ModelTables] = {}
        self._obs_predictions = CounterHandle("model/predictions")
        self._obs_predict_seconds = HistogramHandle("model/predict_seconds")
        self._obs_batched = CounterHandle("model/batched_evaluations")
        self._obs_cache_hits = CounterHandle("model/cache_hits")
        self._obs_cache_misses = CounterHandle("model/cache_misses")

    # ------------------------------------------------------------------
    def set_workers(
        self, workers: int, *, min_batch: int | None = None
    ) -> None:
        """Route big score batches through ``workers`` processes.

        ``0`` restores fully serial scoring.  Batches smaller than
        ``min_batch`` (default: keep the current threshold) always stay
        serial — a pool round trip only amortises over large candidate
        spaces.  The pool itself is shared process-wide
        (:func:`repro.core.parallel.get_pool`) and spawns lazily on the
        first qualifying batch.
        """
        self.workers = max(workers, 0)
        if min_batch is not None:
            self.parallel_min_batch = max(min_batch, 1)

    def _batch_gflops(
        self, tables: ModelTables, counts: np.ndarray
    ) -> np.ndarray:
        """``batched_app_gflops`` with transparent process parallelism.

        Small batches (and ``workers == 0``) run the serial kernel
        in-process; qualifying batches go through the shared worker
        pool, falling back to serial — identically, byte for byte — on
        any pool failure (:func:`repro.core.parallel.
        parallel_app_gflops` returns ``None`` after bumping
        ``parallel/fallbacks``).
        """
        if self.workers > 1 and len(counts) >= self.parallel_min_batch:
            from repro.core.parallel import parallel_app_gflops

            gflops = parallel_app_gflops(
                tables, counts, self.remainder_rule, self.workers
            )
            if gflops is not None:
                return gflops
        return batched_app_gflops(tables, counts, self.remainder_rule)

    # ------------------------------------------------------------------
    def predict(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        allocation: ThreadAllocation,
    ) -> Prediction:
        """Predict achieved GFLOPS for every application.

        When observability is enabled (:mod:`repro.obs`) each call bumps
        the ``model/predictions`` counter and records its latency in the
        ``model/predict_seconds`` histogram, from which evaluations/sec
        falls out; disabled, the overhead is one boolean check.

        Raises
        ------
        ModelError
            If the apps and allocation are inconsistent with each other or
            with the machine.
        """
        if not OBS.enabled:
            return self._predict(machine, apps, allocation)
        t0 = time.perf_counter()
        prediction = self._predict(machine, apps, allocation)
        self._obs_predictions.add()
        self._obs_predict_seconds.record(time.perf_counter() - t0)
        return prediction

    # ------------------------------------------------------------------
    def predict_scores(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        allocations,
    ) -> np.ndarray:
        """Per-app GFLOPS for a batch of allocations (the fast path).

        The score-only counterpart of :meth:`predict`: phases 1 and 2 of
        the model run vectorised over a batch axis
        (:mod:`repro.core.fasteval`) and no result dataclasses are
        assembled.  Rows already in the memo cache are served from it;
        only the misses are evaluated, in one batched call.

        Parameters
        ----------
        machine, apps:
            The fixed workload every candidate is scored against.
        allocations:
            One :class:`~repro.core.allocation.ThreadAllocation`, a
            sequence of them, an ``(apps, nodes)`` counts matrix, or a
            ``(B, apps, nodes)`` counts tensor.

        Returns
        -------
        np.ndarray
            ``(B, len(apps))`` achieved GFLOPS per candidate and app;
            agrees with :meth:`predict` to within 1e-9 per app.  Reduce
            with an objective's ``batched`` form to get search scores.

        Raises
        ------
        ModelError
            If the workload is inconsistent (duplicate apps, bad home
            node, malformed counts).
        OversubscriptionError
            If any candidate over-subscribes a node.
        """
        self._check_workload(machine, apps)
        counts = as_counts_batch(allocations, len(apps), machine.num_nodes)
        tables = self._tables_for(machine, apps)
        cache = self.cache
        if cache is None:
            gflops = self._batch_gflops(tables, counts)
            if OBS.enabled:
                self._obs_batched.add(len(counts))
                self._obs_cache_misses.add(len(counts))
            return gflops

        out = np.empty((len(counts), len(apps)))
        miss_rows: list[int] = []
        miss_keys: list[tuple] = []
        hits = 0
        for b in range(len(counts)):
            key = (tables.key, counts[b].tobytes())
            row = cache.get(key)
            if row is None:
                miss_rows.append(b)
                miss_keys.append(key)
            else:
                out[b] = row
                hits += 1
        if miss_rows:
            fresh = self._batch_gflops(tables, counts[miss_rows])
            out[miss_rows] = fresh
            for i, key in enumerate(miss_keys):
                cache.put(key, fresh[i])
        if OBS.enabled:
            self._obs_batched.add(len(counts))
            if hits:
                self._obs_cache_hits.add(hits)
            if miss_rows:
                self._obs_cache_misses.add(len(miss_rows))
        return out

    def _tables_for(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> ModelTables:
        """Precomputed tables for (machine, apps), built once per workload."""
        key = workload_fingerprint(machine, apps, self.remainder_rule)
        tables = self._tables.get(key)
        if tables is None:
            tables = ModelTables.build(machine, apps, self.remainder_rule)
            if len(self._tables) >= self._TABLES_KEPT:
                self._tables.pop(next(iter(self._tables)))
            self._tables[key] = tables
        return tables

    def _predict(
        self,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        allocation: ThreadAllocation,
    ) -> Prediction:
        self._check_inputs(machine, apps, allocation)
        n_nodes = machine.num_nodes
        n_apps = len(apps)
        counts = allocation.counts  # (apps, nodes)

        # Per-(app, source-node) demand routed to each memory node:
        # route[a, s, m] = GB/s that app a's threads on node s attempt to
        # draw from node m's memory.
        route = np.zeros((n_apps, n_nodes, n_nodes))
        for a, app in enumerate(apps):
            for s in range(n_nodes):
                t = counts[a, s]
                if t == 0:
                    continue
                core_peak = machine.node(s).cores[0].peak_gflops
                demand = app.demand_per_thread(core_peak) * t
                if app.placement is Placement.NUMA_PERFECT:
                    route[a, s, s] = demand
                elif app.placement is Placement.SINGLE_NODE:
                    route[a, s, app.home_node] = demand
                else:  # INTERLEAVED
                    route[a, s, :] = demand / n_nodes

        # Phase 1 — remote service.  For each memory node m and each
        # foreign source node s, the aggregate remote demand is capped by
        # the s->m link; if the sum of link-capped remote flows exceeds the
        # node's bandwidth they are scaled down proportionally (the paper's
        # parameters never trigger the scaling, but the model must stay
        # physical for arbitrary inputs).
        remote_demand = route.sum(axis=0)  # (source, memory)
        served = np.zeros((n_nodes, n_nodes))
        for m in range(n_nodes):
            for s in range(n_nodes):
                if s == m:
                    continue
                d = remote_demand[s, m]
                if d <= 0:
                    continue
                served[s, m] = min(d, machine.bandwidth(s, m))
            total = served[:, m].sum()
            cap = machine.node(m).local_bandwidth
            if total > cap:
                served[:, m] *= cap / total

        # Per-group remote grants: each source node's served flow is split
        # among the contributing groups proportionally to their demand.
        remote_grant = np.zeros((n_apps, n_nodes))  # by (app, source node)
        for m in range(n_nodes):
            for s in range(n_nodes):
                if s == m or served[s, m] <= 0:
                    continue
                demands = route[:, s, m]
                share = served[s, m] / demands.sum()
                remote_grant[:, s] += demands * share

        # Phase 2 — local arbitration on what remains of each node.
        local_grant = np.zeros((n_apps, n_nodes))  # by (app, source node)
        node_results: list[NodeResult] = []
        for m in range(n_nodes):
            node = machine.node(m)
            remote_served = float(served[:, m].sum())
            capacity = node.local_bandwidth - remote_served
            # Expand group-level local demands into per-thread demands so
            # the baseline/water-fill operates at thread granularity, as
            # the paper's rules are stated per core.
            thread_demands: list[float] = []
            owners: list[int] = []
            for a in range(n_apps):
                t = counts[a, m]
                d = route[a, m, m]
                if t == 0:
                    continue
                per_thread = d / t
                thread_demands.extend([per_thread] * t)
                owners.extend([a] * t)
            # Threads with zero local demand (e.g. NUMA-bad threads away
            # from home) still occupy a core but draw nothing locally;
            # including them (demand 0) or excluding them is equivalent
            # under the baseline rule, which divides by cores, not threads.
            share = share_node_bandwidth(
                max(capacity, 0.0),
                node.num_cores,
                np.asarray(thread_demands, dtype=float),
                rule=self.remainder_rule,
            )
            for grant, a in zip(share.allocated, owners):
                local_grant[a, m] += grant
            node_results.append(
                NodeResult(
                    node_id=m,
                    capacity=node.local_bandwidth,
                    remote_served=remote_served,
                    local_capacity=max(capacity, 0.0),
                    local_consumed=share.consumed,
                    baseline=share.baseline,
                )
            )

        # Assemble per-app results.
        app_results: list[AppResult] = []
        for a, app in enumerate(apps):
            groups: list[GroupResult] = []
            for s in range(n_nodes):
                t = int(counts[a, s])
                if t == 0:
                    continue
                core_peak = machine.node(s).cores[0].peak_gflops
                peak = app.peak_gflops(core_peak)
                bw = float(local_grant[a, s] + remote_grant[a, s])
                gflops = min(bw * app.arithmetic_intensity, peak * t)
                groups.append(
                    GroupResult(
                        app_name=app.name,
                        source_node=s,
                        threads=t,
                        demand_per_thread=app.demand_per_thread(core_peak),
                        local_bw=float(local_grant[a, s]),
                        remote_bw=float(remote_grant[a, s]),
                        gflops=gflops,
                    )
                )
            app_results.append(
                AppResult(
                    name=app.name,
                    gflops=float(sum(g.gflops for g in groups)),
                    bandwidth=float(sum(g.total_bw for g in groups)),
                    threads=int(counts[a].sum()),
                    groups=tuple(groups),
                )
            )

        return Prediction(
            machine_name=machine.name,
            allocation=allocation,
            apps=tuple(app_results),
            nodes=tuple(node_results),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _check_workload(
        machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> None:
        """Validate the allocation-independent part of the inputs."""
        if not apps:
            raise ModelError("need at least one application")
        names = [a.name for a in apps]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate app names: {names}")
        for app in apps:
            if (
                app.placement is Placement.SINGLE_NODE
                and app.home_node is not None
                and app.home_node >= machine.num_nodes
            ):
                raise ModelError(
                    f"app '{app.name}' home_node {app.home_node} out of "
                    f"range for machine with {machine.num_nodes} nodes"
                )

    @classmethod
    def _check_inputs(
        cls,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        allocation: ThreadAllocation,
    ) -> None:
        cls._check_workload(machine, apps)
        names = tuple(a.name for a in apps)
        if names != allocation.app_names:
            raise ModelError(
                f"allocation apps {allocation.app_names} do not match "
                f"workload apps {names} (order matters)"
            )
        allocation.validate(machine)
