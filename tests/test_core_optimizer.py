"""Unit tests for the allocation searches."""

import pytest

from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import (
    AnnealingSearch,
    ExhaustiveSearch,
    GreedySearch,
    HillClimbSearch,
    min_app_gflops,
    total_gflops,
    weighted_gflops,
)
from repro.core.policies import EvenSharePolicy
from repro.core.spec import AppSpec
from repro.errors import ModelError


class TestExhaustive:
    def test_finds_global_optimum(self, paper_machine, paper_apps):
        res = ExhaustiveSearch().search(paper_machine, paper_apps)
        # All cores to the compute app: the machine peak.
        assert res.score == pytest.approx(320.0)
        assert res.evaluations == 165

    def test_max_min_objective_balances(self, paper_machine, paper_apps):
        res = ExhaustiveSearch(objective=min_app_gflops).search(
            paper_machine, paper_apps
        )
        worst = min(a.gflops for a in res.prediction.apps)
        assert worst > 0
        # the pure-throughput optimum starves apps, so max-min must differ
        assert res.allocation.threads_of("mem0").sum() > 0

    def test_weighted_objective(self, paper_machine, paper_apps):
        heavy_mem = weighted_gflops(
            {"mem0": 100.0, "mem1": 100.0, "mem2": 100.0, "comp": 0.01}
        )
        res = ExhaustiveSearch(objective=heavy_mem).search(
            paper_machine, paper_apps
        )
        assert res.allocation.threads_of("comp").sum() == 0

    def test_allow_idle_cores(self, paper_machine):
        # Purely memory-bound workload: beyond saturation extra threads
        # add nothing, so partial allocations tie with full ones.
        apps = [AppSpec.memory_bound("m", 0.5)]
        res = ExhaustiveSearch(require_full=False).search(
            paper_machine, apps
        )
        assert res.score == pytest.approx(64.0)


class TestGreedy:
    def test_matches_exhaustive_on_paper_workload(
        self, paper_machine, paper_apps
    ):
        ex = ExhaustiveSearch().search(paper_machine, paper_apps)
        gr = GreedySearch().search(paper_machine, paper_apps)
        assert gr.score == pytest.approx(ex.score)

    def test_trajectory_monotone(self, paper_machine, paper_apps):
        res = GreedySearch().search(paper_machine, paper_apps)
        assert list(res.trajectory) == sorted(res.trajectory)

    def test_fills_machine(self, paper_machine, paper_apps):
        res = GreedySearch().search(paper_machine, paper_apps)
        assert res.allocation.total_threads == paper_machine.total_cores


class TestHillClimb:
    def test_improves_on_even_start(self, paper_machine, paper_apps):
        start = EvenSharePolicy().allocate(paper_machine, paper_apps)
        base = NumaPerformanceModel().predict(
            paper_machine, paper_apps, start
        )
        res = HillClimbSearch().search(
            paper_machine, paper_apps, start=start
        )
        assert res.score >= base.total_gflops
        assert res.score == pytest.approx(320.0)

    def test_respects_max_rounds(self, paper_machine, paper_apps):
        res = HillClimbSearch(max_rounds=1).search(
            paper_machine, paper_apps
        )
        assert len(res.trajectory) <= 2


class TestAnnealing:
    def test_deterministic_under_seed(self, paper_machine, paper_apps):
        a = AnnealingSearch(steps=300, seed=7).search(
            paper_machine, paper_apps
        )
        b = AnnealingSearch(steps=300, seed=7).search(
            paper_machine, paper_apps
        )
        assert a.score == b.score
        assert a.allocation.as_mapping() == b.allocation.as_mapping()

    def test_reaches_near_optimum(self, paper_machine, paper_apps):
        res = AnnealingSearch(steps=1500, seed=3).search(
            paper_machine, paper_apps
        )
        assert res.score >= 300.0  # within ~6% of 320

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            AnnealingSearch(steps=0)
        with pytest.raises(ModelError):
            AnnealingSearch(cooling=1.5)


class TestObjectives:
    def test_total_gflops(self, paper_machine, paper_apps):
        alloc = EvenSharePolicy().allocate(paper_machine, paper_apps)
        pred = NumaPerformanceModel().predict(
            paper_machine, paper_apps, alloc
        )
        assert total_gflops(pred) == pytest.approx(140.0)
        assert min_app_gflops(pred) == pytest.approx(20.0)
        w = weighted_gflops({"comp": 2.0})
        assert w(pred) == pytest.approx(140.0 + 80.0)

    def test_weighted_defaults_missing_names_to_one(
        self, paper_machine, paper_apps
    ):
        alloc = EvenSharePolicy().allocate(paper_machine, paper_apps)
        pred = NumaPerformanceModel().predict(
            paper_machine, paper_apps, alloc
        )
        # No weights at all: identical to the plain total.
        assert weighted_gflops({})(pred) == pytest.approx(
            total_gflops(pred)
        )
        # Names that match no app are simply ignored.
        assert weighted_gflops({"ghost": 99.0})(pred) == pytest.approx(
            total_gflops(pred)
        )

    def test_min_app_gflops_single_app(self, paper_machine):
        apps = [AppSpec.compute_bound("solo")]
        alloc = EvenSharePolicy().allocate(paper_machine, apps)
        pred = NumaPerformanceModel().predict(paper_machine, apps, alloc)
        assert min_app_gflops(pred) == pytest.approx(total_gflops(pred))


class TestObjectiveBatched:
    """The vectorised ``.batched`` forms agree with the scalar calls."""

    @pytest.mark.parametrize(
        "objective",
        [
            total_gflops,
            min_app_gflops,
            weighted_gflops({"comp": 2.0, "ghost": 5.0}),
        ],
        ids=["total", "min", "weighted"],
    )
    def test_matches_scalar(self, objective, paper_machine, paper_apps):
        import numpy as np

        from repro.core.allocation import ThreadAllocation
        from repro.core.policies import symmetric_counts_tensor

        model = NumaPerformanceModel()
        counts = symmetric_counts_tensor(paper_machine, len(paper_apps))
        scores = objective.batched(
            model.predict_scores(paper_machine, paper_apps, counts),
            paper_apps,
        )
        names = tuple(a.name for a in paper_apps)
        for b in range(0, len(counts), 16):
            pred = model.predict(
                paper_machine,
                paper_apps,
                ThreadAllocation(app_names=names, counts=counts[b]),
            )
            assert scores[b] == pytest.approx(objective(pred), abs=1e-9)
        assert scores.shape == (len(counts),)
        assert isinstance(scores, np.ndarray)


class TestGreedyResultIsolation:
    """Regression: greedy's scratch counts buffer must not leak into the
    returned allocation (the result must stay fixed if the buffer is
    reused afterwards)."""

    @pytest.mark.parametrize("use_fast", [False, True])
    def test_result_counts_are_detached_and_frozen(
        self, use_fast, paper_machine, paper_apps
    ):
        search = GreedySearch(use_fast=use_fast)
        first = search.search(paper_machine, paper_apps)
        snapshot = first.allocation.counts.copy()
        # A second search reuses the same code path and scratch logic;
        # the first result must be unaffected.
        search.search(paper_machine, paper_apps)
        assert (first.allocation.counts == snapshot).all()
        with pytest.raises(ValueError):
            first.allocation.counts[0, 0] = 99
