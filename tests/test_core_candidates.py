"""The shared candidate-space layer (:mod:`repro.core.candidates`).

Enumeration order is a public contract (batched ``argmax`` winners must
equal scalar strict-``>`` winners), so most tests here pin the orders
element-by-element against the hand-rolled nestings the searches used
before the extraction.
"""

import math

import numpy as np
import pytest

from repro.core.candidates import CandidateSpace
from repro.core.policies import (
    enumerate_symmetric_allocations,
    symmetric_counts_tensor,
)
from repro.errors import AllocationError
from repro.machine.topology import Core, MachineTopology, NumaNode


@pytest.fixture
def asymmetric_machine():
    nodes = (
        NumaNode(
            node_id=0,
            cores=(Core(0, 0, 0, 1.0), Core(1, 0, 1, 1.0)),
            local_bandwidth=10.0,
        ),
        NumaNode(
            node_id=1,
            cores=(Core(2, 1, 0, 1.0),),
            local_bandwidth=10.0,
        ),
    )
    return MachineTopology(nodes=nodes, link_bandwidth=np.full((2, 2), 10.0))


class TestConstruction:
    def test_needs_at_least_one_app(self, paper_machine):
        with pytest.raises(AllocationError):
            CandidateSpace(paper_machine, 0)

    def test_symmetric_flag(self, paper_machine, asymmetric_machine):
        assert CandidateSpace(paper_machine, 4).symmetric
        assert not CandidateSpace(asymmetric_machine, 4).symmetric

    def test_cores_per_node_raises_on_asymmetric(self, asymmetric_machine):
        with pytest.raises(AllocationError):
            CandidateSpace(asymmetric_machine, 4).cores_per_node


class TestSymmetricSubspace:
    def test_sizes_match_the_paper_counts(self, paper_machine):
        space = CandidateSpace(paper_machine, 4)
        assert space.symmetric_size() == 165
        assert space.symmetric_size(require_full=False) == 495

    def test_size_formula_matches_enumeration(self, paper_machine):
        for num_apps in (1, 2, 3, 4):
            space = CandidateSpace(paper_machine, num_apps)
            for require_full in (True, False):
                tensor = space.symmetric_tensor(require_full=require_full)
                assert (
                    space.symmetric_size(require_full=require_full)
                    == len(tensor)
                )

    def test_ten_app_space_size(self, paper_machine):
        # The bench's delta workload: binom(8 + 10 - 1, 10 - 1).
        space = CandidateSpace(paper_machine, 10)
        assert space.symmetric_size() == math.comb(17, 9) == 24310

    def test_tensor_order_matches_allocation_order(
        self, paper_machine, paper_apps
    ):
        space = CandidateSpace(paper_machine, len(paper_apps))
        tensor = space.symmetric_tensor()
        allocs = list(space.symmetric_allocations(paper_apps))
        assert len(tensor) == len(allocs)
        for row, alloc in zip(tensor, allocs):
            assert np.array_equal(row, alloc.counts)

    def test_delegates_to_the_pinned_policy_enumerations(
        self, paper_machine, paper_apps
    ):
        space = CandidateSpace(paper_machine, len(paper_apps))
        assert np.array_equal(
            space.symmetric_tensor(),
            symmetric_counts_tensor(paper_machine, len(paper_apps)),
        )
        ours = [
            a.as_mapping()
            for a in space.symmetric_allocations(paper_apps)
        ]
        theirs = [
            a.as_mapping()
            for a in enumerate_symmetric_allocations(
                paper_machine, paper_apps
            )
        ]
        assert ours == theirs


class TestThreadMoves:
    def test_addition_moves_pin_apps_outermost(self, paper_machine):
        space = CandidateSpace(paper_machine, 3)
        free = np.array([2, 0, 1, 0])
        expected = [
            (a, n)
            for a in range(3)
            for n in range(4)
            if free[n] > 0
        ]
        assert space.addition_moves(free) == expected

    def test_addition_batch_applies_each_move(self, paper_machine):
        space = CandidateSpace(paper_machine, 2)
        counts = np.zeros((2, 4), dtype=np.int64)
        moves = space.addition_moves(np.array([1, 1, 1, 1]))
        batch = space.addition_batch(counts, moves)
        assert batch.shape == (8, 2, 4)
        for k, (a, n) in enumerate(moves):
            assert batch[k].sum() == 1
            assert batch[k, a, n] == 1

    def test_thread_moves_pin_sources_outermost(self, paper_machine):
        space = CandidateSpace(paper_machine, 3)
        counts = np.array([[1, 0, 0, 0], [0, 2, 0, 0], [0, 0, 0, 0]])
        expected = [
            (si, di, n)
            for si in range(3)
            for di in range(3)
            if si != di
            for n in range(4)
            if counts[si, n] > 0
        ]
        assert space.thread_moves(counts) == expected

    def test_move_batch_conserves_threads(self, paper_machine):
        space = CandidateSpace(paper_machine, 3)
        counts = np.array([[2, 0, 0, 0], [0, 1, 0, 0], [1, 0, 1, 0]])
        moves = space.thread_moves(counts)
        batch = space.move_batch(counts, moves)
        for k, (si, di, n) in enumerate(moves):
            assert batch[k].sum() == counts.sum()
            assert batch[k, si, n] == counts[si, n] - 1
            assert batch[k, di, n] == counts[di, n] + 1
            assert np.all(batch[k] >= 0)

    def test_random_move_replays_the_annealing_draw_sequence(
        self, paper_machine
    ):
        space = CandidateSpace(paper_machine, 3)
        counts = np.array([[2, 0, 1, 0], [0, 1, 0, 0], [0, 0, 3, 0]])
        for seed in range(20):
            # The hand-rolled draws the annealing search always made.
            ref_rng = np.random.default_rng(seed)
            donors = np.argwhere(counts > 0)
            ai, n = donors[ref_rng.integers(len(donors))]
            choices = [j for j in range(3) if j != ai]
            dj = choices[ref_rng.integers(len(choices))]
            rng = np.random.default_rng(seed)
            assert space.random_move(counts, rng) == (
                int(ai),
                int(dj),
                int(n),
            )

    def test_random_move_degenerate_cases(self, paper_machine):
        space = CandidateSpace(paper_machine, 2)
        rng = np.random.default_rng(0)
        assert space.random_move(np.zeros((2, 4), dtype=np.int64), rng) is None
        solo = CandidateSpace(paper_machine, 1)
        counts = np.array([[1, 0, 0, 0]])
        assert solo.random_move(counts, rng) is None


class TestCompositions:
    def test_expand_round_trips(self, paper_machine):
        space = CandidateSpace(paper_machine, 3)
        comp = np.array([3, 0, 5])
        counts = space.expand(comp)
        assert counts.shape == (3, 4)
        assert np.array_equal(space.composition_of(counts), comp)

    def test_asymmetric_counts_have_no_composition(self, paper_machine):
        space = CandidateSpace(paper_machine, 2)
        counts = np.array([[1, 2, 1, 1], [0, 0, 0, 0]])
        assert space.composition_of(counts) is None
        assert space.composition_of(np.zeros((3, 4), dtype=np.int64)) is None

    def test_composition_moves_need_a_donor(self, paper_machine):
        space = CandidateSpace(paper_machine, 3)
        comp = np.array([2, 0, 1])
        moves = space.composition_moves(comp)
        assert moves == [(0, 1), (0, 2), (2, 0), (2, 1)]

    def test_movable_restricts_to_touching_moves(self, paper_machine):
        space = CandidateSpace(paper_machine, 3)
        comp = np.array([2, 1, 1])
        moves = space.composition_moves(comp, movable=[2])
        assert moves == [(0, 2), (1, 2), (2, 0), (2, 1)]

    def test_composition_batch_stays_symmetric(self, paper_machine):
        space = CandidateSpace(paper_machine, 3)
        comp = np.array([2, 0, 1])
        moves = space.composition_moves(comp)
        batch = space.composition_batch(comp, moves)
        assert batch.shape == (len(moves), 3, 4)
        for k, (i, j) in enumerate(moves):
            got = space.composition_of(batch[k])
            want = comp.copy()
            want[i] -= 1
            want[j] += 1
            assert np.array_equal(got, want)

    def test_additions_only_with_free_cores(self, paper_machine):
        space = CandidateSpace(paper_machine, 3)
        assert space.composition_additions(np.array([3, 3, 2])) == []
        assert space.composition_additions(np.array([3, 3, 1])) == [0, 1, 2]
        batch = space.addition_composition_batch(
            np.array([3, 3, 1]), [0, 1, 2]
        )
        assert batch.shape == (3, 3, 4)
        for k in range(3):
            comp = space.composition_of(batch[k])
            assert comp is not None and comp.sum() == 8
