"""Unit tests for agent<->runtime protocol messages and endpoints."""

import pytest

from repro.agent.protocol import (
    CommandKind,
    OcrVxEndpoint,
    ThreadCommand,
)
from repro.errors import ProtocolError
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


class TestThreadCommand:
    def test_required_fields_enforced(self):
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS)
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.SET_NODE_THREADS, node=0)
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.SET_ALLOCATION)
        with pytest.raises(ProtocolError):
            ThreadCommand(kind=CommandKind.BLOCK_WORKERS)

    def test_valid_commands(self):
        ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=4)
        ThreadCommand(kind=CommandKind.SET_NODE_THREADS, node=0, count=2)
        ThreadCommand(
            kind=CommandKind.SET_ALLOCATION, per_node=(1, 1, 1, 1)
        )
        ThreadCommand(
            kind=CommandKind.UNBLOCK_WORKERS, workers=("a/w0",)
        )


class TestOcrVxEndpoint:
    @pytest.fixture
    def setup(self):
        ex = ExecutionSimulator(model_machine())
        rt = OCRVxRuntime("app", ex)
        rt.start([2, 2, 2, 2])
        return ex, rt, OcrVxEndpoint(rt)

    def test_report_contents(self, setup):
        ex, rt, ep = setup
        r = ep.report(ex.sim.now)
        assert r.runtime_name == "app"
        assert r.active_threads == 8
        assert r.active_per_node == (2, 2, 2, 2)
        assert r.workers_per_node == (2, 2, 2, 2)
        assert r.queue_length == 0

    def test_cpu_load_differencing(self, setup):
        ex, rt, ep = setup
        ep.report(ex.sim.now)
        for i in range(100):
            rt.create_task(f"t{i}", 0.01, 10.0)
        ex.run(0.05)
        r = ep.report(ex.sim.now)
        assert 0.0 < r.cpu_load <= 1.01

    def test_apply_allocation(self, setup):
        ex, rt, ep = setup
        ep.apply(
            ThreadCommand(
                kind=CommandKind.SET_ALLOCATION, per_node=(1, 1, 1, 1)
            )
        )
        ex.run(0.01)
        assert rt.active_per_node() == [1, 1, 1, 1]

    def test_apply_total(self, setup):
        ex, rt, ep = setup
        ep.apply(
            ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=3)
        )
        ex.run(0.01)
        assert rt.active_threads == 3

    def test_apply_block_unblock(self, setup):
        ex, rt, ep = setup
        name = rt.workers[0].name
        ep.apply(
            ThreadCommand(
                kind=CommandKind.BLOCK_WORKERS, workers=(name,)
            )
        )
        ex.run(0.01)
        assert rt.workers[0].blocked
        ep.apply(
            ThreadCommand(
                kind=CommandKind.UNBLOCK_WORKERS, workers=(name,)
            )
        )
        assert not rt.workers[0].blocked
