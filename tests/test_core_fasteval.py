"""The batched/cached evaluation engine: parity, caching, search paths."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.allocation import ThreadAllocation
from repro.core.bwshare import RemainderRule
from repro.core.fasteval import (
    FastEvaluator,
    ModelTables,
    ScoreCache,
    as_counts_batch,
    batched_app_gflops,
    workload_fingerprint,
)
from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import (
    AnnealingSearch,
    ExhaustiveSearch,
    GreedySearch,
    HillClimbSearch,
    min_app_gflops,
    total_gflops,
    weighted_gflops,
)
from repro.core.policies import (
    enumerate_symmetric_allocations,
    symmetric_counts_tensor,
)
from repro.core.spec import AppSpec, Placement
from repro.errors import ModelError, OversubscriptionError
from repro.machine import model_machine
from repro.machine.topology import MachineTopology
from repro.obs import OBS, capture


def random_workload(rng: np.random.Generator):
    """One random (machine, apps) pair covering every placement."""
    n_nodes = int(rng.integers(1, 5))
    cores = int(rng.integers(1, 7))
    machine = MachineTopology.homogeneous(
        num_nodes=n_nodes,
        cores_per_node=cores,
        peak_gflops_per_core=float(rng.uniform(1.0, 20.0)),
        local_bandwidth=float(rng.uniform(5.0, 100.0)),
        remote_bandwidth=float(rng.uniform(1.0, 30.0)),
        name=f"fuzz-{n_nodes}x{cores}",
    )
    apps = []
    for a in range(int(rng.integers(1, 5))):
        placement = [
            Placement.NUMA_PERFECT,
            Placement.SINGLE_NODE,
            Placement.INTERLEAVED,
        ][int(rng.integers(3))]
        apps.append(
            AppSpec(
                name=f"app{a}",
                arithmetic_intensity=float(rng.uniform(0.05, 12.0)),
                placement=placement,
                home_node=(
                    int(rng.integers(n_nodes))
                    if placement is Placement.SINGLE_NODE
                    else None
                ),
                peak_gflops_per_thread=(
                    float(rng.uniform(0.5, 15.0))
                    if rng.random() < 0.3
                    else None
                ),
            )
        )
    return machine, apps


def random_counts(rng, machine, n_apps, batch):
    """A ``(batch, apps, nodes)`` tensor with no over-subscribed node."""
    counts = np.zeros((batch, n_apps, machine.num_nodes), dtype=np.int64)
    for b in range(batch):
        for node in machine.nodes:
            budget = int(rng.integers(node.num_cores + 1))
            for _ in range(budget):
                counts[b, int(rng.integers(n_apps)), node.node_id] += 1
    return counts


class TestBatchedParity:
    @pytest.mark.parametrize("rule", list(RemainderRule))
    def test_matches_scalar_model_on_random_workloads(self, rule):
        rng = np.random.default_rng(1234 + (rule is RemainderRule.EVEN))
        for _ in range(40):
            machine, apps = random_workload(rng)
            model = NumaPerformanceModel(rule)
            counts = random_counts(rng, machine, len(apps), batch=8)
            batched = model.predict_scores(machine, apps, counts)
            names = tuple(a.name for a in apps)
            for b in range(len(counts)):
                pred = model.predict(
                    machine,
                    apps,
                    ThreadAllocation(app_names=names, counts=counts[b]),
                )
                scalar = np.array([a.gflops for a in pred.apps])
                assert np.max(np.abs(batched[b] - scalar)) <= 1e-9

    @pytest.mark.parametrize("rule", list(RemainderRule))
    def test_matches_scalar_on_paper_workload(
        self, rule, paper_machine, paper_apps
    ):
        model = NumaPerformanceModel(rule)
        names = tuple(a.name for a in paper_apps)
        counts = symmetric_counts_tensor(paper_machine, len(paper_apps))
        batched = model.predict_scores(paper_machine, paper_apps, counts)
        for b in range(len(counts)):
            pred = model.predict(
                paper_machine,
                paper_apps,
                ThreadAllocation(app_names=names, counts=counts[b]),
            )
            assert batched[b].sum() == pytest.approx(
                pred.total_gflops, abs=1e-9
            )

    def test_oversubscription_rejected(self, paper_machine, paper_apps):
        model = NumaPerformanceModel()
        bad = np.zeros((1, 4, 4), dtype=np.int64)
        bad[0, 0, 0] = 9  # node 0 has 8 cores
        with pytest.raises(OversubscriptionError):
            model.predict_scores(paper_machine, paper_apps, bad)


class TestAsCountsBatch:
    def test_accepts_every_input_form(self, paper_machine, paper_apps):
        names = tuple(a.name for a in paper_apps)
        alloc = ThreadAllocation.uniform(names, 4, 2)
        single = as_counts_batch(alloc, 4, 4)
        assert single.shape == (1, 4, 4)
        seq = as_counts_batch([alloc, alloc], 4, 4)
        assert seq.shape == (2, 4, 4)
        matrix = as_counts_batch(np.full((4, 4), 2), 4, 4)
        assert np.array_equal(matrix, single)
        tensor = as_counts_batch(np.full((3, 4, 4), 2), 4, 4)
        assert tensor.shape == (3, 4, 4)

    def test_rejects_bad_shapes_and_values(self):
        with pytest.raises(ModelError):
            as_counts_batch(np.zeros((2, 3, 5), dtype=np.int64), 3, 4)
        with pytest.raises(ModelError):
            as_counts_batch([], 3, 4)
        with pytest.raises(ModelError):
            as_counts_batch(np.full((1, 2, 2), 1.5), 2, 2)
        with pytest.raises(ModelError):
            as_counts_batch(np.full((1, 2, 2), -1, dtype=np.int64), 2, 2)

    def test_float_integers_are_accepted(self):
        out = as_counts_batch(np.full((1, 2, 2), 2.0), 2, 2)
        assert out.dtype == np.int64
        assert np.all(out == 2)


class TestSymmetricCountsTensor:
    def test_matches_enumeration_order(self, paper_machine, paper_apps):
        tensor = symmetric_counts_tensor(paper_machine, len(paper_apps))
        allocs = list(
            enumerate_symmetric_allocations(paper_machine, paper_apps)
        )
        assert len(tensor) == len(allocs) == 165
        for row, alloc in zip(tensor, allocs):
            assert np.array_equal(row, alloc.counts)

    def test_partial_occupation(self, paper_machine, paper_apps):
        full = symmetric_counts_tensor(paper_machine, len(paper_apps))
        partial = symmetric_counts_tensor(
            paper_machine, len(paper_apps), require_full=False
        )
        assert len(partial) > len(full)


class TestScoreCache:
    def test_hit_miss_accounting_and_lru_eviction(self):
        cache = ScoreCache(maxsize=2)
        cache.put(("a",), np.array([1.0]))
        cache.put(("b",), np.array([2.0]))
        assert cache.get(("a",)) is not None  # refreshes "a"
        cache.put(("c",), np.array([3.0]))  # evicts "b", the LRU
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.get(("c",)) is not None
        assert cache.hits == 3 and cache.misses == 1
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_rows_are_read_only(self):
        cache = ScoreCache()
        cache.put(("k",), np.array([1.0, 2.0]))
        row = cache.get(("k",))
        with pytest.raises(ValueError):
            row[0] = 9.0

    def test_invalid_maxsize(self):
        with pytest.raises(ModelError):
            ScoreCache(maxsize=0)


class TestModelCache:
    def test_second_call_is_all_hits(self, paper_machine, paper_apps):
        model = NumaPerformanceModel()
        counts = symmetric_counts_tensor(paper_machine, len(paper_apps))
        first = model.predict_scores(paper_machine, paper_apps, counts)
        assert model.cache.misses == len(counts)
        second = model.predict_scores(paper_machine, paper_apps, counts)
        assert model.cache.hits == len(counts)
        assert np.array_equal(first, second)

    def test_cache_can_be_disabled(self, paper_machine, paper_apps):
        model = NumaPerformanceModel(cache_size=0)
        assert model.cache is None
        counts = symmetric_counts_tensor(paper_machine, len(paper_apps))
        out = model.predict_scores(paper_machine, paper_apps, counts)
        assert out.shape == (len(counts), len(paper_apps))

    def test_same_name_different_machine_does_not_alias(self, paper_apps):
        """Two machines sharing a name must not share cached scores."""
        fast = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=4,
            peak_gflops_per_core=10.0,
            local_bandwidth=32.0,
            remote_bandwidth=8.0,
            name="twin",
        )
        slow = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=4,
            peak_gflops_per_core=10.0,
            local_bandwidth=16.0,
            remote_bandwidth=8.0,
            name="twin",
        )
        apps = [AppSpec.memory_bound("mem", 0.5)]
        counts = np.full((1, 1, 2), 4, dtype=np.int64)
        model = NumaPerformanceModel()
        a = model.predict_scores(fast, apps, counts)
        b = model.predict_scores(slow, apps, counts)
        assert a.sum() > b.sum()

    def test_rule_is_part_of_the_fingerprint(self, paper_machine, paper_apps):
        key_p = workload_fingerprint(
            paper_machine, paper_apps, RemainderRule.PROPORTIONAL
        )
        key_e = workload_fingerprint(
            paper_machine, paper_apps, RemainderRule.EVEN
        )
        assert key_p != key_e

    def test_obs_counters(self, paper_machine, paper_apps):
        model = NumaPerformanceModel()
        counts = symmetric_counts_tensor(paper_machine, len(paper_apps))
        with capture() as cap:
            model.predict_scores(paper_machine, paper_apps, counts)
            model.predict_scores(paper_machine, paper_apps, counts)
        metrics = cap.metrics
        assert (
            metrics.counter("model/batched_evaluations").value
            == 2 * len(counts)
        )
        assert metrics.counter("model/cache_misses").value == len(counts)
        assert metrics.counter("model/cache_hits").value == len(counts)
        assert not OBS.enabled


class TestModelTables:
    def test_built_once_per_workload(self, paper_machine, paper_apps):
        model = NumaPerformanceModel()
        counts = symmetric_counts_tensor(paper_machine, len(paper_apps))
        model.predict_scores(paper_machine, paper_apps, counts[:3])
        tables = list(model._tables.values())
        model.predict_scores(paper_machine, paper_apps, counts[3:6])
        assert list(model._tables.values()) == tables

    def test_direct_build_matches_model(self, paper_machine, paper_apps):
        tables = ModelTables.build(
            paper_machine, paper_apps, RemainderRule.PROPORTIONAL
        )
        counts = symmetric_counts_tensor(paper_machine, len(paper_apps))
        direct = batched_app_gflops(
            tables, counts, RemainderRule.PROPORTIONAL
        )
        via_model = NumaPerformanceModel().predict_scores(
            paper_machine, paper_apps, counts
        )
        assert np.allclose(direct, via_model, atol=1e-12)


class TestSearchFastPath:
    @pytest.mark.parametrize("rule", list(RemainderRule))
    @pytest.mark.parametrize(
        "objective",
        [total_gflops, min_app_gflops, weighted_gflops({"mem0": 2.0})],
        ids=["total", "min", "weighted"],
    )
    @pytest.mark.parametrize(
        "search_cls", [ExhaustiveSearch, GreedySearch, HillClimbSearch]
    )
    def test_deterministic_searches_match_scalar_path(
        self, rule, objective, search_cls, paper_machine, paper_apps
    ):
        fast = search_cls(
            NumaPerformanceModel(rule), objective, use_fast=True
        ).search(paper_machine, paper_apps)
        scalar = search_cls(
            NumaPerformanceModel(rule), objective, use_fast=False
        ).search(paper_machine, paper_apps)
        assert fast.evaluations == scalar.evaluations
        assert (
            fast.allocation.as_mapping() == scalar.allocation.as_mapping()
        )
        assert fast.score == pytest.approx(scalar.score, abs=1e-9)
        assert len(fast.trajectory) == len(scalar.trajectory)
        assert np.allclose(fast.trajectory, scalar.trajectory, atol=1e-9)

    def test_exhaustive_pinned_result(self, paper_machine, paper_apps):
        """The acceptance pin: same best allocation/score as the scalar
        path on the paper workload, 165 evaluations."""
        result = ExhaustiveSearch().search(paper_machine, paper_apps)
        assert result.evaluations == 165
        assert result.score == pytest.approx(320.0)

    def test_annealing_fast_path_is_deterministic_and_sound(
        self, paper_machine, paper_apps
    ):
        a = AnnealingSearch(steps=400, seed=11).search(
            paper_machine, paper_apps
        )
        b = AnnealingSearch(steps=400, seed=11).search(
            paper_machine, paper_apps
        )
        assert a.score == b.score
        assert a.allocation.as_mapping() == b.allocation.as_mapping()
        # The reported score is the scalar model's on the returned
        # allocation, whichever path produced it.
        check = NumaPerformanceModel().predict(
            paper_machine, paper_apps, a.allocation
        )
        assert a.score == pytest.approx(check.total_gflops, abs=1e-9)

    def test_custom_objective_falls_back_to_scalar_path(
        self, paper_machine, paper_apps
    ):
        def bandwidth_objective(prediction):
            return sum(a.bandwidth for a in prediction.apps)

        search = ExhaustiveSearch(
            NumaPerformanceModel(), bandwidth_objective
        )
        assert search._evaluator(paper_machine, paper_apps) is None
        result = search.search(paper_machine, paper_apps)
        reference = ExhaustiveSearch(
            NumaPerformanceModel(), bandwidth_objective, use_fast=False
        ).search(paper_machine, paper_apps)
        assert result.evaluations == reference.evaluations == 165
        assert result.score == pytest.approx(reference.score)
        assert (
            result.allocation.as_mapping()
            == reference.allocation.as_mapping()
        )

    def test_fast_evaluator_create(self, paper_machine, paper_apps):
        model = NumaPerformanceModel()
        assert (
            FastEvaluator.create(
                model, paper_machine, paper_apps, total_gflops
            )
            is not None
        )
        assert (
            FastEvaluator.create(
                model, paper_machine, paper_apps, lambda p: 0.0
            )
            is None
        )

    @pytest.mark.parametrize(
        "search_cls", [ExhaustiveSearch, GreedySearch, HillClimbSearch]
    )
    def test_random_workload_search_parity(self, search_cls):
        rng = np.random.default_rng(77)
        for _ in range(5):
            machine, apps = random_workload(rng)
            if sum(machine.cores_per_node) == 0:
                continue
            fast = search_cls(NumaPerformanceModel()).search(machine, apps)
            scalar = search_cls(
                NumaPerformanceModel(), use_fast=False
            ).search(machine, apps)
            assert (
                fast.allocation.as_mapping()
                == scalar.allocation.as_mapping()
            )
            assert fast.score == pytest.approx(scalar.score, abs=1e-9)
            assert fast.evaluations == scalar.evaluations

    def test_obs_evaluation_counter_matches_batched_result(
        self, paper_machine, paper_apps
    ):
        with capture() as cap:
            result = ExhaustiveSearch().search(paper_machine, paper_apps)
        assert (
            cap.metrics.counter("optimizer/evaluations").value
            == result.evaluations
            == 165
        )
        assert cap.metrics.gauge("optimizer/best_score").value == (
            pytest.approx(result.score)
        )


_MACHINE = model_machine()


class TestFingerprintProperties:
    """Property-based guarantees on the cache key: fingerprints agree
    exactly when the ordered (machine, specs, rule) triples agree, and
    a permuted workload gets a distinct key while its scores are the
    same set of numbers."""

    @staticmethod
    @st.composite
    def app_lists(draw):
        n = draw(st.integers(min_value=1, max_value=4))
        apps = []
        for i in range(n):
            ai = draw(
                st.floats(
                    min_value=0.1,
                    max_value=50.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            kind = draw(st.sampled_from(["mem", "comp", "bad"]))
            name = f"{kind}{i}"
            if kind == "mem":
                apps.append(AppSpec.memory_bound(name, ai))
            elif kind == "comp":
                apps.append(AppSpec.compute_bound(name, ai))
            else:
                apps.append(AppSpec.numa_bad(name, ai, home_node=0))
        return apps

    @settings(max_examples=50, deadline=None)
    @given(apps=app_lists(), rule=st.sampled_from(list(RemainderRule)))
    def test_fingerprint_is_deterministic(self, apps, rule):
        a = workload_fingerprint(_MACHINE, apps, rule)
        b = workload_fingerprint(_MACHINE, list(apps), rule)
        assert a == b
        assert hash(a) == hash(b)

    @settings(max_examples=50, deadline=None)
    @given(apps=app_lists(), rule=st.sampled_from(list(RemainderRule)))
    def test_equal_spec_tuples_equal_fingerprints(
        self, apps, rule
    ):
        rebuilt = [
            AppSpec(
                name=a.name,
                arithmetic_intensity=a.arithmetic_intensity,
                placement=a.placement,
                home_node=a.home_node,
                peak_gflops_per_thread=a.peak_gflops_per_thread,
            )
            for a in apps
        ]
        assert workload_fingerprint(
            _MACHINE, rebuilt, rule
        ) == workload_fingerprint(_MACHINE, apps, rule)

    @settings(max_examples=50, deadline=None)
    @given(apps=app_lists(), data=st.data())
    def test_permuted_workload_distinct_key_same_scores(
        self, apps, data
    ):
        assume(len(apps) >= 2)
        permutation = data.draw(st.permutations(range(len(apps))))
        assume(list(permutation) != list(range(len(apps))))
        shuffled = [apps[i] for i in permutation]
        rule = RemainderRule.PROPORTIONAL
        key = workload_fingerprint(_MACHINE, apps, rule)
        key_shuffled = workload_fingerprint(_MACHINE, shuffled, rule)
        # Same spec multiset in a different order: the ordered tuple is
        # part of the key (columns of the cached score rows are
        # positional), so the keys must differ...
        if [a.fingerprint for a in apps] != [
            a.fingerprint for a in shuffled
        ]:
            assert key != key_shuffled
        # ... while the physics is order-independent: the same uniform
        # allocation (one thread of every app on every node) scores
        # identically app-by-app.
        counts = np.ones(
            (1, len(apps), len(_MACHINE.nodes)), dtype=np.int64
        )
        model = NumaPerformanceModel(cache_size=0)
        scores = model.predict_scores(_MACHINE, apps, counts)
        scores_shuffled = model.predict_scores(
            _MACHINE, shuffled, counts
        )
        for idx, app in enumerate(apps):
            jdx = [a.name for a in shuffled].index(app.name)
            assert scores[0, idx] == pytest.approx(
                scores_shuffled[0, jdx], rel=1e-9
            )
