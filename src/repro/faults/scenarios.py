"""End-to-end chaos scenarios behind ``python -m repro chaos``.

Each preset builds a full Figure 1 deployment — runtimes on the
simulated machine, the hardened agent, injection proxies on the wire —
runs it with faults enabled, and condenses the outcome into a
:class:`RecoveryReport` whose ``passed`` flag encodes the scenario's
recovery criteria:

* ``crash-one`` — one of two runtimes crashes mid-run.  Pass: the agent
  quarantines the dead runtime within 3 rounds of the first missed
  report, redistributes its cores, and machine utilisation recovers to
  >= 90% of the no-fault steady state.
* ``flaky-reports`` — both runtimes drop, replay, and delay reports
  probabilistically.  Pass: the paper's producer-consumer pipeline still
  completes, the agent visibly retried, and no healthy runtime was
  quarantined.
* ``lossy-links`` — the network loses and duplicates messages.  Pass:
  every message gets through a :class:`ReliableChannel` within its
  retransmit budget, and the pipeline completes although commands are
  being dropped and delayed on the wire.
* ``serve-crash`` — churn against the live allocation service with a
  crashed session and dropped allocation commands.  Pass: quarantine,
  at-least-once recovery, final allocation byte-identical to offline.
* ``serve-restart`` — the journaled service is killed mid-churn and
  its journal directory is corrupted three ways (duplicated segment,
  stale snapshot, torn tail) before recovery.  Pass: recovery survives
  all three — duplicates deduplicated by ``seq``, snapshot fallback
  taken, torn tail truncated — and the recovered state dump equals the
  pre-crash one exactly.
* ``serve-overload`` — a full service is hit with extra registrations,
  a progress-report flood inside a debounce window, and a command that
  sat queued past its deadline.  Pass: every overflow ``register`` is
  answered ``overloaded``, the flood is shed (acknowledged, not
  applied), the stale command is answered ``deadline-exceeded``, a
  ``deregister`` mid-flood still succeeds, and the final allocation
  matches the offline oracle.

Everything is seeded; the same ``(scenario, seed)`` pair replays the
same faults, retries, and recovery, which is what makes the CI smoke job
(``python -m repro chaos crash-one --seed 0``) meaningful.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.errors import FaultError, SimulationError
from repro.faults.chaos import ChaosConfig
from repro.faults.journal import apply_journal_fault
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.proxy import InjectionProxy

__all__ = ["RecoveryReport", "SCENARIOS", "run_scenario"]


@dataclass(frozen=True)
class RecoveryReport:
    """Condensed outcome of one chaos scenario run."""

    scenario: str
    seed: int
    passed: bool
    rounds: int
    faults_injected: int
    retries: int
    quarantined: tuple[str, ...]
    quarantine_rounds: int | None
    baseline_utilization: float
    final_utilization: float
    recovery_ratio: float
    degraded_rounds: int
    notes: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """Plain-dict form (the ``--json`` record)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "passed": self.passed,
            "rounds": self.rounds,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "quarantined": list(self.quarantined),
            "quarantine_rounds": self.quarantine_rounds,
            "baseline_utilization": self.baseline_utilization,
            "final_utilization": self.final_utilization,
            "recovery_ratio": self.recovery_ratio,
            "degraded_rounds": self.degraded_rounds,
            "notes": list(self.notes),
        }

    def to_json(self) -> str:
        """The report as a JSON object."""
        return json.dumps(self.to_dict(), indent=2)

    def format(self) -> str:
        """Human-readable recovery report."""
        lines = [
            f"chaos scenario: {self.scenario} (seed {self.seed})",
            f"  agent rounds:        {self.rounds}",
            f"  faults injected:     {self.faults_injected}",
            f"  report retries:      {self.retries}",
            f"  degraded rounds:     {self.degraded_rounds}",
        ]
        if self.quarantined:
            rounds = (
                f" after {self.quarantine_rounds} round(s)"
                if self.quarantine_rounds is not None
                else ""
            )
            lines.append(
                f"  quarantined:         "
                f"{', '.join(self.quarantined)}{rounds}"
            )
        else:
            lines.append("  quarantined:         none")
        lines.append(
            f"  utilisation:         baseline "
            f"{self.baseline_utilization:.3f} -> final "
            f"{self.final_utilization:.3f} "
            f"(recovery {self.recovery_ratio:.1%})"
        )
        lines.extend(f"  {note}" for note in self.notes)
        lines.append(f"  result:              {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shared scaffolding
# ----------------------------------------------------------------------
def _mean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def _utilization_stats(agent) -> tuple[float, float, float]:
    """(baseline, final, ratio) machine utilisation from agent samples.

    Baseline is the pre-fault steady state (rounds 3..6, skipping the
    start-up transient); final is the mean of the last five rounds.
    """
    utils = [d.load.machine_utilization for d in agent.decisions]
    if len(utils) < 8:
        return 0.0, 0.0, 0.0
    baseline = _mean(utils[2:6])
    final = _mean(utils[-5:])
    ratio = final / baseline if baseline > 0 else 0.0
    return baseline, final, ratio


def _retries(agent) -> int:
    return sum(h.retries for h in agent.health.values())


def _quarantine_latency(agent, name: str) -> int | None:
    """Rounds from the first missed report of ``name`` to quarantine."""
    first_failure = None
    for i, d in enumerate(agent.decisions):
        if first_failure is None and name in d.failures:
            first_failure = i
        if name in d.quarantined:
            return i - (first_failure if first_failure is not None else i) + 1
    return None


def _compute_runtimes(executor, names, tasks, flops=0.05, ai=50.0):
    """Start one compute-bound OCR-Vx runtime per name, pre-filled with
    enough uniform tasks to keep the machine busy for the whole run."""
    from repro.runtime import OCRVxRuntime

    runtimes = []
    for name in names:
        rt = OCRVxRuntime(name, executor)
        rt.start()
        for i in range(tasks):
            rt.create_task(f"{name}{i}", flops, ai)
        runtimes.append(rt)
    return runtimes


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
def _crash_one(seed: int) -> RecoveryReport:
    """Two cooperating runtimes; one crashes and halts mid-run."""
    from repro.agent import Agent, FairShareStrategy, OcrVxEndpoint
    from repro.machine import model_machine
    from repro.sim import ExecutionSimulator

    ex = ExecutionSimulator(model_machine())
    alive, victim = _compute_runtimes(ex, ["alive", "victim"], tasks=3000)
    agent = Agent(ex, FairShareStrategy(), period=0.01)
    plan = FaultPlan(
        [FaultSpec(FaultKind.CRASH, target="victim", at=0.065)]
    )
    agent.register(InjectionProxy(OcrVxEndpoint(alive), ex.sim))
    agent.register(
        InjectionProxy(
            OcrVxEndpoint(victim), ex.sim, plan=plan, on_crash=victim.stop
        )
    )
    agent.start()
    ex.run(0.25)

    baseline, final, ratio = _utilization_stats(agent)
    latency = _quarantine_latency(agent, "victim")
    injected = sum(
        len(ep.injected)
        for ep in agent.endpoints.values()
        if isinstance(ep, InjectionProxy)
    )
    quarantined = tuple(agent.quarantined_endpoints)
    passed = (
        quarantined == ("victim",)
        and latency is not None
        and latency <= 3
        and ratio >= 0.9
    )
    return RecoveryReport(
        scenario="crash-one",
        seed=seed,
        passed=passed,
        rounds=agent.rounds,
        faults_injected=injected,
        retries=_retries(agent),
        quarantined=quarantined,
        quarantine_rounds=latency,
        baseline_utilization=baseline,
        final_utilization=final,
        recovery_ratio=ratio,
        degraded_rounds=sum(1 for d in agent.decisions if d.degraded),
        notes=(
            "criteria: quarantine within 3 rounds, utilisation "
            "recovers to >= 90% of the pre-crash steady state",
        ),
    )


def _pipeline_run(seed: int, chaos: ChaosConfig, *, quarantine_after: int):
    """Producer-consumer pipeline with chaos on both endpoints.

    Returns ``(agent, scenario, proxies, finish_time)`` for the caller
    to assess.
    """
    from repro.agent import Agent, OcrVxEndpoint, ProducerConsumerAlignment
    from repro.agent.resilience import ResiliencePolicy
    from repro.apps import ProducerConsumerScenario
    from repro.machine import model_machine
    from repro.runtime import OCRVxRuntime
    from repro.sim import ExecutionSimulator

    ex = ExecutionSimulator(model_machine())
    producer = OCRVxRuntime("producer", ex)
    consumer = OCRVxRuntime("consumer", ex)
    producer.start()
    consumer.start()
    scenario = ProducerConsumerScenario(
        ex,
        producer,
        consumer,
        iterations=40,
        tasks_per_iteration=8,
        producer_flops=0.004,
        consumer_flops=0.012,
    )
    scenario.build()
    agent = Agent(
        ex,
        ProducerConsumerAlignment(
            "producer", "consumer", max_lead=3.0, min_lead=1.0
        ),
        period=0.005,
        resilience=ResiliencePolicy(quarantine_after=quarantine_after),
    )
    proxies = [
        InjectionProxy(OcrVxEndpoint(producer), ex.sim, chaos=chaos),
        InjectionProxy(OcrVxEndpoint(consumer), ex.sim, chaos=chaos),
    ]
    for proxy in proxies:
        agent.register(proxy)
    agent.start()
    try:
        end = ex.run_until_condition(lambda: scenario.finished, max_time=60.0)
    except SimulationError:
        end = ex.sim.now  # pipeline stalled; the report will say FAIL
    return agent, scenario, proxies, end


def _flaky_reports(seed: int) -> RecoveryReport:
    """Reports drop, replay stale, and commands go missing — ambient noise."""
    chaos = ChaosConfig(
        report_failure=0.15,
        report_stale=0.15,
        command_drop=0.10,
        command_delay=0.05,
        delay=0.002,
        seed=seed,
    )
    agent, scenario, proxies, end = _pipeline_run(
        seed, chaos, quarantine_after=5
    )
    baseline, final, ratio = _utilization_stats(agent)
    injected = sum(len(p.injected) for p in proxies)
    retries = _retries(agent)
    quarantined = tuple(agent.quarantined_endpoints)
    passed = (
        scenario.finished
        and retries > 0
        and injected > 0
        and not quarantined
    )
    return RecoveryReport(
        scenario="flaky-reports",
        seed=seed,
        passed=passed,
        rounds=agent.rounds,
        faults_injected=injected,
        retries=retries,
        quarantined=quarantined,
        quarantine_rounds=None,
        baseline_utilization=baseline,
        final_utilization=final,
        recovery_ratio=ratio,
        degraded_rounds=sum(1 for d in agent.decisions if d.degraded),
        notes=(
            f"pipeline finished at t={end:.3f}s despite flaky reporting",
            "criteria: pipeline completes, agent retried, no healthy "
            "runtime quarantined",
        ),
    )


def _lossy_links(seed: int) -> RecoveryReport:
    """Message loss on the wire: retransmit budgets plus dropped commands."""
    from repro.distributed.messaging import LossyNetworkModel, ReliableChannel

    network = LossyNetworkModel(
        loss_rate=0.2, duplication_rate=0.05
    )
    channel = ReliableChannel(network, max_retransmits=6, seed=seed)
    results = [channel.send(1e6) for _ in range(300)]
    all_delivered = all(r.delivered for r in results)

    chaos = ChaosConfig(
        command_drop=0.25,
        command_delay=0.10,
        delay=0.002,
        seed=seed,
    )
    agent, scenario, proxies, end = _pipeline_run(
        seed, chaos, quarantine_after=5
    )
    baseline, final, ratio = _utilization_stats(agent)
    injected = sum(len(p.injected) for p in proxies)
    command_faults = sum(
        1
        for p in proxies
        for f in p.injected
        if f.kind in (FaultKind.DROP_COMMAND, FaultKind.DELAY_COMMAND)
    )
    passed = (
        all_delivered
        and channel.retransmits > 0
        and scenario.finished
        and command_faults > 0
    )
    return RecoveryReport(
        scenario="lossy-links",
        seed=seed,
        passed=passed,
        rounds=agent.rounds,
        faults_injected=injected,
        retries=_retries(agent),
        quarantined=tuple(agent.quarantined_endpoints),
        quarantine_rounds=None,
        baseline_utilization=baseline,
        final_utilization=final,
        recovery_ratio=ratio,
        degraded_rounds=sum(1 for d in agent.decisions if d.degraded),
        notes=(
            f"channel: {channel.delivered}/{channel.sent} delivered, "
            f"{channel.retransmits} retransmits, "
            f"{channel.duplicates} duplicates "
            f"(budget {channel.max_retransmits})",
            f"pipeline finished at t={end:.3f}s with "
            f"{command_faults} command(s) dropped or delayed",
            "criteria: every message within budget, pipeline completes "
            "under command loss",
        ),
    )


def _serve_crash(seed: int) -> RecoveryReport:
    """Chaos against the live allocation service (:mod:`repro.serve`).

    Three applications churn against a running service; one crashes
    mid-run (scripted CRASH fault) and another has half its allocation
    commands silently dropped on the wire (ambient chaos).  Pass: the
    service's watchdog quarantines the crashed session, the dropped
    commands are recovered by the at-least-once re-push loop (the
    flaky runtime's last *applied* allocation equals the service's
    current answer), and the final allocation for the surviving
    workload is byte-identical to the offline optimizer's.

    The utilisation columns of the report are repurposed: baseline is
    the offline optimizer's score, final is the live service's score,
    so ``recovery_ratio == 1.0`` means byte-identical recovery.
    """
    from repro.core.model import NumaPerformanceModel
    from repro.core.optimizer import ExhaustiveSearch
    from repro.core.spec import AppSpec
    from repro.machine import model_machine
    from repro.serve.scenarios import ChurnEvent, ReplayDriver
    from repro.serve.service import ServiceConfig

    driver = ReplayDriver(
        ServiceConfig(
            machine=model_machine(),
            debounce=0.01,
            report_interval=0.02,
        )
    )
    plan = FaultPlan(
        [FaultSpec(FaultKind.CRASH, target="victim", at=0.25)]
    )
    chaos = ChaosConfig(command_drop=0.5, seed=seed)
    proxies: dict[str, InjectionProxy] = {}

    def wrap(endpoint):
        if endpoint.name == "victim":
            proxy = InjectionProxy(endpoint, driver.sim, plan=plan)
        elif endpoint.name == "flaky":
            proxy = InjectionProxy(endpoint, driver.sim, chaos=chaos)
        else:
            return endpoint
        proxies[endpoint.name] = proxy
        return proxy

    driver.wrap = wrap
    events = [
        ChurnEvent(0.00, "join", "steady", AppSpec.memory_bound("steady")),
        ChurnEvent(0.05, "join", "flaky", AppSpec.compute_bound("flaky")),
        ChurnEvent(
            0.10,
            "join",
            "victim",
            AppSpec.memory_bound("victim", arithmetic_intensity=0.8),
        ),
    ]
    driver.run(events, duration=0.8)

    service = driver.service
    quarantined = tuple(
        s.name for s in service.registry.live_sessions() if not s.active
    )
    injected = sum(len(p.injected) for p in proxies.values())
    drops = sum(
        1
        for p in proxies.values()
        for f in p.injected
        if f.kind is FaultKind.DROP_COMMAND
    )
    survivors = service.registry.active_specs()
    offline = ExhaustiveSearch(NumaPerformanceModel()).search(
        model_machine(), survivors
    )
    final_score = service.current_score()
    flaky_applied = driver.sessions["flaky"].runtime.current_per_node
    converged = flaky_applied == service.current_allocation().get("flaky")
    matches = final_score == offline.score and all(
        tuple(int(x) for x in offline.allocation.threads_of(s.name))
        == service.current_allocation().get(s.name)
        for s in survivors
    )
    passed = (
        quarantined == ("victim",)
        and drops > 0
        and service.retransmits > 0
        and converged
        and matches
    )
    ratio = (
        final_score / offline.score
        if final_score is not None and offline.score
        else 0.0
    )
    return RecoveryReport(
        scenario="serve-crash",
        seed=seed,
        passed=passed,
        rounds=service.reoptimizations,
        faults_injected=injected,
        retries=service.retransmits,
        quarantined=quarantined,
        quarantine_rounds=None,
        baseline_utilization=offline.score,
        final_utilization=final_score or 0.0,
        recovery_ratio=ratio,
        degraded_rounds=service.degraded_reoptimizations,
        notes=(
            f"{drops} allocation command(s) dropped on the wire, "
            f"{service.retransmits} retransmit(s) by the re-push loop",
            "scores shown in the utilisation columns: offline optimizer "
            "(baseline) vs live service (final)",
            "criteria: crashed session quarantined, dropped commands "
            "recovered, final allocation byte-identical to offline",
        ),
    )


def _serve_restart(seed: int) -> RecoveryReport:
    """Kill the journaled service, corrupt its journal, recover anyway.

    Three applications churn against a journaled service; at a scripted
    DES time the service dies and its journal directory is hit with all
    three journal faults — the newest segment is duplicated, the newest
    snapshot is corrupted, and a torn partial record is appended to the
    tail.  Pass: recovery deduplicates the copied records by ``seq``,
    falls back to the previous snapshot generation, truncates the torn
    tail, and still rebuilds the exact pre-crash state (``pre == post``
    on the full state dump); churn then continues against the recovered
    service and the final allocation matches the offline optimizer.

    As in ``serve-crash``, the utilisation columns of the report carry
    scores: baseline is the offline optimizer's, final is the live
    service's, so ``recovery_ratio == 1.0`` means byte-identical.
    """
    import tempfile

    from repro.core.model import NumaPerformanceModel
    from repro.core.optimizer import ExhaustiveSearch
    from repro.core.spec import AppSpec
    from repro.machine import model_machine
    from repro.serve.scenarios import ChurnEvent, ReplayDriver
    from repro.serve.service import ServiceConfig

    journal_dir = tempfile.mkdtemp(prefix="repro-chaos-journal-")
    driver = ReplayDriver(
        ServiceConfig(
            machine=model_machine(),
            debounce=0.02,
            report_interval=0.02,
        ),
        journal_path=journal_dir,
        compact_every=None,  # compaction is scripted below
    )
    events = [
        ChurnEvent(0.00, "join", "alpha", AppSpec.memory_bound("alpha")),
        ChurnEvent(0.05, "join", "beta", AppSpec.compute_bound("beta")),
        ChurnEvent(
            0.10,
            "join",
            "gamma",
            AppSpec.memory_bound("gamma", arithmetic_intensity=0.8),
        ),
    ]
    checks: dict[str, bool] = {}

    def _compact() -> None:
        service = driver.service
        assert service.journal is not None
        service.journal.compact(service.snapshot_state())

    def _crash_corrupt_recover() -> None:
        pre = driver.crash()
        # Order matters: the torn tail must land on the *newest*
        # segment, which the duplication just created.
        for kind in (
            FaultKind.DUPLICATE_SEGMENT,
            FaultKind.STALE_SNAPSHOT,
            FaultKind.TORN_TAIL,
        ):
            apply_journal_fault(
                FaultSpec(kind, target=journal_dir, at=0.30)
            )
        post = driver.recover()
        recovery = driver.service.last_recovery
        assert recovery is not None
        checks["identical"] = pre == post
        checks["torn_tail"] = recovery.truncated_tail
        checks["snapshot_fallback"] = recovery.snapshot_fallbacks > 0
        checks["duplicates_skipped"] = recovery.duplicates_skipped > 0

    # Two scripted compactions leave two snapshot generations on disk
    # (so the stale-snapshot fault has a generation to fall back to),
    # with journaled reports on both sides; then the triple corruption.
    driver.sim.schedule_at(0.16, _compact)
    driver.sim.schedule_at(0.22, _compact)
    driver.sim.schedule_at(0.30, _crash_corrupt_recover)
    driver.run(events, duration=0.55)

    service = driver.service
    survivors = service.registry.active_specs()
    offline = ExhaustiveSearch(NumaPerformanceModel()).search(
        model_machine(), survivors
    )
    final_score = service.current_score()
    matches = final_score == offline.score and all(
        tuple(int(x) for x in offline.allocation.threads_of(s.name))
        == service.current_allocation().get(s.name)
        for s in survivors
    )
    passed = (
        all(
            checks.get(key, False)
            for key in (
                "identical",
                "torn_tail",
                "snapshot_fallback",
                "duplicates_skipped",
            )
        )
        and service.recoveries == 1
        and matches
    )
    ratio = (
        final_score / offline.score
        if final_score is not None and offline.score
        else 0.0
    )
    survived = ", ".join(
        key for key in sorted(checks) if checks[key]
    )
    return RecoveryReport(
        scenario="serve-restart",
        seed=seed,
        passed=passed,
        rounds=service.reoptimizations,
        faults_injected=3,
        retries=service.retransmits,
        quarantined=tuple(
            s.name
            for s in service.registry.live_sessions()
            if not s.active
        ),
        quarantine_rounds=None,
        baseline_utilization=offline.score,
        final_utilization=final_score or 0.0,
        recovery_ratio=ratio,
        degraded_rounds=service.degraded_reoptimizations,
        notes=(
            f"journal corrupted 3 ways before recovery; "
            f"checks passed: {survived or 'none'}",
            f"{service.journal_records + driver.journal_records_prior} "
            f"journal record(s), {service.recoveries} recovery",
            "scores shown in the utilisation columns: offline optimizer "
            "(baseline) vs live service (final)",
            "criteria: duplicated segment deduplicated, stale snapshot "
            "fallback taken, torn tail truncated, recovered state == "
            "pre-crash state, final allocation matches offline",
        ),
    )


def _serve_overload(seed: int) -> RecoveryReport:
    """Overload the service: full admission, report flood, stale command.

    A three-slot service is filled, then hit with three more
    registrations (all must be refused with code ``overloaded``), a
    progress-report flood inside an armed debounce window (must be shed
    — acknowledged but not applied), a ``deregister`` mid-flood (must
    still succeed: membership changes are never shed), and one command
    that sat queued past ``command_deadline`` (must be answered
    ``deadline-exceeded``).  The surviving workload's final allocation
    must still match the offline optimizer byte-identically —
    overload protection must not cost correctness.
    """
    from repro.core.model import NumaPerformanceModel
    from repro.core.optimizer import ExhaustiveSearch
    from repro.core.spec import AppSpec
    from repro.machine import model_machine
    from repro.serve.protocol import Deregister, ProgressReport, Register
    from repro.serve.scenarios import ChurnEvent, ReplayDriver
    from repro.serve.service import ServiceConfig

    driver = ReplayDriver(
        ServiceConfig(
            machine=model_machine(),
            debounce=0.02,
            report_interval=0.02,
            max_sessions=3,
            command_deadline=0.05,
            shed_report_interval=0.01,
        )
    )
    events = [
        ChurnEvent(0.00, "join", "alpha", AppSpec.memory_bound("alpha")),
        ChurnEvent(0.03, "join", "beta", AppSpec.compute_bound("beta")),
        ChurnEvent(
            0.06,
            "join",
            "gamma",
            AppSpec.memory_bound("gamma", arithmetic_intensity=0.8),
        ),
    ]
    checks: dict[str, bool] = {}
    overflow_codes: list[str | None] = []
    shed_counts: dict[str, int] = {}

    def _overflow() -> None:
        for name in ("delta", "epsilon", "zeta"):
            reply = driver.service.handle(
                Register(name=name, app=AppSpec.compute_bound(name))
            )
            overflow_codes.append(getattr(reply, "code", None))
        checks["overloaded"] = overflow_codes == ["overloaded"] * 3

    def _flood_start() -> None:
        shed_counts["before"] = driver.service.shed_commands

    def _flood_one() -> None:
        driver.service.handle(
            ProgressReport(
                name="alpha",
                time=driver.sim.now,
                progress={},
                cpu_load=1.0,
                acked_epoch=driver.sessions["alpha"].acked_epoch,
            )
        )

    def _flood_end() -> None:
        shed_counts["after"] = driver.service.shed_commands
        checks["flood_shed"] = (
            shed_counts["after"] - shed_counts["before"] >= 5
        )

    def _dereg_mid_flood() -> None:
        driver.sessions["beta"].stopped = True
        reply = driver.service.handle(Deregister(name="beta"))
        checks["dereg_acked"] = hasattr(reply, "epoch")

    def _stale_command() -> None:
        now = driver.sim.now
        reply = driver.service.handle(
            ProgressReport(
                name="alpha",
                time=now,
                progress={},
                cpu_load=1.0,
                acked_epoch=None,
            ),
            received_at=now - 0.2,
        )
        checks["deadline"] = (
            getattr(reply, "code", None) == "deadline-exceeded"
        )

    driver.sim.schedule_at(0.12, _overflow)
    # A leave arms the debounce; the flood lands inside that window,
    # where reports faster than shed_report_interval are coalesced.
    driver.sim.schedule_at(
        0.20, lambda: driver.leave("gamma")
    )
    driver.sim.schedule_at(0.2004, _flood_start)
    for k in range(10):
        driver.sim.schedule_at(0.2005 + 0.001 * k, _flood_one)
    driver.sim.schedule_at(0.2055, _dereg_mid_flood)
    driver.sim.schedule_at(0.2105, _flood_end)
    driver.sim.schedule_at(0.25, _stale_command)
    driver.run(events, duration=0.4)

    service = driver.service
    survivors = service.registry.active_specs()
    offline = ExhaustiveSearch(NumaPerformanceModel()).search(
        model_machine(), survivors
    )
    final_score = service.current_score()
    matches = final_score == offline.score and all(
        tuple(int(x) for x in offline.allocation.threads_of(s.name))
        == service.current_allocation().get(s.name)
        for s in survivors
    )
    required = ("overloaded", "flood_shed", "dereg_acked", "deadline")
    passed = (
        all(checks.get(key, False) for key in required)
        and tuple(s.name for s in survivors) == ("alpha",)
        and matches
    )
    shed = shed_counts.get("after", 0) - shed_counts.get("before", 0)
    ratio = (
        final_score / offline.score
        if final_score is not None and offline.score
        else 0.0
    )
    return RecoveryReport(
        scenario="serve-overload",
        seed=seed,
        passed=passed,
        rounds=service.reoptimizations,
        faults_injected=len(overflow_codes) + 10,
        retries=service.retransmits,
        quarantined=tuple(
            s.name
            for s in service.registry.live_sessions()
            if not s.active
        ),
        quarantine_rounds=None,
        baseline_utilization=offline.score,
        final_utilization=final_score or 0.0,
        recovery_ratio=ratio,
        degraded_rounds=service.degraded_reoptimizations,
        notes=(
            f"3 overflow register(s) refused, {shed} report(s) shed in "
            f"the flood window, {service.shed_commands} command(s) shed "
            f"total (incl. the deadline miss)",
            "scores shown in the utilisation columns: offline optimizer "
            "(baseline) vs live service (final)",
            "criteria: overflow registers answered 'overloaded', flood "
            "shed under debounce pressure, deregister mid-flood still "
            "acknowledged, queued-stale command answered "
            "'deadline-exceeded', final allocation matches offline",
        ),
    )


#: Scenario name -> builder; each returns a :class:`RecoveryReport`.
SCENARIOS: dict[str, Callable[[int], RecoveryReport]] = {
    "crash-one": _crash_one,
    "flaky-reports": _flaky_reports,
    "lossy-links": _lossy_links,
    "serve-crash": _serve_crash,
    "serve-restart": _serve_restart,
    "serve-overload": _serve_overload,
}


def run_scenario(name: str, seed: int = 0) -> RecoveryReport:
    """Run one chaos preset by name."""
    if name not in SCENARIOS:
        raise FaultError(
            f"unknown chaos scenario '{name}' "
            f"(choose from {sorted(SCENARIOS)})"
        )
    return SCENARIOS[name](seed)
