"""Fixture tests for the cross-module rule family.

Each rule gets a positive case (it fires, anchored at the right line)
and the negative cases that pin its deliberate exemptions: ``async
with`` locks, seeded RNG instances, thread work dispatched through
``to_thread``/``run_in_executor``, documented wildcard metric names.
"""

import ast

import pytest

from repro.lint.engine import FileContext, LintEngine
from repro.lint.project.graph import ProjectContext
from repro.lint.project.summary import summarize_module
from repro.lint.rules.project_rules import (
    BlockingCallInAsyncPath,
    MetricNamespaceDrift,
    NondeterminismInReplayPath,
    SyncLockAcrossAwait,
    UnlockedCrossContextMutation,
)


def build_project(*sources, root=None):
    """ProjectContext over ``(module_name, source)`` pairs."""
    summaries = []
    for module, src in sources:
        path = f"{module.replace('.', '/')}.py"
        ctx = FileContext(path, src)
        summaries.append(summarize_module(path, module, ctx.tree, src))
    return ProjectContext(summaries, project_root=root)


def run(rule, project):
    return sorted(
        rule.check_project(project), key=lambda v: (v.file, v.line)
    )


class TestAsync001:
    def test_indirect_blocking_call_fires_with_chain(self):
        project = build_project(
            (
                "m",
                "import time\n"
                "def helper():\n"
                "    time.sleep(1)\n"
                "async def handler():\n"
                "    helper()\n",
            )
        )
        (v,) = run(BlockingCallInAsyncPath(), project)
        assert v.line == 3
        assert "time.sleep" in v.message
        assert "handler -> helper" in v.message

    def test_cross_module_reachability(self):
        project = build_project(
            ("pkg.io", "import subprocess\ndef sync_work():\n    subprocess.run(['x'])\n"),
            (
                "pkg.srv",
                "from pkg.io import sync_work\n"
                "async def handle():\n"
                "    sync_work()\n",
            ),
        )
        (v,) = run(BlockingCallInAsyncPath(), project)
        assert v.file == "pkg/io.py" and "subprocess.run" in v.message

    def test_to_thread_dispatch_is_clean(self):
        project = build_project(
            (
                "m",
                "import asyncio, time\n"
                "def blocking():\n"
                "    time.sleep(1)\n"
                "async def handler():\n"
                "    await asyncio.to_thread(blocking)\n",
            )
        )
        assert run(BlockingCallInAsyncPath(), project) == []

    def test_sync_only_code_is_clean(self):
        project = build_project(
            ("m", "import time\ndef f():\n    time.sleep(1)\n")
        )
        assert run(BlockingCallInAsyncPath(), project) == []


class TestLock002:
    def test_sync_lock_across_await_fires(self):
        project = build_project(
            (
                "m",
                "async def f(lock):\n"
                "    with lock:\n"
                "        await g()\n",
            )
        )
        (v,) = run(SyncLockAcrossAwait(), project)
        assert v.line == 2 and "'lock'" in v.message

    def test_async_with_is_exempt(self):
        project = build_project(
            (
                "m",
                "async def f(lock):\n"
                "    async with lock:\n"
                "        await g()\n",
            )
        )
        assert run(SyncLockAcrossAwait(), project) == []

    def test_await_in_nested_def_not_counted(self):
        project = build_project(
            (
                "m",
                "def f(lock):\n"
                "    with lock:\n"
                "        async def inner():\n"
                "            await g()\n"
                "        return inner\n",
            )
        )
        assert run(SyncLockAcrossAwait(), project) == []


class TestThrd001:
    SHARED = (
        "import threading\n"
        "class Shared:\n"
        "    def __init__(self):\n"
        "        self.lock = threading.Lock()\n"
        "        threading.Thread(target=self.worker).start()\n"
        "    def worker(self):\n"
        "        self.count = 1\n"
        "    async def tick(self):\n"
        "        self.count = 2\n"
    )

    def test_unlocked_cross_context_write_fires(self):
        project = build_project(("m", self.SHARED))
        found = run(UnlockedCrossContextMutation(), project)
        assert {v.line for v in found} == {7, 9}
        assert all("Shared.count" in v.message for v in found)

    def test_locked_on_both_sides_is_clean(self):
        src = (
            "import threading\n"
            "class Shared:\n"
            "    def __init__(self):\n"
            "        threading.Thread(target=self.worker).start()\n"
            "    def worker(self):\n"
            "        with self.lock:\n"
            "            self.count = 1\n"
            "    async def tick(self):\n"
            "        with self.lock:\n"
            "            self.count = 2\n"
        )
        project = build_project(("m", src))
        assert run(UnlockedCrossContextMutation(), project) == []

    def test_single_context_writes_are_clean(self):
        src = (
            "import threading\n"
            "class Shared:\n"
            "    def __init__(self):\n"
            "        threading.Thread(target=self.worker).start()\n"
            "    def worker(self):\n"
            "        self.count = 1\n"
            "    async def tick(self):\n"
            "        self.other = 2\n"
        )
        project = build_project(("m", src))
        assert run(UnlockedCrossContextMutation(), project) == []


class TestDet001:
    def test_wall_clock_in_replay_module_fires(self):
        project = build_project(
            (
                "repro.sim.fake",
                "import time\n"
                "def step():\n"
                "    return time.time()\n",
            )
        )
        (v,) = run(NondeterminismInReplayPath(), project)
        assert "time.time" in v.message

    def test_global_rng_reached_from_replay_fires(self):
        project = build_project(
            ("repro.util", "import random\ndef jitter():\n    return random.random()\n"),
            (
                "repro.serve.scenarios",
                "from repro.util import jitter\n"
                "def churn():\n"
                "    return jitter()\n",
            ),
        )
        (v,) = run(NondeterminismInReplayPath(), project)
        assert v.file == "repro/util.py" and "random.random" in v.message

    def test_seeded_rng_instances_allowed(self):
        project = build_project(
            (
                "repro.sim.fake",
                "import random\n"
                "import numpy.random\n"
                "def make(seed):\n"
                "    return random.Random(seed), numpy.random.default_rng(seed)\n",
            )
        )
        assert run(NondeterminismInReplayPath(), project) == []

    def test_non_replay_module_unchecked(self):
        project = build_project(
            (
                "repro.analysis.report",
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n",
            )
        )
        assert run(NondeterminismInReplayPath(), project) == []


class TestObs003:
    def test_kind_conflict_fires(self):
        project = build_project(
            (
                "m",
                "def f(obs):\n"
                "    obs.metrics.counter('a/b').add()\n"
                "    obs.metrics.gauge('a/b').set(1)\n",
            )
        )
        found = run(MetricNamespaceDrift(), project)
        assert any("used as gauge here but as counter" in v.message for v in found)

    def test_convention_violation_fires(self):
        project = build_project(
            ("m", "def f(obs):\n    obs.metrics.counter('Bad').add()\n")
        )
        found = run(MetricNamespaceDrift(), project)
        assert any("convention" in v.message for v in found)

    def test_drift_both_directions(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "OBSERVABILITY.md").write_text(
            "| name | kind | recorded by |\n"
            "|---|---|---|\n"
            "| `a/b` | counter | something |\n"
            "| `ghost/metric` | counter | nothing anymore |\n"
        )
        project = build_project(
            (
                "m",
                "def f(obs):\n"
                "    obs.metrics.counter('a/b').add()\n"
                "    obs.metrics.counter('new/metric').add()\n",
            ),
            root=tmp_path,
        )
        found = run(MetricNamespaceDrift(), project)
        messages = [v.message for v in found]
        assert any(
            "'new/metric' is not documented" in m for m in messages
        )
        assert any(
            "'ghost/metric' is documented but never" in m for m in messages
        )
        assert not any("'a/b'" in m for m in messages)
        doc_anchored = [v for v in found if v.file == "docs/OBSERVABILITY.md"]
        assert doc_anchored and doc_anchored[0].line == 4

    def test_wildcard_doc_rows_match_dynamic_names(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "OBSERVABILITY.md").write_text(
            "| name | kind | recorded by |\n"
            "|---|---|---|\n"
            "| `runtime/<name>/tasks` | counter | runtimes |\n"
            "| `demo/*` | spans | demos |\n"
        )
        project = build_project(
            (
                "m",
                "def f(obs, name):\n"
                "    obs.metrics.counter(f'runtime/{name}/tasks').add()\n"
                "    obs.tracer.span('demo/anything')\n",
            ),
            root=tmp_path,
        )
        assert run(MetricNamespaceDrift(), project) == []

    def test_no_root_skips_doc_drift(self):
        project = build_project(
            ("m", "def f(obs):\n    obs.metrics.counter('a/b').add()\n")
        )
        assert run(MetricNamespaceDrift(), project) == []


class TestEngineIntegration:
    def test_check_source_runs_project_rules(self):
        eng = LintEngine(rules=["LOCK002"])
        src = "async def f(lock):\n    with lock:\n        await g()\n"
        (v,) = eng.check_source(src)
        assert v.rule_id == "LOCK002"

    def test_inline_noqa_suppresses_project_finding(self):
        eng = LintEngine(rules=["LOCK002"])
        src = (
            "async def f(lock):\n"
            "    with lock:  # repro: noqa[LOCK002]\n"
            "        await g()\n"
        )
        assert eng.check_source(src) == []

    def test_repo_src_is_clean_of_new_rules(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        eng = LintEngine(
            rules=["ASYNC001", "LOCK002", "THRD001", "DET001"],
            project_root=root,
        )
        assert eng.check_paths([root / "src" / "repro"]) == []
