"""Section II claim: move cores away from sub-linearly scaling apps.

"if the scaling of the applications is less than linear, we might get
better efficiency by reducing the number of threads ... and assign the
CPU cores to another application, which can make better use of them."
The memory-bound apps of the Tables I/II workload stop scaling once the
node bandwidth saturates; the exhaustive search recovers the paper's
(1,1,1,5) split and its 254-vs-140 GFLOPS margin.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_sublinear


def test_bench_sublinear(benchmark):
    res = benchmark(run_sublinear)
    emit(
        "Sub-linear scaling reallocation (Section II)",
        render_table(
            ["allocation", "GFLOPS"],
            [
                ["fair share (2,2,2,2)", res.fair_gflops],
                ["optimal (searched)", res.optimal_gflops],
            ],
        )
        + f"\noptimal allocation: {res.optimal_allocation}",
    )
    assert res.fair_gflops == pytest.approx(140.0)
    assert res.optimal_gflops == pytest.approx(254.0)
    assert res.speedup == pytest.approx(254.0 / 140.0)
    assert res.optimal_allocation.threads_of("comp").tolist() == [
        5, 5, 5, 5,
    ]
