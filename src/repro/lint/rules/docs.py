"""Documentation hygiene: the public surface must explain itself.

A name exported through ``__all__`` is a promise — it appears in the
generated ``docs/API.md``, in ``help()``, and in every ``from x import
*``.  An exported function or class without a docstring breaks that
promise: the API reference renders an empty entry and callers are left
reverse-engineering intent from the implementation.  DOC001 enforces
the contract at the definition site.

Only *definitions in the same file* are checked: a package
``__init__`` that re-exports names defined elsewhere has no local
``def``/``class`` for them, so pure re-export modules are naturally
exempt (the defining module is where the docstring belongs, and is
where it is checked).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register,
)
from repro.lint.rules.api import _all_literal

__all__ = ["UndocumentedPublicName"]

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@register
class UndocumentedPublicName(Rule):
    """A name in ``__all__`` is defined here without a docstring."""

    rule_id = "DOC001"
    severity = Severity.ERROR
    summary = (
        "public function/class exported via __all__ lacks a docstring"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        found = _all_literal(ctx.tree)
        if found is None:
            return
        exported = set(found[0])
        if not exported:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _DEF_NODES):
                continue
            if node.name not in exported:
                continue
            # Only top-level (module-scope) definitions are the export;
            # a nested def that happens to share the name is not it.
            if not isinstance(getattr(node, "parent", None), ast.Module):
                continue
            if ast.get_docstring(node) is None:
                kind = (
                    "class"
                    if isinstance(node, ast.ClassDef)
                    else "function"
                )
                yield self.violation(
                    ctx,
                    node.lineno,
                    f"public {kind} '{node.name}' is exported via "
                    f"__all__ but has no docstring",
                )
            if isinstance(node, ast.ClassDef):
                yield from self._check_methods(ctx, node)

    def _check_methods(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        """Public methods of an exported class need docstrings too."""
        for node in cls.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if node.name.startswith("_"):
                continue  # dunder/private methods document themselves
            if ast.get_docstring(node) is None:
                yield self.violation(
                    ctx,
                    node.lineno,
                    f"public method '{cls.name}.{node.name}' of an "
                    f"exported class has no docstring",
                )
