"""Implementation of ``python -m repro check``.

Runs the AST rule pack over the given paths (default ``src``), runs the
semantic invariant checker over every machine preset, merges the
findings, and renders them as text or JSON.  The exit code is governed
by ``--fail-on``: with the default ``error``, warnings are advisory and
only error-severity findings fail the command — which is what the CI
gate relies on.

``--rules`` with no arguments prints the full rule catalogue (syntax
rules and invariants) and exits; with ids, it restricts the run::

    python -m repro check src/ --rules LOCK001 DEF001
    python -m repro check --rules            # catalogue
    python -m repro check src/ --json        # machine-readable
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.lint.engine import (
    LintEngine,
    Severity,
    Violation,
    all_rules,
    format_text,
    violations_to_json,
)
from repro.lint.invariants import INVARIANT_IDS, check_all_presets

__all__ = ["add_check_parser", "run_check"]


def add_check_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``check`` subcommand on a subparsers object."""
    checkp = sub.add_parser(
        "check",
        help="run the project's static-analysis suite (repro.lint)",
    )
    checkp.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    checkp.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of text",
    )
    checkp.add_argument(
        "--rules",
        nargs="*",
        default=None,
        metavar="RULE",
        help="restrict to these rule ids; with no ids, print the "
        "catalogue and exit",
    )
    checkp.add_argument(
        "--fail-on",
        choices=("error", "warning"),
        default="error",
        help="minimum severity that makes the exit code non-zero "
        "(default: error; warnings stay advisory)",
    )
    checkp.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip the machine-preset invariant checker",
    )


def _catalogue() -> str:
    """The rule catalogue: every syntax rule and invariant, one line each."""
    lines = []
    for rule_id, rule_cls in all_rules().items():
        lines.append(
            f"{rule_id}  [{rule_cls.severity}]  {rule_cls.summary}"
        )
    for inv_id, summary in INVARIANT_IDS.items():
        lines.append(f"{inv_id}  [error]  {summary}")
    return "\n".join(lines)


def run_check(args: argparse.Namespace) -> int:
    """Execute ``check``; returns the process exit code."""
    if args.rules is not None and not args.rules:
        print(_catalogue())
        return 0

    selected = set(args.rules) if args.rules else None
    if selected is None:
        syntax_rules = None
        run_invariants = not args.no_invariants
    else:
        syntax_rules = sorted(selected - set(INVARIANT_IDS))
        run_invariants = not args.no_invariants and bool(
            selected & set(INVARIANT_IDS)
        )

    violations: list[Violation] = []
    if syntax_rules is None or syntax_rules:
        engine = LintEngine(
            rules=syntax_rules, project_root=Path.cwd()
        )
        violations.extend(engine.check_paths(args.paths))
    if run_invariants:
        invariant_findings = check_all_presets()
        if selected is not None:
            invariant_findings = [
                v for v in invariant_findings if v.rule_id in selected
            ]
        violations.extend(invariant_findings)
    violations.sort(key=lambda v: (v.file, v.line, v.rule_id))

    if args.json:
        print(violations_to_json(violations))
    else:
        print(format_text(violations))

    threshold = (
        Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    )
    failing = [v for v in violations if v.severity >= threshold]
    return 1 if failing else 0
