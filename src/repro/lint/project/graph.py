"""The project-wide view cross-module rules consume.

:class:`ProjectContext` indexes every :class:`~repro.lint.project
.summary.ModuleSummary` of a run and builds the call graph over them.
Call resolution is deliberately *static and best-effort* — the point is
linting, not soundness proofs — but it covers the idioms this codebase
actually uses:

* bare names — local nested defs, then module-level functions, then
  imported names (``from x import f`` / ``import x as y``);
* ``self.method()`` — the enclosing class, following base classes
  defined inside the project;
* ``self.attr.method()`` / ``var.method()`` — attribute and local
  variable types inferred from constructor assignments
  (``self.service = AllocationService(...)``, ``var = self.service``)
  and annotations;
* ``Class(...)`` — an edge to ``Class.__init__`` when it exists;
* re-export chains — ``from repro.serve import ServiceConfig`` follows
  the package ``__init__`` to the defining module;
* a last-resort *unique-method* heuristic: ``x.m()`` where exactly one
  project class defines ``m`` links to that method (over-approximate by
  design; suppress false positives with ``noqa``).

Unresolvable calls to dotted names rooted at an import are reported as
**external** (``time.sleep``, ``numpy.einsum``) with the alias expanded
— which is exactly what the ASYNC001/DET001 classifiers match against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.lint.project.summary import (
    MODULE_BODY,
    CallSite,
    FunctionInfo,
    ModuleSummary,
)

__all__ = ["CallEdge", "ProjectContext"]


@dataclass(frozen=True)
class CallEdge:
    """One resolved call-graph edge.

    ``target`` is the callee's node key for calls resolved inside the
    project, ``None`` otherwise; ``external`` is the alias-expanded
    dotted name for calls resolved to an import (``time.sleep``),
    ``None`` otherwise.  Unresolved calls keep both ``None`` and retain
    the raw spelling in ``raw``.
    """

    caller: str
    raw: str
    line: int
    target: str | None = None
    external: str | None = None


class ProjectContext:
    """Symbol table + import graph + call graph over one file set.

    Node keys are ``"<module>:<qualname>"`` (``"<path>:<qualname>"``
    for files outside the ``src`` root, so snippets still work).
    ``project_root`` lets repo-aware project rules (OBS003) find the
    documentation they diff against; ``None`` disables those checks.
    """

    def __init__(
        self,
        summaries: list[ModuleSummary],
        project_root=None,
    ) -> None:
        self.project_root = project_root
        #: path -> summary, in check order.
        self.summaries: dict[str, ModuleSummary] = {
            s.path: s for s in summaries
        }
        #: dotted module name -> summary (files under the src root).
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in summaries if s.module is not None
        }
        #: method name -> [(summary, class qualname)] across the project.
        self._methods_by_name: dict[str, list[tuple[ModuleSummary, str]]] = {}
        for s in summaries:
            for cls, entry in s.classes.items():
                for m in entry["methods"]:
                    self._methods_by_name.setdefault(m, []).append((s, cls))
        self._edges: dict[str, list[CallEdge]] | None = None

    # -- node naming ----------------------------------------------------
    @staticmethod
    def node_key(summary: ModuleSummary, qualname: str) -> str:
        """The graph key of ``qualname`` defined in ``summary``."""
        return f"{summary.module or summary.path}:{qualname}"

    def function_of(self, key: str) -> tuple[ModuleSummary, FunctionInfo]:
        """Inverse of :meth:`node_key` (raises ``KeyError`` if unknown)."""
        owner, _, qualname = key.rpartition(":")
        summary = self.modules.get(owner) or self.summaries[owner]
        return summary, summary.functions[qualname]

    def functions(self) -> Iterator[tuple[ModuleSummary, FunctionInfo]]:
        """Every function in every summary (module bodies included)."""
        for summary in self.summaries.values():
            yield from (
                (summary, fn) for fn in summary.functions.values()
            )

    # -- symbol resolution ----------------------------------------------
    def _resolve_class(
        self, summary: ModuleSummary, name: str, _depth: int = 0
    ) -> tuple[ModuleSummary, str] | None:
        """Resolve a class name written in ``summary`` to its definition."""
        if _depth > 8:
            return None
        if name in summary.classes:
            return summary, name
        head, _, rest = name.partition(".")
        if head in summary.imports:
            absolute = summary.imports[head] + (f".{rest}" if rest else "")
            return self._resolve_absolute_class(absolute, _depth + 1)
        return None

    def _split_absolute(
        self, dotted: str
    ) -> tuple[ModuleSummary, str] | None:
        """Longest-module-prefix split of an absolute dotted name."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module in self.modules:
                return self.modules[module], ".".join(parts[cut:])
        return None

    def _resolve_absolute_class(
        self, dotted: str, _depth: int = 0
    ) -> tuple[ModuleSummary, str] | None:
        split = self._split_absolute(dotted)
        if split is None:
            return None
        summary, remainder = split
        if not remainder:
            return None
        if remainder in summary.classes:
            return summary, remainder
        # re-export: the package __init__ imported it from elsewhere
        head, _, rest = remainder.partition(".")
        if head in summary.imports and _depth <= 8:
            absolute = summary.imports[head] + (f".{rest}" if rest else "")
            return self._resolve_absolute_class(absolute, _depth + 1)
        return None

    def _method_in_class(
        self,
        summary: ModuleSummary,
        cls: str,
        method: str,
        _depth: int = 0,
    ) -> tuple[ModuleSummary, str] | None:
        """``cls.method`` following project-internal base classes."""
        if _depth > 8:
            return None
        entry = summary.classes.get(cls)
        if entry is None:
            return None
        if method in entry["methods"]:
            return summary, f"{cls}.{method}"
        for base in entry["bases"]:
            resolved = self._resolve_class(summary, base)
            if resolved is not None:
                found = self._method_in_class(
                    resolved[0], resolved[1], method, _depth + 1
                )
                if found is not None:
                    return found
        return None

    def _attr_type(
        self, summary: ModuleSummary, cls: str, attr: str
    ) -> tuple[ModuleSummary, str] | None:
        """The project class an instance attribute was constructed from."""
        entry = summary.classes.get(cls)
        if entry is None:
            return None
        ctor = entry["attr_types"].get(attr)
        if ctor is None:
            return None
        return self._resolve_class(summary, ctor)

    def _resolve_absolute_callable(
        self, dotted: str, _depth: int = 0
    ) -> str | None:
        """Node key for an absolute dotted name, following re-exports."""
        if _depth > 8:
            return None
        split = self._split_absolute(dotted)
        if split is None:
            return None
        summary, remainder = split
        if not remainder:
            return None
        if remainder in summary.functions:
            return self.node_key(summary, remainder)
        if remainder in summary.classes:
            init = self._method_in_class(summary, remainder, "__init__")
            if init is not None:
                return self.node_key(init[0], init[1])
            return None
        first, _, rest = remainder.partition(".")
        if first in summary.classes and rest:
            found = self._method_in_class(summary, first, rest)
            if found is not None:
                return self.node_key(found[0], found[1])
            return None
        if first in summary.imports:
            absolute = summary.imports[first] + (f".{rest}" if rest else "")
            return self._resolve_absolute_callable(absolute, _depth + 1)
        return None

    def resolve_call(
        self, summary: ModuleSummary, fn: FunctionInfo, call: CallSite
    ) -> CallEdge:
        """Resolve one call site into a :class:`CallEdge`."""
        caller = self.node_key(summary, fn.qualname)
        parts = call.callee.split(".")
        head = parts[0]

        def internal(target_summary: ModuleSummary, qualname: str) -> CallEdge:
            return CallEdge(
                caller=caller,
                raw=call.callee,
                line=call.line,
                target=self.node_key(target_summary, qualname),
            )

        # self.method() / self.attr.method()
        if head == "self" and fn.class_name is not None:
            if len(parts) == 2:
                found = self._method_in_class(
                    summary, fn.class_name, parts[1]
                )
                if found is not None:
                    return internal(*found)
            elif len(parts) == 3:
                typed = self._attr_type(summary, fn.class_name, parts[1])
                if typed is not None:
                    found = self._method_in_class(
                        typed[0], typed[1], parts[2]
                    )
                    if found is not None:
                        return internal(*found)
            return self._heuristic(caller, call)

        # nested defs and named lambdas, through the lexical scope chain
        # (a closure sees every enclosing function's local defs)
        if len(parts) == 1:
            scope = fn.qualname
            while True:
                info = summary.functions.get(scope)
                if info is not None and head in info.local_defs:
                    return internal(summary, info.local_defs[head])
                if ".<locals>." not in scope:
                    break
                scope = scope.rsplit(".<locals>.", 1)[0]

        # typed local variables: var = Ctor(...) / var = self.attr
        if len(parts) >= 2 and head in fn.local_types:
            type_name = fn.local_types[head]
            typed: tuple[ModuleSummary, str] | None
            if type_name.startswith("self.") and fn.class_name is not None:
                typed = self._attr_type(
                    summary, fn.class_name, type_name[len("self."):]
                )
            else:
                typed = self._resolve_class(summary, type_name)
            if typed is not None:
                found = self._method_in_class(
                    typed[0], typed[1], parts[-1]
                )
                if found is not None and len(parts) == 2:
                    return internal(*found)
            return self._heuristic(caller, call)

        # module-scope names: top-level functions, classes, imports
        module_body = summary.functions.get(MODULE_BODY)
        if (
            len(parts) == 1
            and module_body is not None
            and head in module_body.local_defs
        ):
            return internal(summary, module_body.local_defs[head])
        if head in summary.classes:
            if len(parts) == 1:
                found = self._method_in_class(summary, head, "__init__")
                if found is not None:
                    return internal(*found)
                return CallEdge(
                    caller=caller, raw=call.callee, line=call.line
                )
            found = self._method_in_class(
                summary, head, parts[-1]
            )
            if found is not None and len(parts) == 2:
                return internal(*found)
            return self._heuristic(caller, call)
        if head in summary.imports:
            absolute = summary.imports[head] + (
                "." + ".".join(parts[1:]) if len(parts) > 1 else ""
            )
            key = self._resolve_absolute_callable(absolute)
            if key is not None:
                return CallEdge(
                    caller=caller,
                    raw=call.callee,
                    line=call.line,
                    target=key,
                )
            return CallEdge(
                caller=caller,
                raw=call.callee,
                line=call.line,
                external=absolute,
            )
        return self._heuristic(caller, call)

    def _heuristic(self, caller: str, call: CallSite) -> CallEdge:
        """Unique-method fallback for receiver-typed calls we can't infer."""
        parts = call.callee.split(".")
        if len(parts) >= 2:
            candidates = self._methods_by_name.get(parts[-1], [])
            if len(candidates) == 1:
                s, cls = candidates[0]
                return CallEdge(
                    caller=caller,
                    raw=call.callee,
                    line=call.line,
                    target=self.node_key(s, f"{cls}.{parts[-1]}"),
                )
        return CallEdge(caller=caller, raw=call.callee, line=call.line)

    # -- the graph ------------------------------------------------------
    def edges(self) -> dict[str, list[CallEdge]]:
        """Adjacency of every function, built once and memoised."""
        if self._edges is None:
            self._edges = {}
            for summary, fn in self.functions():
                key = self.node_key(summary, fn.qualname)
                self._edges[key] = [
                    self.resolve_call(summary, fn, call)
                    for call in fn.calls
                ]
        return self._edges

    def reachable_from(
        self, roots: list[str]
    ) -> dict[str, tuple[str | None, int]]:
        """BFS closure: node key -> (predecessor key, call line).

        Roots map to ``(None, 0)``.  The predecessor chain reconstructs
        one example call path for diagnostics (:meth:`chain`).
        """
        edges = self.edges()
        seen: dict[str, tuple[str | None, int]] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root not in seen:
                seen[root] = (None, 0)
                queue.append(root)
        while queue:
            key = queue.popleft()
            for edge in edges.get(key, ()):
                if edge.target is not None and edge.target not in seen:
                    seen[edge.target] = (key, edge.line)
                    queue.append(edge.target)
        return seen

    def chain(
        self, reachable: dict[str, tuple[str | None, int]], key: str
    ) -> list[str]:
        """Root-to-``key`` node list using the BFS predecessor map."""
        path = [key]
        while True:
            pred = reachable.get(path[-1])
            if pred is None or pred[0] is None:
                break
            path.append(pred[0])
        return list(reversed(path))

    def external_calls(
        self, keys: dict[str, tuple[str | None, int]] | list[str]
    ) -> Iterator[tuple[ModuleSummary, FunctionInfo, CallEdge]]:
        """External (and unresolved-dotted) call edges of the given nodes."""
        edges = self.edges()
        for key in keys:
            try:
                summary, fn = self.function_of(key)
            except KeyError:
                continue
            for edge in edges.get(key, ()):
                if edge.target is None:
                    yield summary, fn, edge
