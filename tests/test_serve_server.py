"""The asyncio unix-socket transport: real sockets, real NDJSON lines,
register/report/query round-trips, pushed updates, error replies, and
graceful drain."""

import asyncio

import pytest

from repro.core import AppSpec
from repro.errors import ServiceError
from repro.machine import model_machine
from repro.serve import (
    Ack,
    AllocationUpdate,
    AsyncServiceClient,
    ServiceConfig,
    ServiceServer,
    ShutdownNotice,
)

MEM = AppSpec.memory_bound("mem", 0.5)
BAD = AppSpec.numa_bad("bad", 1.0, home_node=0)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=20.0))


def make_server(tmp_path, **config_kwargs):
    config_kwargs.setdefault("machine", model_machine())
    config_kwargs.setdefault("debounce", 0.01)
    path = str(tmp_path / "repro.sock")
    return ServiceServer(ServiceConfig(**config_kwargs), path), path


class TestSocketRoundTrip:
    def test_register_query_deregister(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            await server.start()
            client = AsyncServiceClient("mem")
            await client.connect(path)
            ack = await client.register(MEM)
            assert isinstance(ack, Ack)
            await asyncio.sleep(0.05)  # debounce fires on the loop clock
            update = await client.query_allocation()
            assert isinstance(update, AllocationUpdate)
            assert update.per_node == (8, 8, 8, 8)
            bye = await client.deregister()
            assert isinstance(bye, Ack)
            await client.close()
            await server.stop()

        run(scenario())

    def test_pushed_update_arrives_unsolicited(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            await server.start()
            client = AsyncServiceClient("mem")
            await client.connect(path)
            await client.register(MEM)
            pushed = await client.next_pushed(timeout=5.0)
            assert isinstance(pushed, AllocationUpdate)
            assert pushed.name == "mem"
            await client.close()
            await server.stop()

        run(scenario())

    def test_two_clients_share_the_machine(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            service = await server.start()
            mem = AsyncServiceClient("mem")
            bad = AsyncServiceClient("bad")
            await mem.connect(path)
            await bad.connect(path)
            await mem.register(MEM)
            await bad.register(BAD)
            await asyncio.sleep(0.05)
            u_mem = await mem.query_allocation()
            u_bad = await bad.query_allocation()
            assert u_mem.per_node == (2, 2, 2, 2)
            assert u_bad.per_node == (6, 6, 6, 6)
            assert service.reoptimizations >= 1
            await mem.close()
            await bad.close()
            await server.stop()

        run(scenario())

    def test_progress_report_acks(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            await server.start()
            client = AsyncServiceClient("mem")
            await client.connect(path)
            ack = await client.register(MEM)
            # Report times live on the service clock — the loop's.
            now = asyncio.get_running_loop().time()
            reply = await client.report(
                time=now, cpu_load=0.4, acked_epoch=ack.epoch
            )
            assert isinstance(reply, Ack)
            await client.close()
            await server.stop()

        run(scenario())


class TestSocketErrors:
    def test_error_reply_raises_client_side(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            await server.start()
            first = AsyncServiceClient("mem")
            second = AsyncServiceClient("mem")
            await first.connect(path)
            await second.connect(path)
            await first.register(MEM)
            with pytest.raises(ServiceError):
                await second.register(MEM)  # duplicate live session
            await first.close()
            await second.close()
            await server.stop()

        run(scenario())

    def test_garbage_line_gets_error_not_disconnect(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            await server.start()
            reader, writer = await asyncio.open_unix_connection(path)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            assert b'"error"' in line
            # The connection survived: a valid request still works.
            client = AsyncServiceClient("mem")
            client.reader, client.writer = reader, writer
            ack = await client.register(MEM)
            assert isinstance(ack, Ack)
            await client.close()
            await server.stop()

        run(scenario())

    def test_double_start_rejected(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            await server.start()
            with pytest.raises(ServiceError):
                await server.start()
            await server.stop()

        run(scenario())


class TestDrain:
    def test_stop_pushes_shutdown_notice(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            await server.start()
            client = AsyncServiceClient("mem")
            await client.connect(path)
            await client.register(MEM)
            await asyncio.sleep(0.05)
            await server.stop("maintenance")
            # Drain all remaining lines; the shutdown notice is there.
            notices = []
            while True:
                try:
                    msg = await client.next_pushed(timeout=1.0)
                except (ServiceError, asyncio.TimeoutError):
                    break
                notices.append(msg)
            assert any(
                isinstance(m, ShutdownNotice) for m in notices
            )
            await client.close()

        run(scenario())

    def test_stop_twice_is_harmless(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            await server.start()
            await server.stop()
            await server.stop()

        run(scenario())


class TestHardenedFrames:
    def test_invalid_utf8_gets_malformed_reply(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            await server.start()
            reader, writer = await asyncio.open_unix_connection(path)
            writer.write(b"\xff\xfe\xfd definitely not utf-8\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            assert b'"malformed"' in line
            # The connection survived the bad frame.
            client = AsyncServiceClient("mem")
            client.reader, client.writer = reader, writer
            ack = await client.register(MEM)
            assert isinstance(ack, Ack)
            await client.close()
            await server.stop()

        run(scenario())

    def test_oversized_frame_replies_then_disconnects(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        server = ServiceServer(
            ServiceConfig(machine=model_machine(), debounce=0.01),
            path,
            max_line_bytes=1024,
        )

        async def scenario():
            await server.start()
            reader, writer = await asyncio.open_unix_connection(path)
            writer.write(b"x" * 5000 + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            assert b'"frame-too-large"' in line
            # Past a torn frame there is no record boundary left: the
            # server closes the stream after the error reply.
            rest = await asyncio.wait_for(reader.read(), timeout=5.0)
            assert rest == b""
            writer.close()
            await server.stop()

        run(scenario())

    def test_min_frame_cap_enforced(self, tmp_path):
        with pytest.raises(ServiceError):
            ServiceServer(
                ServiceConfig(machine=model_machine()),
                str(tmp_path / "repro.sock"),
                max_line_bytes=16,
            )

    def test_abrupt_disconnect_mid_session_is_tolerated(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            service = await server.start()
            rude = AsyncServiceClient("mem")
            await rude.connect(path)
            await rude.register(MEM)
            # Vanish without deregistering — no FIN handshake games,
            # just drop the transport mid-stream.
            rude.writer.transport.abort()
            await asyncio.sleep(0.05)
            # The service keeps running and serves a fresh client.
            polite = AsyncServiceClient("bad")
            await polite.connect(path)
            ack = await polite.register(BAD)
            assert isinstance(ack, Ack)
            # The rude session is still registered (its liveness is
            # the staleness sweep's business, not the transport's).
            assert "mem" in service.registry
            await polite.close()
            await server.stop()

        run(scenario())

    def test_disconnect_with_queued_pushes_is_tolerated(self, tmp_path):
        server, path = make_server(tmp_path)

        async def scenario():
            await server.start()
            client = AsyncServiceClient("mem")
            await client.connect(path)
            await client.register(MEM)
            await asyncio.sleep(0.05)  # a push is in flight or queued
            client.writer.transport.abort()
            await asyncio.sleep(0.05)
            await server.stop()  # drain must not hang or raise

        run(scenario())
