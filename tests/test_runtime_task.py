"""Unit tests for tasks and their lifecycle."""

import pytest

from repro.errors import DependencyError, TaskError
from repro.runtime.datablock import AccessMode, Datablock
from repro.runtime.events import OnceEvent
from repro.runtime.task import Task, TaskState


def mk(name="t", **kw):
    return Task(name=name, flops=1.0, arithmetic_intensity=2.0, **kw)


class TestLifecycle:
    def test_starts_ready_without_deps(self):
        assert mk().state is TaskState.READY

    def test_run_and_finish(self):
        t = mk()
        t.start("w0")
        assert t.state is TaskState.RUNNING
        assert t.worker_name == "w0"
        t.finish()
        assert t.state is TaskState.FINISHED
        assert t.output_event.fired

    def test_start_twice_rejected(self):
        t = mk()
        t.start("w0")
        with pytest.raises(TaskError):
            t.start("w1")

    def test_finish_without_start_rejected(self):
        with pytest.raises(TaskError):
            mk().finish()

    def test_validation(self):
        with pytest.raises(TaskError):
            Task("x", flops=0.0, arithmetic_intensity=1.0)
        with pytest.raises(TaskError):
            Task("x", flops=1.0, arithmetic_intensity=-1.0)


class TestDependencies:
    def test_task_waits_for_producer(self):
        a, b = mk("a"), mk("b")
        b.depends_on(a)
        assert b.state is TaskState.WAITING
        a.start("w")
        a.finish()
        assert b.state is TaskState.READY

    def test_multiple_slots(self):
        a, b, c = mk("a"), mk("b"), mk("c")
        c.depends_on(a)
        c.depends_on(b)
        a.start("w")
        a.finish()
        assert c.state is TaskState.WAITING
        b.start("w")
        b.finish()
        assert c.state is TaskState.READY

    def test_event_dependence(self):
        e = OnceEvent()
        t = mk()
        t.depends_on(e)
        assert t.state is TaskState.WAITING
        e.satisfy()
        assert t.state is TaskState.READY

    def test_dependence_on_finished_task_satisfied_immediately(self):
        a = mk("a")
        a.start("w")
        a.finish()
        b = mk("b")
        b.depends_on(a)
        assert b.state is TaskState.READY

    def test_adding_dep_to_running_task_rejected(self):
        t = mk()
        t.start("w")
        with pytest.raises(DependencyError):
            t.depends_on(mk("x"))

    def test_on_ready_callback(self):
        got = []
        a, b = mk("a"), mk("b")
        b.depends_on(a)
        b.on_ready(lambda t: got.append(t.name))
        assert got == []
        a.start("w")
        a.finish()
        assert got == ["b"]

    def test_on_ready_fires_immediately_when_ready(self):
        got = []
        mk("a").on_ready(lambda t: got.append(t.name))
        assert got == ["a"]


class TestDatablocks:
    def test_acquired_during_run(self):
        db = Datablock(10, 0)
        t = mk(datablocks=[db])
        t.start("w")
        assert db.acquired
        t.finish()
        assert not db.acquired

    def test_affinity_defaults_to_biggest_block(self):
        dbs = [Datablock(10, 0), Datablock(100, 2)]
        assert mk(datablocks=dbs).affinity_node == 2

    def test_traffic_from_blocks(self):
        dbs = [Datablock(10, 0), Datablock(30, 1)]
        f = mk(datablocks=dbs).traffic()
        assert f[1] == pytest.approx(0.75)

    def test_access_mode_length_checked(self):
        with pytest.raises(TaskError):
            mk(
                datablocks=[Datablock(10, 0)],
                access_modes=[AccessMode.READ_ONLY, AccessMode.READ_ONLY],
            )


class TestTiedTasks:
    def test_tied_task_enforces_worker(self):
        t = mk(tied_to="w1")
        with pytest.raises(TaskError):
            t.start("w2")
        t.start("w1")


class TestCallbacks:
    def test_on_finish_runs_before_output_event(self):
        order = []
        t = mk(on_finish=lambda task: order.append("finish"))
        t.output_event.add_dependent(lambda p: order.append("event"))
        t.start("w")
        t.finish()
        assert order == ["finish", "event"]

    def test_dynamic_graph_from_on_finish(self):
        created = []

        def spawn(task):
            created.append(mk(f"child-of-{task.name}"))

        t = mk("root", on_finish=spawn)
        t.start("w")
        t.finish()
        assert len(created) == 1
        assert created[0].state is TaskState.READY
