"""Unit tests for the fluid CFS-like OS scheduler."""

import pytest

from repro.errors import SchedulerError
from repro.machine import MachineTopology
from repro.sim.cpu import Binding, SimThread, ThreadState
from repro.sim.os_scheduler import CfsScheduler


def machine(nodes=2, cores=4):
    return MachineTopology.homogeneous(
        num_nodes=nodes,
        cores_per_node=cores,
        peak_gflops_per_core=10.0,
        local_bandwidth=32.0,
        remote_bandwidth=8.0,
    )


class _NullProvider:
    def next_segment(self, thread):
        return None

    def segment_finished(self, thread, segment):
        pass


def thread(tid, binding):
    return SimThread(
        tid=tid, name=f"t{tid}", binding=binding, provider=_NullProvider()
    )


class TestNoOversubscription:
    def test_full_share_node_bound(self):
        s = CfsScheduler()
        m = machine()
        threads = [thread(i, Binding.to_node(0)) for i in range(4)]
        out = s.assign(m, threads)
        for t in threads:
            assert out[t.tid].share == pytest.approx(1.0)
            assert out[t.tid].efficiency == pytest.approx(1.0)
            assert out[t.tid].node == 0

    def test_core_bound_exclusive(self):
        s = CfsScheduler()
        m = machine()
        threads = [thread(0, Binding.to_core(5))]
        out = s.assign(m, threads)
        assert out[0].node == 1  # core 5 lives on node 1
        assert out[0].share == pytest.approx(1.0)


class TestOversubscription:
    def test_node_level_sharing(self):
        s = CfsScheduler(context_switch_penalty=0.05)
        m = machine()
        threads = [thread(i, Binding.to_node(0)) for i in range(8)]
        out = s.assign(m, threads)
        for t in threads:
            assert out[t.tid].share == pytest.approx(0.5)
            assert out[t.tid].efficiency == pytest.approx(0.95)

    def test_core_level_sharing(self):
        s = CfsScheduler(context_switch_penalty=0.0)
        m = machine()
        threads = [thread(i, Binding.to_core(0)) for i in range(2)]
        out = s.assign(m, threads)
        for t in threads:
            assert out[t.tid].share == pytest.approx(0.5)

    def test_mixed_bound_and_flexible(self):
        s = CfsScheduler(context_switch_penalty=0.0)
        m = machine(nodes=1, cores=2)
        threads = [
            thread(0, Binding.to_core(0)),
            thread(1, Binding.to_node(0)),
            thread(2, Binding.to_node(0)),
        ]
        out = s.assign(m, threads)
        # core 0 reserved by the bound thread; flexible pair splits the
        # other core.
        assert out[0].share == pytest.approx(1.0)
        assert out[1].share == pytest.approx(0.5)
        assert out[2].share == pytest.approx(0.5)


class TestUnbound:
    def test_balanced_across_nodes(self):
        s = CfsScheduler()
        m = machine(nodes=2, cores=4)
        threads = [thread(i, Binding.unbound()) for i in range(8)]
        out = s.assign(m, threads)
        nodes = [out[t.tid].node for t in threads]
        assert nodes.count(0) == 4
        assert nodes.count(1) == 4

    def test_migration_penalty_applied(self):
        s = CfsScheduler(migration_penalty=0.1)
        m = machine()
        threads = [thread(0, Binding.unbound())]
        out = s.assign(m, threads)
        assert out[0].efficiency == pytest.approx(0.9)

    def test_fills_least_loaded_first(self):
        s = CfsScheduler()
        m = machine(nodes=2, cores=4)
        threads = [thread(i, Binding.to_node(0)) for i in range(4)]
        threads.append(thread(99, Binding.unbound()))
        out = s.assign(m, threads)
        assert out[99].node == 1


class TestStates:
    def test_blocked_threads_skipped(self):
        s = CfsScheduler()
        m = machine()
        t = thread(0, Binding.to_node(0))
        t.state = ThreadState.BLOCKED
        out = s.assign(m, [t])
        assert 0 not in out

    def test_parameter_validation(self):
        with pytest.raises(SchedulerError):
            CfsScheduler(context_switch_penalty=1.0)
        with pytest.raises(SchedulerError):
            CfsScheduler(migration_penalty=-0.1)
