"""Property-based tests on the simulator's arbitration layers."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.machine import MachineTopology
from repro.sim.cpu import Binding, SimThread
from repro.sim.memory import BandwidthRequest, BandwidthResolver
from repro.sim.os_scheduler import CfsScheduler


class _NullProvider:
    def next_segment(self, thread):
        return None

    def segment_finished(self, thread, segment):
        pass


@st.composite
def machines(draw):
    nodes = draw(st.integers(min_value=1, max_value=4))
    cores = draw(st.integers(min_value=1, max_value=8))
    return MachineTopology.homogeneous(
        num_nodes=nodes,
        cores_per_node=cores,
        peak_gflops_per_core=10.0,
        local_bandwidth=draw(st.floats(min_value=1.0, max_value=200.0)),
        remote_bandwidth=draw(
            st.floats(min_value=0.5, max_value=50.0)
        ),
    )


@st.composite
def requests_for(draw, machine):
    n = draw(st.integers(min_value=0, max_value=12))
    out = []
    for i in range(n):
        source = draw(
            st.integers(min_value=0, max_value=machine.num_nodes - 1)
        )
        demands = {}
        for m in range(machine.num_nodes):
            if draw(st.booleans()):
                demands[m] = draw(
                    st.floats(min_value=0.0, max_value=100.0)
                )
        out.append(
            BandwidthRequest(key=i, source_node=source, demands=demands)
        )
    return out


class TestResolverProperties:
    @given(
        machines().flatmap(
            lambda m: st.tuples(st.just(m), requests_for(m))
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_physical_invariants(self, mr):
        machine, requests = mr
        grants = BandwidthResolver(machine).resolve(requests)
        # 1. Grant never exceeds demand (per memory node).
        for r in requests:
            g = grants[r.key]
            for m, got in g.by_node.items():
                assert got <= r.demands.get(m, 0.0) + 1e-6
                assert got >= -1e-9
        # 2. Traffic drawn from each node's memory <= its bandwidth.
        for m in range(machine.num_nodes):
            drawn = sum(
                g.by_node.get(m, 0.0) for g in grants.values()
            )
            assert drawn <= machine.node(m).local_bandwidth + 1e-6
        # 3. Link conservation: flow from source s into memory m never
        #    exceeds the link bandwidth.
        for s in range(machine.num_nodes):
            for m in range(machine.num_nodes):
                if s == m:
                    continue
                flow = sum(
                    grants[r.key].by_node.get(m, 0.0)
                    for r in requests
                    if r.source_node == s
                )
                assert flow <= machine.bandwidth(s, m) + 1e-6

    @given(
        machines().flatmap(
            lambda m: st.tuples(st.just(m), requests_for(m))
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_local_work_conservation(self, mr):
        """A node's memory is exhausted whenever local demand alone
        exceeds what is left after remote service."""
        machine, requests = mr
        grants = BandwidthResolver(machine).resolve(requests)
        for m in range(machine.num_nodes):
            local_demand = sum(
                r.demands.get(m, 0.0)
                for r in requests
                if r.source_node == m
            )
            drawn = sum(g.by_node.get(m, 0.0) for g in grants.values())
            cap = machine.node(m).local_bandwidth
            if local_demand >= cap:
                assert drawn == pytest.approx(cap, rel=1e-6)


class TestSchedulerProperties:
    @given(
        machines(),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # node choice
                st.floats(min_value=0.1, max_value=10.0),  # weight
            ),
            min_size=0,
            max_size=20,
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_share_invariants(self, machine, thread_specs):
        threads = []
        for i, (node_pick, weight) in enumerate(thread_specs):
            node = node_pick % machine.num_nodes
            threads.append(
                SimThread(
                    tid=i,
                    name=f"t{i}",
                    binding=Binding.to_node(node),
                    provider=_NullProvider(),
                    weight=weight,
                )
            )
        out = CfsScheduler().assign(machine, threads)
        # every runnable thread is assigned, shares in (0, 1]
        assert set(out) == {t.tid for t in threads}
        per_node: dict[int, float] = {}
        for t in threads:
            a = out[t.tid]
            assert 0.0 < a.share <= 1.0 + 1e-9
            assert 0.0 < a.efficiency <= 1.0
            per_node[a.node] = per_node.get(a.node, 0.0) + a.share
        # per-node total share never exceeds the node's core count
        for node, total in per_node.items():
            assert total <= machine.node(node).num_cores + 1e-6

    @given(machines(), st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_unbound_threads_balanced(self, machine, n):
        threads = [
            SimThread(
                tid=i,
                name=f"t{i}",
                binding=Binding.unbound(),
                provider=_NullProvider(),
            )
            for i in range(n)
        ]
        out = CfsScheduler().assign(machine, threads)
        counts = [0] * machine.num_nodes
        for t in threads:
            counts[out[t.tid].node] += 1
        # balanced in threads-per-core terms: max spread of one unit
        per_core = [
            c / machine.node(i).num_cores for i, c in enumerate(counts)
        ]
        unit = 1.0 / machine.nodes[0].num_cores
        assert max(per_core) - min(per_core) <= unit + 1e-9
