"""Unit tests for the agent strategies (pure decision logic)."""

import pytest

from repro.agent.protocol import CommandKind, StatusReport
from repro.agent.strategies import (
    FairShareStrategy,
    LibraryShiftStrategy,
    ModelGuidedStrategy,
    ProducerConsumerAlignment,
)
from repro.core.spec import AppSpec
from repro.errors import AgentError
from repro.machine import model_machine


def report(name, *, progress=None, queue=0, active=(8, 8, 8, 8)):
    return StatusReport(
        runtime_name=name,
        time=0.0,
        tasks_executed=0,
        active_threads=sum(active),
        blocked_threads=0,
        active_per_node=tuple(active),
        workers_per_node=(8, 8, 8, 8),
        queue_length=queue,
        progress=progress or {},
    )


@pytest.fixture
def machine():
    return model_machine()


class TestFairShare:
    def test_issues_once(self, machine):
        s = FairShareStrategy()
        reports = {"a": report("a"), "b": report("b")}
        first = s.decide(machine, reports)
        assert set(first) == {"a", "b"}
        assert first["a"][0].per_node == (4, 4, 4, 4)
        assert s.decide(machine, reports) == {}

    def test_clamps_to_worker_counts(self, machine):
        s = FairShareStrategy()
        small = StatusReport(
            runtime_name="a",
            time=0.0,
            tasks_executed=0,
            active_threads=4,
            blocked_threads=0,
            active_per_node=(1, 1, 1, 1),
            workers_per_node=(1, 1, 1, 1),
            queue_length=0,
        )
        out = s.decide(machine, {"a": small, "b": report("b")})
        assert out["a"][0].per_node == (1, 1, 1, 1)


class TestProducerConsumerAlignment:
    def test_initial_split_even(self, machine):
        s = ProducerConsumerAlignment("p", "c", max_lead=3, min_lead=1)
        out = s.decide(machine, {"p": report("p"), "c": report("c")})
        assert out["p"][0].per_node == (4, 4, 4, 4)
        assert out["c"][0].per_node == (4, 4, 4, 4)

    def test_shifts_to_consumer_when_producer_leads(self, machine):
        s = ProducerConsumerAlignment("p", "c", max_lead=3, min_lead=1)
        s.decide(machine, {"p": report("p"), "c": report("c")})
        out = s.decide(
            machine,
            {
                "p": report("p", progress={"iterations": 10}),
                "c": report("c", progress={"iterations": 2}),
            },
        )
        assert out["p"][0].per_node == (3, 3, 3, 3)
        assert out["c"][0].per_node == (5, 5, 5, 5)

    def test_shifts_back_when_lead_too_small(self, machine):
        s = ProducerConsumerAlignment("p", "c", max_lead=5, min_lead=2)
        s.decide(machine, {"p": report("p"), "c": report("c")})
        out = s.decide(
            machine,
            {
                "p": report("p", progress={"iterations": 3}),
                "c": report("c", progress={"iterations": 3}),
            },
        )
        assert out["p"][0].per_node == (5, 5, 5, 5)

    def test_quiet_when_aligned(self, machine):
        s = ProducerConsumerAlignment("p", "c", max_lead=4, min_lead=1)
        s.decide(machine, {"p": report("p"), "c": report("c")})
        out = s.decide(
            machine,
            {
                "p": report("p", progress={"iterations": 5}),
                "c": report("c", progress={"iterations": 3}),
            },
        )
        assert out == {}

    def test_floor_of_one_thread(self, machine):
        s = ProducerConsumerAlignment("p", "c", max_lead=1.5, min_lead=0.5)
        s.decide(machine, {"p": report("p"), "c": report("c")})
        # repeated large leads: producer shrinks but never below 1/node
        for lead in range(100):
            s.decide(
                machine,
                {
                    "p": report("p", progress={"iterations": 1000.0}),
                    "c": report("c", progress={"iterations": 0.0}),
                },
            )
        assert all(p >= 1 for p, _ in s._split.values())

    def test_invalid_bounds(self):
        with pytest.raises(AgentError):
            ProducerConsumerAlignment("p", "c", max_lead=1, min_lead=2)


class TestModelGuided:
    def test_issues_optimal_allocation(self, machine, paper_apps):
        s = ModelGuidedStrategy(paper_apps)
        reports = {a.name: report(a.name) for a in paper_apps}
        out = s.decide(machine, reports)
        assert set(out) == {a.name for a in paper_apps}
        # throughput-optimal: all cores to comp (others zero)
        assert sum(out["comp"][0].per_node) == 32

    def test_no_replan_by_default(self, machine, paper_apps):
        s = ModelGuidedStrategy(paper_apps)
        reports = {a.name: report(a.name) for a in paper_apps}
        s.decide(machine, reports)
        assert s.decide(machine, reports) == {}

    def test_replan_every(self, machine, paper_apps):
        s = ModelGuidedStrategy(paper_apps, replan_every=2)
        reports = {a.name: report(a.name) for a in paper_apps}
        s.decide(machine, reports)
        assert s.decide(machine, reports) != {}

    def test_needs_specs(self):
        with pytest.raises(AgentError):
            ModelGuidedStrategy([])


class TestLibraryShift:
    def test_shifts_on_library_demand(self, machine):
        s = LibraryShiftStrategy("main", "lib", library_share=0.75)
        out = s.decide(
            machine,
            {"main": report("main"), "lib": report("lib", queue=5)},
        )
        assert out["lib"][0].per_node == (6, 6, 6, 6)
        assert out["main"][0].per_node == (2, 2, 2, 2)

    def test_shifts_back_when_idle(self, machine):
        s = LibraryShiftStrategy("main", "lib")
        s.decide(
            machine,
            {"main": report("main"), "lib": report("lib", queue=5)},
        )
        out = s.decide(
            machine,
            {"main": report("main"), "lib": report("lib", queue=0)},
        )
        assert out["main"][0].per_node == (7, 7, 7, 7)
        assert out["lib"][0].per_node == (1, 1, 1, 1)

    def test_no_command_without_state_change(self, machine):
        s = LibraryShiftStrategy("main", "lib")
        r = {"main": report("main"), "lib": report("lib", queue=5)}
        s.decide(machine, r)
        assert s.decide(machine, r) == {}

    def test_invalid_share(self):
        with pytest.raises(AgentError):
            LibraryShiftStrategy("m", "l", library_share=1.5)
