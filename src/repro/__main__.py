"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``report``
    Regenerate every paper table/figure and print the full report.
``run <experiment-id>``
    Run one experiment (ids: ``table1 table2 fig1 fig2 fig3 table3
    oversub sublinear library distributed calibration``).
``list``
    List experiment ids with their titles.
``describe <preset>``
    Print a machine preset (``model``, ``skylake``, ``numa-bad``,
    ``knl-flat``, ``knl-snc4``) in the parseable topology format.
``trace <target>``
    Run an instrumented demo workload (``quickstart``, ``optimizer``,
    ``agent``) under :mod:`repro.obs` and print a span/metric summary;
    ``--export chrome --out trace.json`` writes a file that loads in
    ``chrome://tracing`` (``--export jsonl`` for JSON-lines).
``bench``
    Benchmark the batched/cached model-evaluation fast path
    (:mod:`repro.core.fasteval`) against the scalar reference model and
    time every search on both paths.  ``--json`` prints the report as
    JSON, ``--out`` writes it to a file (``BENCH_model.json`` is the
    committed baseline), ``--smoke`` is the quick CI mode, and
    ``--min-speedup`` / ``--max-delta-ms`` gate the exit code on the
    exhaustive-search speedup (default 5x) and the steady-state
    incremental re-optimization latency (default 1 ms).  ``--workers
    N`` adds the process-pool section (serial vs 2/4/... workers on
    the ten-app space, byte-identity always hard-gated);
    ``--min-parallel-speedup`` additionally gates the N-worker
    exhaustive speedup — on hosts with >= 2 effective CPUs only, since
    a single-core container cannot run two workers at once.
``check [paths]``
    Run the project's static-analysis suite (:mod:`repro.lint`): the
    per-file AST rules and the whole-program rules (call graph, async
    safety, replay determinism, metric drift) over ``paths`` (default
    ``src``) plus the machine preset invariant checker.  Warm runs are
    incremental via a content-hash cache (``--no-cache`` disables).
    ``--rules`` with no ids prints the rule catalogue; ``--json`` /
    ``--sarif [PATH]`` emit machine-readable findings; findings ratchet
    against ``lint-baseline.json`` (``--update-baseline`` rewrites it,
    ``--no-baseline`` ignores it); ``--fail-on {error,warning}``
    controls the exit-code gate.
``chaos <scenario>``
    Run a fault-injection recovery scenario (:mod:`repro.faults`):
    ``crash-one``, ``flaky-reports``, ``lossy-links``, ``serve-crash``
    (churn + crash + dropped commands against the live allocation
    service), ``serve-restart`` (the journaled service is killed and
    its write-ahead journal corrupted — duplicated segment, stale
    snapshot, torn tail — before recovery), or ``serve-overload``
    (admission overflow, a shed report flood, and a queued-stale
    command).  Prints a recovery report and exits non-zero when the
    scenario's recovery criteria are not met; ``--seed`` replays a
    different (still deterministic) fault sequence, ``--json`` emits
    the report as JSON.
``serve``
    Run the long-running allocation service (:mod:`repro.serve`).
    ``--scenario <name>`` replays a seeded join/leave churn script on
    the DES clock (``churn-basic``, ``churn-burst``, ``churn-stale``,
    ``churn-cache``, ``serve-crash-restart``) and exits non-zero when
    the scenario's criteria — including byte-identity of the final
    allocation with the offline optimizer — are not met.  ``--mode
    delta`` routes churn through the incremental
    :class:`~repro.core.delta.DeltaSearch` instead of the full
    per-event search (the oracle check still applies).  ``--journal
    DIR`` enables the :mod:`repro.serve.persist` write-ahead journal
    (for replays *and* the daemon; a daemon restarted on a non-empty
    journal directory recovers its pre-crash state).  ``--socket
    PATH`` instead starts the asyncio NDJSON daemon on a unix socket
    (``--machine`` picks the topology preset) until interrupted;
    ``--tcp [HOST:]PORT`` / ``--http [HOST:]PORT`` instead start the
    network-facing :class:`~repro.serve.gateway.GatewayServer` with
    admission control (connection caps, token-bucket rate limiting,
    bounded admission queue, idle deadlines — see ``docs/GATEWAY.md``).
``load``
    Drive the gateway with an open-loop load scenario
    (:mod:`repro.serve.load`): seeded Poisson/diurnal arrivals spawn
    simulated client sessions that register, report, and deregister
    through a live in-process gateway.  Prints p50/p95/p99 command
    latency, shed/retry counts, and re-optimization debounce
    behaviour; ``--json`` emits the report as JSON, ``--out`` writes
    it (``BENCH_serve.json`` is the committed baseline),
    ``--transport http`` routes every command through the HTTP/1.1
    adapter, and ``--max-p99-ms`` gates the exit code on the latency
    SLO (the CI gate).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import EXPERIMENTS, full_report, run_experiment
from repro.machine import (
    knl_flat,
    knl_snc4,
    model_machine,
    numa_bad_example_machine,
    skylake_4s,
)
from repro.machine.parser import format_topology
from repro.obs.demo import TRACE_TARGETS

_PRESETS = {
    "model": model_machine,
    "skylake": skylake_4s,
    "numa-bad": numa_bad_example_machine,
    "knl-flat": knl_flat,
    "knl-snc4": knl_snc4,
}


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'NUMA-aware CPU core allocation in "
        "cooperating dynamic applications' (IPPS 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("report", help="run every experiment")
    runp = sub.add_parser("run", help="run one experiment by id")
    runp.add_argument("experiment", choices=sorted(EXPERIMENTS))
    sub.add_parser("list", help="list experiment ids")
    sub.add_parser("api", help="print the public API reference")
    desc = sub.add_parser("describe", help="print a machine preset")
    desc.add_argument("preset", choices=sorted(_PRESETS))
    tracep = sub.add_parser(
        "trace", help="run an instrumented demo and export spans/metrics"
    )
    tracep.add_argument("target", choices=sorted(TRACE_TARGETS))
    tracep.add_argument(
        "--export",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="trace file format (default: chrome trace-event JSON)",
    )
    tracep.add_argument(
        "--out",
        default=None,
        help="output path; omitted, only the summary is printed",
    )
    benchp = sub.add_parser(
        "bench", help="benchmark the model-evaluation fast path"
    )
    benchp.add_argument(
        "--smoke",
        action="store_true",
        help="quick mode for CI (fewer repeats, short annealing)",
    )
    benchp.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of a table",
    )
    benchp.add_argument(
        "--out",
        default=None,
        help="also write the JSON report to this path",
    )
    benchp.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="exit 1 unless batched exhaustive search beats scalar by "
        "this factor (default 5.0; 0 disables the gate)",
    )
    benchp.add_argument(
        "--max-delta-ms",
        type=float,
        default=1.0,
        help="exit 1 unless one steady-state delta re-optimization stays "
        "under this many milliseconds (default 1.0; 0 disables the gate)",
    )
    benchp.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="also benchmark the process-parallel scoring pool at "
        "2/4/... workers up to N (adds the 'parallel' report section)",
    )
    benchp.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=0.0,
        help="exit 1 unless the N-worker exhaustive search beats serial "
        "by this factor (needs --workers; enforced only on hosts with "
        ">= 2 effective CPUs; default 0 disables the gate)",
    )
    from repro.lint.cli import add_check_parser

    add_check_parser(sub)
    chaosp = sub.add_parser(
        "chaos", help="run a fault-injection recovery scenario"
    )
    from repro.faults import SCENARIOS

    chaosp.add_argument("scenario", choices=sorted(SCENARIOS))
    chaosp.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fault-sequence seed (default 0); same seed, same faults",
    )
    chaosp.add_argument(
        "--json",
        action="store_true",
        help="emit the recovery report as JSON",
    )
    servep = sub.add_parser(
        "serve", help="run the long-running allocation service"
    )
    from repro.serve import SERVE_SCENARIOS

    servep.add_argument(
        "--scenario",
        choices=sorted(SERVE_SCENARIOS),
        default=None,
        help="replay a seeded churn scenario instead of daemonizing",
    )
    servep.add_argument(
        "--seed",
        type=int,
        default=0,
        help="churn-sequence seed (default 0); same seed, same replay",
    )
    servep.add_argument(
        "--json",
        action="store_true",
        help="emit the replay report as JSON",
    )
    servep.add_argument(
        "--mode",
        choices=("full", "delta"),
        default="full",
        help="re-optimization path: 'full' re-searches the whole space "
        "per churn event, 'delta' warm-starts from the previous "
        "allocation (default: full)",
    )
    servep.add_argument(
        "--socket",
        default=None,
        help="unix-socket path to serve the NDJSON protocol on",
    )
    servep.add_argument(
        "--machine",
        choices=sorted(_PRESETS),
        default="model",
        help="machine preset the daemon optimizes for (default: model)",
    )
    servep.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="write-ahead-journal directory; replays journal into it, "
        "the daemon additionally recovers from it on startup",
    )
    servep.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="score big candidate batches through N worker processes "
        "(repro.core.parallel; default 0 = serial, allocations are "
        "byte-identical either way)",
    )
    servep.add_argument(
        "--tcp",
        default=None,
        metavar="[HOST:]PORT",
        help="serve the NDJSON protocol over TCP through the gateway "
        "(admission control, rate limiting; see docs/GATEWAY.md)",
    )
    servep.add_argument(
        "--http",
        default=None,
        metavar="[HOST:]PORT",
        help="additionally expose the HTTP/1.1 adapter on this port "
        "(needs --tcp)",
    )
    loadp = sub.add_parser(
        "load", help="drive the gateway with an open-loop load scenario"
    )
    from repro.serve.load import LOAD_SCENARIOS

    loadp.add_argument(
        "--scenario",
        choices=sorted(LOAD_SCENARIOS),
        default="open-loop-small",
        help="named workload from the scenario library "
        "(default: open-loop-small, the CI preset)",
    )
    loadp.add_argument(
        "--seed",
        type=int,
        default=0,
        help="arrival-schedule seed (default 0); same seed, same "
        "arrival offsets",
    )
    loadp.add_argument(
        "--transport",
        choices=("tcp", "http"),
        default="tcp",
        help="how sessions speak to the gateway: persistent NDJSON "
        "streams (tcp, default) or one HTTP request per command (http)",
    )
    loadp.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of a table",
    )
    loadp.add_argument(
        "--out",
        default=None,
        help="also write the JSON report to this path "
        "(BENCH_serve.json is the committed baseline)",
    )
    loadp.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        metavar="MS",
        help="override the scenario's latency SLO: exit 1 unless the "
        "overall command-latency p99 stays at or under MS milliseconds",
    )
    args = parser.parse_args(argv)

    if args.command == "report":
        print(full_report())
    elif args.command == "run":
        print(run_experiment(args.experiment))
    elif args.command == "list":
        for exp_id, (title, _) in EXPERIMENTS.items():
            print(f"{exp_id:12s} {title}")
    elif args.command == "api":
        from repro.analysis.apidoc import api_summary

        print(api_summary())
    elif args.command == "describe":
        print(format_topology(_PRESETS[args.preset]()), end="")
    elif args.command == "trace":
        _run_trace(args.target, args.export, args.out)
    elif args.command == "bench":
        return _run_bench(args)
    elif args.command == "check":
        from repro.lint.cli import run_check

        return run_check(args)
    elif args.command == "chaos":
        from repro.faults import run_scenario

        report = run_scenario(args.scenario, seed=args.seed)
        print(report.to_json() if args.json else report.format())
        return 0 if report.passed else 1
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "load":
        return _run_load(args)
    return 0


def _parse_bind(value: str) -> tuple[str, int]:
    """``[HOST:]PORT`` -> ``(host, port)`` (default host: loopback)."""
    host, sep, port = value.rpartition(":")
    if not sep:
        host = "127.0.0.1"
        port = value
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"invalid bind address {value!r}") from None


def _run_serve(args) -> int:
    """Replay a churn scenario, or daemonize on a socket/gateway."""
    if args.scenario is not None:
        from repro.serve import run_replay

        report = run_replay(
            args.scenario,
            seed=args.seed,
            mode=args.mode,
            journal=args.journal,
            workers=args.workers,
        )
        print(report.to_json() if args.json else report.format())
        return 0 if report.passed else 1
    if args.socket is None and args.tcp is None:
        print(
            "serve needs --scenario <name>, --socket PATH, or "
            "--tcp [HOST:]PORT",
            file=sys.stderr,
        )
        return 2
    if args.http is not None and args.tcp is None:
        print("--http needs --tcp", file=sys.stderr)
        return 2
    import asyncio

    from repro.serve import ServiceConfig, ServiceServer
    from repro.serve.gateway import GatewayConfig, GatewayServer

    service_config = ServiceConfig(
        machine=_PRESETS[args.machine](),
        mode=args.mode,
        workers=args.workers,
    )

    async def _daemon() -> None:
        if args.tcp is not None:
            host, port = _parse_bind(args.tcp)
            http_port = (
                _parse_bind(args.http)[1] if args.http is not None else None
            )
            gateway = GatewayServer(
                service_config,
                GatewayConfig(host=host, port=port, http_port=http_port),
                journal_path=args.journal,
            )
            await gateway.start()
            where = "%s:%d" % gateway.tcp_address
            if http_port is not None:
                where += ", HTTP on %s:%d" % gateway.http_address
            print(f"gateway serving allocation protocol on {where}")
            try:
                await asyncio.Event().wait()  # until interrupted
            finally:
                await gateway.stop()
            return
        server = ServiceServer(
            service_config,
            args.socket,
            journal_path=args.journal,
        )
        await server.start()
        print(f"serving NDJSON allocation protocol on {args.socket}")
        try:
            await asyncio.Event().wait()  # until interrupted
        finally:
            await server.stop()

    try:
        asyncio.run(_daemon())
    except KeyboardInterrupt:
        print("drained")
    return 0


def _run_load(args) -> int:
    """Run one open-loop load scenario; exit 1 when the SLO fails."""
    from repro.serve.load import run_load

    report = run_load(
        args.scenario,
        seed=args.seed,
        transport=args.transport,
        max_p99_ms=args.max_p99_ms,
    )
    print(report.to_json() if args.json else report.format())
    if args.out is not None:
        from repro.analysis.bench import write_report

        write_report(report.to_dict(), args.out)
        if not args.json:
            print(f"wrote {args.out}")
    if not report.passed:
        print(
            f"FAIL: p99 {report.latency_ms['p99']:.2f} ms against the "
            f"{report.slo['p99_ms']:.0f} ms SLO (or too few sessions "
            f"admitted: {report.sessions['admitted']} < "
            f"{report.slo['min_admitted']})",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_bench(args) -> int:
    """Run the fast-path benchmark; exit 1 when below the speedup gate."""
    import json

    from repro.analysis.bench import format_report, run_bench, write_report

    if args.min_parallel_speedup > 0 and args.workers is None:
        print(
            "--min-parallel-speedup needs --workers N",
            file=sys.stderr,
        )
        return 2
    report = run_bench(smoke=args.smoke, workers=args.workers)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(format_report(report))
    if args.out is not None:
        write_report(report, args.out)
        if not args.json:
            print(f"wrote {args.out}")
    speedup = report["speedups"]["search/exhaustive_fast"]
    if args.min_speedup > 0 and speedup < args.min_speedup:
        print(
            f"FAIL: exhaustive-search speedup {speedup:.2f}x is below "
            f"the {args.min_speedup:.1f}x gate",
            file=sys.stderr,
        )
        return 1
    delta_ms = report["delta"]["steady_state_ms"]
    if args.max_delta_ms > 0 and delta_ms > args.max_delta_ms:
        print(
            f"FAIL: steady-state delta re-optimization {delta_ms:.4f} ms "
            f"exceeds the {args.max_delta_ms:.1f} ms gate",
            file=sys.stderr,
        )
        return 1
    parallel = report.get("parallel")
    if parallel is not None:
        # Byte-identity is a correctness property, not a perf number:
        # it is hard-gated whenever the parallel section ran at all.
        if not parallel["identical"]:
            print(
                "FAIL: a parallel search result differed from the "
                "serial answer (byte-identity contract broken)",
                file=sys.stderr,
            )
            return 1
        if args.min_parallel_speedup > 0:
            cpus = parallel["effective_cpus"]
            if cpus < 2:
                print(
                    f"note: skipping the {args.min_parallel_speedup:.1f}x "
                    f"parallel-speedup gate — this host exposes "
                    f"{cpus} effective CPU(s), so a wall-clock speedup "
                    f"is physically unattainable (byte-identity was "
                    f"still enforced)",
                    file=sys.stderr,
                )
            else:
                top = max(parallel["worker_counts"])
                pspeed = parallel["speedups"][f"exhaustive_w{top}"]
                if pspeed < args.min_parallel_speedup:
                    print(
                        f"FAIL: {top}-worker exhaustive speedup "
                        f"{pspeed:.2f}x is below the "
                        f"{args.min_parallel_speedup:.1f}x gate",
                        file=sys.stderr,
                    )
                    return 1
    return 0


def _run_trace(target: str, export: str, out: str | None) -> None:
    """Run one demo target under a fresh capture and export the result."""
    from repro.obs import capture
    from repro.obs.demo import run_trace_target
    from repro.obs.export import write_chrome_trace, write_jsonl

    with capture() as cap:
        summary = run_trace_target(target)
    print(summary)
    print(f"spans: {len(cap.tracer.spans)}")
    snapshot = cap.metrics.snapshot()
    for key in sorted(snapshot):
        print(f"  {key} = {snapshot[key]:g}")
    if out is not None:
        if export == "chrome":
            count = write_chrome_trace(out, cap.tracer, metrics=cap.metrics)
            print(f"wrote {count} trace events to {out} (chrome://tracing)")
        else:
            write_jsonl(out, cap.tracer.spans)
            print(f"wrote {len(cap.tracer.spans)} spans to {out} (jsonl)")


if __name__ == "__main__":
    sys.exit(main())
