"""Implementation of ``python -m repro check``.

Runs the two-layer rule pack (per-file AST rules, then the
whole-program rules over the call graph) plus the semantic invariant
checker, merges the findings, subtracts the committed baseline, and
renders the rest as text, JSON or SARIF.  The exit code is governed by
``--fail-on``: with the default ``error``, warnings are advisory and
only error-severity findings fail the command — which is what the CI
gate relies on.

Repeat runs are incremental: a content-hash cache
(``.repro-lint-cache.json``) skips re-parsing unchanged files; disable
it with ``--no-cache``.

``--rules`` with no arguments prints the full rule catalogue (syntax
rules, project rules and invariants) and exits; with ids, it restricts
the run::

    python -m repro check src/ --rules LOCK001 ASYNC001
    python -m repro check --rules              # catalogue
    python -m repro check src/ --json          # machine-readable
    python -m repro check src/ --sarif         # code-scanning upload
    python -m repro check src/ --update-baseline
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.lint.baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    LintEngine,
    Severity,
    Violation,
    all_rules,
    format_text,
    violations_to_json,
)
from repro.lint.invariants import INVARIANT_IDS, check_all_presets

__all__ = ["add_check_parser", "run_check", "rule_catalogue"]


def add_check_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``check`` subcommand on a subparsers object."""
    checkp = sub.add_parser(
        "check",
        help="run the project's static-analysis suite (repro.lint)",
    )
    checkp.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    checkp.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of text",
    )
    checkp.add_argument(
        "--sarif",
        nargs="?",
        const="lint.sarif",
        default=None,
        metavar="PATH",
        help="additionally write findings as SARIF 2.1.0 "
        "(default path: lint.sarif)",
    )
    checkp.add_argument(
        "--rules",
        nargs="*",
        default=None,
        metavar="RULE",
        help="restrict to these rule ids; with no ids, print the "
        "catalogue and exit",
    )
    checkp.add_argument(
        "--fail-on",
        choices=("error", "warning"),
        default="error",
        help="minimum severity that makes the exit code non-zero "
        "(default: error; warnings stay advisory)",
    )
    checkp.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip the machine-preset invariant checker",
    )
    checkp.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file to subtract (default: {BASELINE_FILENAME} "
        "when it exists)",
    )
    checkp.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    checkp.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    checkp.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental parse cache "
        "(.repro-lint-cache.json)",
    )


def rule_catalogue() -> list[tuple[str, str, str]]:
    """``(id, severity, summary)`` for every rule and invariant.

    This is the machine-readable source the documentation's rule table
    is checked against (see ``docs/STATIC_ANALYSIS.md``).
    """
    rows = [
        (rule_id, str(rule_cls.severity), rule_cls.summary)
        for rule_id, rule_cls in all_rules().items()
    ]
    rows.extend(
        (inv_id, "error", summary)
        for inv_id, summary in INVARIANT_IDS.items()
    )
    return rows


def _catalogue() -> str:
    """The rule catalogue rendering: one line per rule."""
    return "\n".join(
        f"{rule_id}  [{severity}]  {summary}"
        for rule_id, severity, summary in rule_catalogue()
    )


def run_check(args: argparse.Namespace) -> int:
    """Execute ``check``; returns the process exit code."""
    if args.rules is not None and not args.rules:
        print(_catalogue())
        return 0

    selected = set(args.rules) if args.rules else None
    if selected is None:
        syntax_rules = None
        run_invariants = not args.no_invariants
    else:
        syntax_rules = sorted(selected - set(INVARIANT_IDS))
        run_invariants = not args.no_invariants and bool(
            selected & set(INVARIANT_IDS)
        )

    root = Path.cwd()
    cache = None
    stats: dict[str, int] | None = None
    violations: list[Violation] = []
    if syntax_rules is None or syntax_rules:
        if not args.no_cache:
            from repro.lint.project.cache import LintCache

            cache = LintCache(root)
            cache.load()
        engine = LintEngine(
            rules=syntax_rules, project_root=root, cache=cache
        )
        violations.extend(engine.check_paths(args.paths))
        stats = engine.stats
    if run_invariants:
        invariant_findings = check_all_presets()
        if selected is not None:
            invariant_findings = [
                v for v in invariant_findings if v.rule_id in selected
            ]
        violations.extend(invariant_findings)
    violations.sort(key=lambda v: (v.file, v.line, v.rule_id))

    # -- baseline ratchet ----------------------------------------------
    baseline_path = Path(args.baseline) if args.baseline else (
        root / BASELINE_FILENAME
    )
    if args.update_baseline:
        counts = write_baseline(violations, baseline_path)
        print(
            f"baseline updated: {baseline_path} "
            f"({sum(counts.values())} finding(s), {len(counts)} key(s))"
        )
        return 0
    suppressed = 0
    fixed: list[str] = []
    if not args.no_baseline and baseline_path.is_file():
        baseline = load_baseline(baseline_path)
        violations, suppressed, fixed = apply_baseline(
            violations, baseline
        )

    if args.sarif:
        from repro.lint.sarif import violations_to_sarif

        Path(args.sarif).write_text(
            violations_to_sarif(violations) + "\n", encoding="utf-8"
        )

    if args.json:
        print(violations_to_json(violations))
    else:
        print(format_text(violations))
        notes = []
        if stats is not None and stats["files"]:
            notes.append(
                f"checked {stats['files']} file(s), "
                f"{stats['cache_hits']} from cache"
            )
        if suppressed:
            notes.append(f"{suppressed} baselined finding(s) hidden")
        if fixed:
            notes.append(
                f"{len(fixed)} baseline key(s) shrank - run "
                f"--update-baseline to ratchet down"
            )
        if notes:
            print("; ".join(notes))

    threshold = (
        Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    )
    failing = [v for v in violations if v.severity >= threshold]
    return 1 if failing else 0
