"""Unit tests for allocation policies and enumeration."""

import math

import numpy as np
import pytest

from repro.core.policies import (
    EvenSharePolicy,
    NodeExclusivePolicy,
    ProportionalDemandPolicy,
    SingleAppFillPolicy,
    UnevenSharePolicy,
    enumerate_node_compositions,
    enumerate_symmetric_allocations,
)
from repro.core.spec import AppSpec
from repro.errors import AllocationError
from repro.machine import MachineTopology


class TestEvenShare:
    def test_divides_evenly(self, paper_machine, paper_apps):
        a = EvenSharePolicy().allocate(paper_machine, paper_apps)
        assert np.all(a.counts == 2)

    def test_leftover_idle_by_default(self, paper_apps):
        m = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=6,
            peak_gflops_per_core=1.0,
            local_bandwidth=10.0,
        )
        a = EvenSharePolicy().allocate(m, paper_apps)
        assert a.threads_per_node.tolist() == [4, 4]  # 2 cores idle

    def test_leftover_distributed_on_request(self, paper_apps):
        m = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=6,
            peak_gflops_per_core=1.0,
            local_bandwidth=10.0,
        )
        a = EvenSharePolicy(distribute_leftover=True).allocate(
            m, paper_apps
        )
        assert a.threads_per_node.tolist() == [6, 6]

    def test_empty_apps_rejected(self, paper_machine):
        with pytest.raises(AllocationError):
            EvenSharePolicy().allocate(paper_machine, [])


class TestUnevenShare:
    def test_paper_uneven(self, paper_machine, paper_apps):
        a = UnevenSharePolicy(
            {"mem0": 1, "mem1": 1, "mem2": 1, "comp": 5}
        ).allocate(paper_machine, paper_apps)
        assert a.threads_of("comp").tolist() == [5, 5, 5, 5]

    def test_missing_app_rejected(self, paper_machine, paper_apps):
        with pytest.raises(AllocationError):
            UnevenSharePolicy({"mem0": 1}).allocate(
                paper_machine, paper_apps
            )

    def test_oversubscribed_rejected(self, paper_machine, paper_apps):
        with pytest.raises(AllocationError):
            UnevenSharePolicy(
                {"mem0": 3, "mem1": 3, "mem2": 3, "comp": 3}
            ).allocate(paper_machine, paper_apps)


class TestNodeExclusive:
    def test_data_affine_pins_numa_bad(
        self, numa_bad_machine, numa_bad_apps
    ):
        a = NodeExclusivePolicy(data_affine=True).allocate(
            numa_bad_machine, numa_bad_apps
        )
        # "bad" has home node 3 and must land there.
        assert a.threads_of("bad").tolist() == [0, 0, 0, 8]

    def test_without_affinity_takes_listing_order(
        self, numa_bad_machine, numa_bad_apps
    ):
        a = NodeExclusivePolicy(data_affine=False).allocate(
            numa_bad_machine, numa_bad_apps
        )
        assert a.threads_of("mem0").tolist() == [8, 0, 0, 0]
        assert a.threads_of("bad").tolist() == [0, 0, 0, 8]

    def test_wrong_app_count(self, paper_machine):
        with pytest.raises(AllocationError):
            NodeExclusivePolicy().allocate(
                paper_machine, [AppSpec.memory_bound("x")]
            )


class TestProportionalDemand:
    def test_compute_bound_gets_more(self, paper_machine, paper_apps):
        a = ProportionalDemandPolicy().allocate(paper_machine, paper_apps)
        assert (
            a.threads_of("comp")[0]
            > a.threads_of("mem0")[0]
        )
        # fully packed
        assert a.threads_per_node.tolist() == [8, 8, 8, 8]

    def test_recovers_paper_uneven_split(self, paper_machine, paper_apps):
        # weights 1/demand = [0.05]*3 + [1.0]: comp gets nearly all spares.
        a = ProportionalDemandPolicy().allocate(paper_machine, paper_apps)
        assert a.threads_of("comp")[0] == 5

    def test_explicit_weights(self, paper_machine, paper_apps):
        a = ProportionalDemandPolicy(
            weights={"mem0": 1, "mem1": 1, "mem2": 1, "comp": 1}
        ).allocate(paper_machine, paper_apps)
        assert np.all(a.counts == 2)

    def test_min_threads_floor_too_large(self, paper_machine, paper_apps):
        with pytest.raises(AllocationError):
            ProportionalDemandPolicy(min_threads=3).allocate(
                paper_machine, paper_apps
            )


class TestSingleAppFill:
    def test_favoured_gets_rest(self, paper_machine, paper_apps):
        a = SingleAppFillPolicy("comp").allocate(paper_machine, paper_apps)
        assert a.threads_of("comp").tolist() == [5, 5, 5, 5]
        assert a.threads_of("mem0").tolist() == [1, 1, 1, 1]

    def test_unknown_favoured(self, paper_machine, paper_apps):
        with pytest.raises(AllocationError):
            SingleAppFillPolicy("ghost").allocate(
                paper_machine, paper_apps
            )


class TestEnumeration:
    def test_composition_count(self):
        # stars and bars: C(8+4-1, 4-1) = 165
        comps = list(enumerate_node_compositions(8, 4))
        assert len(comps) == math.comb(11, 3)
        assert all(sum(c) == 8 for c in comps)
        assert len(set(comps)) == len(comps)

    def test_partial_compositions(self):
        comps = list(
            enumerate_node_compositions(3, 2, require_full=False)
        )
        assert (0, 0) in comps
        assert (3, 0) in comps
        assert all(sum(c) <= 3 for c in comps)

    def test_invalid_space(self):
        with pytest.raises(AllocationError):
            list(enumerate_node_compositions(-1, 2))
        with pytest.raises(AllocationError):
            list(enumerate_node_compositions(2, 0))

    def test_symmetric_allocations_valid(self, paper_machine, paper_apps):
        allocs = list(
            enumerate_symmetric_allocations(paper_machine, paper_apps)
        )
        assert len(allocs) == math.comb(11, 3)
        for a in allocs:
            a.validate(paper_machine)

    def test_symmetric_requires_equal_nodes(self, paper_apps):
        from repro.machine.topology import Core, NumaNode
        import numpy as np

        nodes = (
            NumaNode(
                node_id=0,
                cores=(Core(0, 0, 0, 1.0), Core(1, 0, 1, 1.0)),
                local_bandwidth=10.0,
            ),
            NumaNode(
                node_id=1,
                cores=(Core(2, 1, 0, 1.0),),
                local_bandwidth=10.0,
            ),
        )
        m = MachineTopology(
            nodes=nodes, link_bandwidth=np.full((2, 2), 10.0)
        )
        with pytest.raises(AllocationError):
            list(enumerate_symmetric_allocations(m, paper_apps))
