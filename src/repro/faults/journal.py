"""On-disk corruption of :mod:`repro.serve.persist` journals.

Where :class:`~repro.faults.proxy.InjectionProxy` breaks the *live*
coordination path, this module breaks what a crashed service left on
*disk* — the three corruptions the write-ahead journal's recovery is
designed to survive:

``TORN_TAIL``
    Appends a partial, CRC-less record to the newest journal segment —
    the bytes a power loss mid-``write`` leaves behind.  Recovery must
    detect it via CRC and truncate to the last valid record.
``STALE_SNAPSHOT``
    Overwrites a slice of the newest snapshot file with garbage so its
    CRC no longer validates.  Recovery must fall back to the previous
    snapshot generation (which compaction keeps around exactly for
    this) and replay forward — losslessly.
``DUPLICATE_SEGMENT``
    Copies the newest journal segment to the next generation number —
    a half-completed operator copy / retry.  Recovery must skip every
    duplicated record by its global ``seq`` instead of double-applying
    membership events.

Like everything in :mod:`repro.faults`, application is deterministic:
the same :class:`~repro.faults.plan.FaultSpec` against the same journal
directory yields byte-identical corruption.
"""

from __future__ import annotations

import os

from repro.errors import FaultError
from repro.faults.plan import _JOURNAL, FaultKind, FaultSpec
from repro.serve.persist import _scan, latest_journal_segment

__all__ = ["apply_journal_fault"]

#: What a torn mid-append write leaves at the end of a segment: a
#: syntactically broken, newline-less JSON prefix.
_TORN_BYTES = b'{"crc":1234567,"event":{"kind":"torn-by-chaos","name":"'


def apply_journal_fault(spec: FaultSpec, path: str | None = None) -> str:
    """Corrupt the journal directory per ``spec``; returns the file hit.

    ``path`` defaults to ``spec.target`` (journal faults carry the
    directory as their target).  Raises
    :class:`~repro.errors.FaultError` when ``spec`` is not a journal
    kind or the directory lacks the file the fault needs.
    """
    if spec.kind not in _JOURNAL:
        raise FaultError(
            f"{spec.kind.value} is not a journal fault kind"
        )
    directory = path if path is not None else spec.target
    snapshots, journals = _scan(directory)
    if spec.kind is FaultKind.TORN_TAIL:
        segment = latest_journal_segment(directory)
        fd = os.open(segment, os.O_WRONLY | os.O_APPEND)
        try:
            os.write(fd, _TORN_BYTES)
        finally:
            os.close(fd)
        return segment
    if spec.kind is FaultKind.STALE_SNAPSHOT:
        if not snapshots:
            raise FaultError(
                f"no snapshot to corrupt under {directory!r} "
                f"(compact the journal first)"
            )
        target = snapshots[max(snapshots)]
        # Overwrite the head in place: the JSON prefix (and with it the
        # CRC framing) is destroyed, the file stays non-empty.
        fd = os.open(target, os.O_WRONLY)
        try:
            os.write(fd, b"\x00CHAOS\x00CHAOS\x00CHAOS\x00")
        finally:
            os.close(fd)
        return target
    # DUPLICATE_SEGMENT
    if not journals:
        raise FaultError(
            f"no journal segment to duplicate under {directory!r}"
        )
    newest = max(journals)
    source = journals[newest]
    copy_gen = max([newest, *snapshots]) + 1
    copy = os.path.join(directory, f"journal-{copy_gen:06d}.ndjson")
    src_fd = os.open(source, os.O_RDONLY)
    try:
        dst_fd = os.open(
            copy, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
        )
        try:
            while True:
                chunk = os.read(src_fd, 1 << 16)
                if not chunk:
                    break
                os.write(dst_fd, chunk)
        finally:
            os.close(dst_fd)
    finally:
        os.close(src_fd)
    return copy
