"""OCR-style task templates and finish scopes.

Two OCR idioms the paper's runtime experience builds on:

* **task templates** (``ocrEdtTemplateCreate``) — a reusable description
  of a task kind (work volume, intensity, dependence count) instantiated
  many times; workload generators become declarative;
* **finish EDTs** (``EDT_PROP_FINISH``) — a scope whose completion event
  fires only once every task created *within* the scope (transitively)
  has finished.  This is OCR's structured join, and it is how composed
  applications know a delegated job is fully done.

:class:`FinishScope` implements the transitive semantics with a latch:
the scope counts up on every task created while it is the runtime's
active scope — including tasks created from ``on_finish`` callbacks of
scope members — and counts down as they finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import RuntimeSystemError
from repro.runtime.datablock import AccessMode, Datablock
from repro.runtime.events import Event, LatchEvent
from repro.runtime.runtime import OCRVxRuntime
from repro.runtime.task import Task

__all__ = ["TaskTemplate", "FinishScope"]


@dataclass(frozen=True)
class TaskTemplate:
    """A reusable task description.

    Attributes mirror :meth:`OCRVxRuntime.create_task`; ``instantiate``
    stamps out tasks with an index-derived name.
    """

    name: str
    flops: float
    arithmetic_intensity: float
    affinity_node: int | None = None
    tied_to: str | None = None

    def __post_init__(self) -> None:
        if self.flops <= 0:
            raise RuntimeSystemError(
                f"template '{self.name}': flops must be positive"
            )
        if self.arithmetic_intensity <= 0:
            raise RuntimeSystemError(
                f"template '{self.name}': AI must be positive"
            )

    def instantiate(
        self,
        runtime: OCRVxRuntime,
        index: int | str = 0,
        *,
        depends_on: Sequence[Task | Event] = (),
        datablocks: Sequence[Datablock] = (),
        access_modes: Sequence[AccessMode] | None = None,
        affinity_node: int | None = None,
        on_finish: Callable[[Task], None] | None = None,
    ) -> Task:
        """Create one task from the template on ``runtime``."""
        return runtime.create_task(
            f"{self.name}[{index}]",
            flops=self.flops,
            arithmetic_intensity=self.arithmetic_intensity,
            depends_on=depends_on,
            datablocks=datablocks,
            access_modes=access_modes,
            affinity_node=(
                affinity_node
                if affinity_node is not None
                else self.affinity_node
            ),
            on_finish=on_finish,
            tied_to=self.tied_to,
        )

    def instantiate_many(
        self,
        runtime: OCRVxRuntime,
        count: int,
        *,
        depends_on: Sequence[Task | Event] = (),
        spread_nodes: int | None = None,
    ) -> list[Task]:
        """Stamp out ``count`` instances; optionally round-robin their
        affinity over ``spread_nodes`` NUMA nodes."""
        if count <= 0:
            raise RuntimeSystemError("count must be positive")
        out = []
        for i in range(count):
            affinity = None
            if spread_nodes:
                affinity = i % spread_nodes
            out.append(
                self.instantiate(
                    runtime,
                    i,
                    depends_on=depends_on,
                    affinity_node=affinity,
                )
            )
        return out


class FinishScope:
    """OCR finish-EDT semantics: completion of a transitive task set.

    Use as a context manager around task creation::

        with FinishScope(runtime) as scope:
            root = runtime.create_task(...)   # may spawn children later
        scope.done.add_dependent(lambda _ : ...)

    Every task created on the runtime while the scope is open joins it —
    including tasks created later from member ``on_finish`` callbacks,
    because finishing members re-open the scope for the duration of
    their callback.  ``done`` fires when the member count drains.
    """

    def __init__(self, runtime: OCRVxRuntime, name: str = "") -> None:
        self.runtime = runtime
        self.name = name or f"finish-{id(self):x}"
        self.done = LatchEvent(1, name=f"{self.name}.done")
        self.members = 0
        self._closed = False
        self._saved_create: Callable[..., Task] | None = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "FinishScope":
        if self._closed:
            raise RuntimeSystemError(
                f"finish scope '{self.name}' cannot be re-entered"
            )
        self._hook()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._unhook()
        if exc_type is None:
            self._closed = True
            # Balance the initial latch count; if no member is still
            # pending the scope completes immediately.
            self.done.count_down()

    # ------------------------------------------------------------------
    def _hook(self) -> None:
        if self._saved_create is not None:
            raise RuntimeSystemError(
                f"finish scope '{self.name}' already active"
            )
        scope = self
        original = self.runtime.create_task

        def create_in_scope(*args: Any, **kwargs: Any) -> Task:
            user_finish = kwargs.pop("on_finish", None)

            def member_finished(task: Task) -> None:
                # Children created inside a member's callback belong to
                # the scope too: re-hook for the callback's duration.
                scope._hook()
                try:
                    if user_finish is not None:
                        user_finish(task)
                finally:
                    scope._unhook()
                scope.members -= 1
                scope.done.count_down()

            task = original(*args, on_finish=member_finished, **kwargs)
            scope.members += 1
            scope.done.count_up()
            return task

        self._saved_create = original
        self.runtime.create_task = create_in_scope  # type: ignore[method-assign]

    def _unhook(self) -> None:
        if self._saved_create is None:
            raise RuntimeSystemError(
                f"finish scope '{self.name}' is not active"
            )
        self.runtime.create_task = self._saved_create  # type: ignore[method-assign]
        self._saved_create = None

    @property
    def finished(self) -> bool:
        """True once every transitive member has completed."""
        return self.done.fired
