"""Section V: on-node gains across a cluster, barrier vs loose sync.

"If the code requires a barrier ... the benefit of speeding up the
iteration body on some of the nodes is rather limited. If the
synchronization is loose ... most of the local speedup should translate
to overall speedup."
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_distributed


def test_bench_distributed(benchmark):
    res = benchmark.pedantic(
        run_distributed,
        kwargs={"num_ranks": 8, "iterations": 30},
        rounds=1,
        iterations=1,
    )
    rows = [
        [p, w, res.makespan(p, w)]
        for p in ("static-exclusive", "static-split", "dynamic")
        for w in ("barrier", "taskbag")
    ]
    emit(
        "Distributed partitioning x synchronisation (Section V)",
        render_table(["partition", "workload", "makespan [s]"], rows),
    )
    dyn_bag = res.makespan("dynamic", "taskbag")
    split_bag = res.makespan("static-split", "taskbag")
    dyn_bar = res.makespan("dynamic", "barrier")
    split_bar = res.makespan("static-split", "barrier")
    # Loose synchronisation: dynamic sharing clearly wins.
    assert dyn_bag < split_bag
    # Barrier code keeps much less of the gain.
    assert (split_bag / dyn_bag) > (split_bar / dyn_bar)
