"""Deprecated location of the metric primitives.

The simulator-local registry grew into the process-wide observability
layer: :class:`Counter`, :class:`TimeSeries`, :class:`RateIntegrator`
and :class:`MetricSet` now live in :mod:`repro.obs.metrics` (alongside
the new :class:`~repro.obs.metrics.Gauge`,
:class:`~repro.obs.metrics.Histogram` and
:class:`~repro.obs.metrics.MetricsRegistry`).

This module remains as a compatibility shim so existing imports
(``from repro.sim.metrics import MetricSet``) keep working — the classes
are the same objects, not copies.  Every in-tree caller has moved to
:mod:`repro.obs.metrics`; importing this module now emits a
:class:`DeprecationWarning` and the shim will be removed once external
callers have had a release to migrate.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.sim.metrics is deprecated; import Counter/TimeSeries/"
    "RateIntegrator/MetricSet/MetricsRegistry from repro.obs.metrics",
    DeprecationWarning,
    stacklevel=2,
)

from repro.obs.metrics import (  # noqa: E402  (after the deprecation gate)
    Counter,
    MetricSet,
    MetricsRegistry,
    RateIntegrator,
    TimeSeries,
)

__all__ = [
    "Counter",
    "TimeSeries",
    "RateIntegrator",
    "MetricSet",
    "MetricsRegistry",
]
