"""Unit tests for the roofline model."""

import numpy as np
import pytest

from repro.core.roofline import Roofline, attainable_gflops
from repro.errors import ModelError


class TestAttainable:
    def test_memory_bound_side(self):
        assert attainable_gflops(0.5, 10.0, 4.0) == pytest.approx(2.0)

    def test_compute_bound_side(self):
        assert attainable_gflops(10.0, 10.0, 4.0) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            attainable_gflops(0.0, 1.0, 1.0)
        with pytest.raises(ModelError):
            attainable_gflops(1.0, 0.0, 1.0)


class TestRoofline:
    def test_ridge(self):
        r = Roofline(peak_gflops=80.0, peak_bandwidth=32.0)
        assert r.ridge_ai == pytest.approx(2.5)
        assert r.is_memory_bound(0.5)
        assert not r.is_memory_bound(10.0)

    def test_demand_bandwidth_matches_paper(self):
        r = Roofline(peak_gflops=10.0, peak_bandwidth=32.0)
        assert r.demand_bandwidth(0.5) == pytest.approx(20.0)
        assert r.demand_bandwidth(10.0) == pytest.approx(1.0)

    def test_attainable_continuous_at_ridge(self):
        r = Roofline(peak_gflops=80.0, peak_bandwidth=32.0)
        assert r.attainable(r.ridge_ai) == pytest.approx(80.0)

    def test_efficiency(self):
        r = Roofline(peak_gflops=10.0, peak_bandwidth=5.0)
        assert r.efficiency(1.0) == pytest.approx(0.5)
        assert r.efficiency(100.0) == pytest.approx(1.0)

    def test_sweep_vectorised(self):
        r = Roofline(peak_gflops=10.0, peak_bandwidth=5.0)
        out = r.sweep([0.5, 1.0, 2.0, 4.0])
        assert np.allclose(out, [2.5, 5.0, 10.0, 10.0])

    def test_sweep_rejects_nonpositive(self):
        r = Roofline(peak_gflops=10.0, peak_bandwidth=5.0)
        with pytest.raises(ModelError):
            r.sweep([1.0, 0.0])

    def test_scaled_shared_bandwidth(self):
        # A NUMA node: compute scales, bandwidth doesn't.
        core = Roofline(peak_gflops=10.0, peak_bandwidth=32.0)
        node = core.scaled(8, bandwidth_shared=True)
        assert node.peak_gflops == 80.0
        assert node.peak_bandwidth == 32.0

    def test_scaled_private_bandwidth(self):
        core = Roofline(peak_gflops=10.0, peak_bandwidth=32.0)
        machine = core.scaled(4, bandwidth_shared=False)
        assert machine.peak_bandwidth == 128.0

    def test_validation(self):
        with pytest.raises(ModelError):
            Roofline(peak_gflops=0.0, peak_bandwidth=1.0)
        with pytest.raises(ModelError):
            Roofline(peak_gflops=1.0, peak_bandwidth=-1.0)
        r = Roofline(peak_gflops=1.0, peak_bandwidth=1.0)
        with pytest.raises(ModelError):
            r.scaled(0)
        with pytest.raises(ModelError):
            r.is_memory_bound(0.0)
        with pytest.raises(ModelError):
            r.demand_bandwidth(-2.0)
