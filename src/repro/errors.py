"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration problems from runtime (simulation)
problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "AllocationError",
    "OversubscriptionError",
    "ModelError",
    "SimulationError",
    "ObservabilityError",
    "SchedulerError",
    "RuntimeSystemError",
    "TaskError",
    "DependencyError",
    "DatablockError",
    "AgentError",
    "ProtocolError",
    "EndpointUnavailable",
    "FaultError",
    "DistributedError",
    "CalibrationError",
    "LintError",
    "ServiceError",
    "ParallelError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class TopologyError(ConfigurationError):
    """A machine topology is malformed (e.g. non-square link matrix)."""


class AllocationError(ConfigurationError):
    """A thread allocation is malformed or refers to unknown apps/nodes."""


class OversubscriptionError(AllocationError):
    """A thread allocation assigns more threads to a NUMA node than cores.

    The paper's model explicitly assumes no over-subscription ("there are at
    most as many threads bound to a NUMA node as there are CPU cores in that
    NUMA node"); violating allocations are rejected eagerly unless the
    caller opts into the OS-scheduler simulation which supports them.
    """


class ModelError(ReproError):
    """The analytic performance model was driven with invalid inputs."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ObservabilityError(SimulationError):
    """An observability primitive (metric, span, exporter) was misused.

    Subclasses :class:`SimulationError` because the metric primitives
    originated in :mod:`repro.sim.metrics`; existing callers that catch
    ``SimulationError`` keep working after the move to :mod:`repro.obs`.
    """


class SchedulerError(SimulationError):
    """An OS- or task-scheduler invariant was violated."""


class RuntimeSystemError(ReproError):
    """A task-based runtime system (OCR-Vx / TBB / OpenMP adapter) failed."""


class TaskError(RuntimeSystemError):
    """A task was misused (double completion, running a cancelled task...)."""


class DependencyError(RuntimeSystemError):
    """A task-graph dependency is invalid (cycle, unknown producer...)."""


class DatablockError(RuntimeSystemError):
    """A datablock was misused (freed twice, accessed without acquire...)."""


class AgentError(ReproError):
    """The resource-arbitration agent failed."""


class ProtocolError(AgentError):
    """An agent<->runtime protocol message was malformed or out of order."""


class EndpointUnavailable(AgentError):
    """A runtime endpoint did not answer (crashed, hung, or unreachable).

    Raised by endpoints — most prominently the fault-injection
    :class:`~repro.faults.proxy.InjectionProxy` — when a report or
    command cannot be served.  The agent treats it (and any other
    exception escaping an endpoint) as a coordination failure: it
    retries with backoff, and quarantines the endpoint when failures
    persist, rather than letting the control loop die.
    """


class FaultError(ReproError):
    """The fault-injection subsystem was misconfigured.

    Distinct from the failures it *injects*, which surface as
    :class:`EndpointUnavailable` / corrupted reports by design.
    """


class DistributedError(ReproError):
    """The simulated distributed (MPI-like) layer failed."""


class CalibrationError(ReproError):
    """Machine-parameter calibration could not fit the measurements."""


class LintError(ReproError):
    """The static-analysis subsystem was misused (bad rule id, unparseable
    file, malformed selection) — distinct from the violations it reports,
    which are data, not exceptions."""


class ServiceError(AgentError):
    """The long-running allocation service (:mod:`repro.serve`) rejected a
    request: malformed wire message, duplicate or unknown session,
    admission after drain began, or a protocol-state violation.

    Carries an optional machine-readable ``code`` (one of
    :data:`repro.serve.protocol.ERROR_CODES`) that the service copies
    into the :class:`~repro.serve.protocol.ErrorReply` it answers with,
    so clients can branch on the *kind* of rejection without parsing
    the human-readable message.

    Subclasses :class:`AgentError` because the service is the daemonised
    form of the coordination agent; callers guarding the agent<->runtime
    path with ``except AgentError`` cover the service too."""

    def __init__(self, message: str = "", *, code: str | None = None) -> None:
        super().__init__(message)
        self.code = code


class ParallelError(ReproError):
    """The process-parallel scoring pool (:mod:`repro.core.parallel`)
    could not produce a result: shared memory was unavailable, a worker
    process died mid-chunk, or the pool timed out.

    Always recoverable — every caller falls back to the serial fast
    path (and bumps the ``parallel/fallbacks`` counter) instead of
    letting this escape a search."""
