"""The fast-path benchmark harness and its CLI entry point.

Speedup assertions here are deliberately loose (``> 1``) — CI machines
are noisy; the committed ``BENCH_model.json`` records the real numbers.
"""

import json

import pytest

from repro.__main__ import main
from repro.analysis.bench import (
    _parallel_worker_counts,
    _run_parallel_bench,
    bench_workload,
    delta_workload,
    effective_cpus,
    format_report,
    run_bench,
    write_report,
)


@pytest.fixture(scope="module")
def report():
    return run_bench(smoke=True, annealing_steps=50)


class TestRunBench:
    def test_schema_and_ops(self, report):
        assert report["schema"] == "repro-bench/1"
        assert report["mode"] == "smoke"
        assert report["candidates"] == 165
        expected = {
            "model/scalar",
            "model/batched",
            "model/cached",
            "search/exhaustive_scalar",
            "search/exhaustive_fast",
            "search/greedy_scalar",
            "search/greedy_fast",
            "search/hillclimb_scalar",
            "search/hillclimb_fast",
            "search/annealing_scalar",
            "search/annealing_fast",
        }
        assert set(report["ops"]) == expected
        for stats in report["ops"].values():
            assert stats["seconds"] > 0
            assert stats["evals_per_sec"] > 0

    def test_fast_paths_actually_faster(self, report):
        assert report["speedups"]["model/batched"] > 1
        assert report["speedups"]["model/cached"] > 1
        assert report["speedups"]["search/exhaustive_fast"] > 1

    def test_both_exhaustive_paths_count_all_candidates(self, report):
        assert report["ops"]["search/exhaustive_scalar"]["evaluations"] == 165
        assert report["ops"]["search/exhaustive_fast"]["evaluations"] == 165

    def test_format_report(self, report):
        text = format_report(report)
        assert "model/cached" in text
        assert "speedup" in text

    def test_write_report_round_trips(self, report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        assert json.loads(path.read_text()) == report

    def test_workload_is_the_paper_machine(self):
        machine, apps = bench_workload()
        assert machine.num_nodes == 4
        assert len(apps) == 4

    def test_delta_section_schema(self, report):
        delta = report["delta"]
        assert delta["apps"] == 10
        assert delta["candidates"] == 24310
        assert set(delta["ops"]) == {
            "delta/full_cold",
            "delta/full_warm",
            "delta/steady_state",
        }
        for stats in delta["ops"].values():
            assert stats["seconds"] > 0
        assert delta["steady_state_ms"] > 0

    def test_delta_beats_full_re_search(self, report):
        # Loose (> 1) on purpose; BENCH_model.json records the real
        # numbers (hundreds of x) and CI gates on steady_state_ms.
        assert report["delta"]["speedups"]["vs_full_cold"] > 1
        assert report["delta"]["speedups"]["vs_full_warm"] > 1

    def test_delta_path_is_sublinear_in_the_space(self, report):
        steady = report["delta"]["ops"]["delta/steady_state"]
        assert steady["evaluations"] < 24310 / 10

    def test_delta_workload_is_ten_apps(self):
        machine, apps = delta_workload()
        assert len(apps) == 10
        assert len({a.name for a in apps}) == 10
        assert machine.name == bench_workload()[0].name

    def test_format_report_includes_delta(self, report):
        text = format_report(report)
        assert "delta/steady_state" in text
        assert "steady-state delta re-optimization" in text

    def test_no_parallel_section_without_workers(self, report):
        assert "parallel" not in report


class TestParallelBench:
    @pytest.fixture(scope="class")
    def parallel(self):
        return _run_parallel_bench(repeats=1, workers=2)

    def test_worker_count_rungs(self):
        assert _parallel_worker_counts(1) == [1]
        assert _parallel_worker_counts(2) == [2]
        assert _parallel_worker_counts(4) == [2, 4]
        assert _parallel_worker_counts(3) == [2, 3]
        assert _parallel_worker_counts(8) == [2, 4, 8]

    def test_effective_cpus_positive(self):
        assert effective_cpus() >= 1

    def test_section_schema(self, parallel):
        assert parallel["apps"] == 10
        assert parallel["candidates"] == 24310
        assert parallel["worker_counts"] == [2]
        assert set(parallel["serial"]) == {"exhaustive", "hillclimb"}
        entry = parallel["workers"]["2"]
        assert set(entry) == {"exhaustive", "hillclimb", "pool"}
        assert set(parallel["speedups"]) == {
            "exhaustive_w2",
            "hillclimb_w2",
        }

    def test_parallel_answers_byte_identical(self, parallel):
        assert parallel["identical"] is True
        for op in ("exhaustive", "hillclimb"):
            assert parallel["workers"]["2"][op]["identical"] is True

    def test_pool_spawned_and_released(self, parallel):
        from repro.core.parallel import pool_stats

        if parallel["shared_memory"]:
            assert parallel["workers"]["2"]["pool"]["spawned"] is True
            assert parallel["workers"]["2"]["pool"]["calls"] > 0
        # The bench releases its pools; nothing leaks into the registry.
        assert 2 not in pool_stats()

    def test_format_report_includes_parallel(self, parallel):
        report = run_bench(smoke=True, annealing_steps=50)
        report["parallel"] = parallel
        text = format_report(report)
        assert "process-parallel search" in text
        assert "exhaustive (2 workers)" in text
        if parallel["effective_cpus"] < 2:
            assert "single CPU" in text


class TestBenchCli:
    def test_json_mode(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--json",
                "--min-speedup",
                "0",
                "--max-delta-ms",
                "0",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["schema"] == "repro-bench/1"
        assert json.loads(out.read_text()) == printed

    def test_impossible_gate_fails(self, capsys):
        code = main(["bench", "--smoke", "--min-speedup", "1e9"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().err

    def test_impossible_delta_gate_fails(self, capsys):
        code = main(
            [
                "bench",
                "--smoke",
                "--min-speedup",
                "0",
                "--max-delta-ms",
                "1e-9",
            ]
        )
        assert code == 1
        assert "delta" in capsys.readouterr().err

    def test_parallel_gate_requires_workers(self, capsys):
        code = main(
            ["bench", "--smoke", "--min-parallel-speedup", "1.0"]
        )
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_committed_baseline_is_current_schema(self):
        with open("BENCH_model.json", encoding="utf-8") as fh:
            baseline = json.load(fh)
        assert baseline["schema"] == "repro-bench/1"
        assert baseline["speedups"]["search/exhaustive_fast"] >= 5.0
        assert baseline["delta"]["steady_state_ms"] < 1.0
        assert baseline["delta"]["speedups"]["vs_full_cold"] > 10

    def test_committed_baseline_has_parallel_section(self):
        with open("BENCH_model.json", encoding="utf-8") as fh:
            baseline = json.load(fh)
        parallel = baseline["parallel"]
        assert parallel["identical"] is True
        assert 4 in parallel["worker_counts"]
        assert "exhaustive_w4" in parallel["speedups"]
        if parallel["effective_cpus"] >= 4:
            # Only meaningful where the cores existed at record time.
            assert parallel["speedups"]["exhaustive_w4"] >= 2.0
